"""Evaluate the §VII countermeasures against ESA and GRNA.

Sweeps the rounding defense (b = 1..4 digits) against both attacks on a
multi-class LR deployment, compares additive noise, shows that output
defenses *compose* (rounding + noise in one ``DefenseStack``), and ends
with dropout-regularized NN training — reproducing the qualitative
conclusions of Fig. 11: rounding kills ESA but not GRNA; dropout only
dents GRNA.

Each defended deployment is one ``run_scenario`` call with a
``defenses=[...]`` stack; the attacks automatically target the released
plaintext weights while the served confidence scores pass through the
defense chain.

Run:
    python examples/defense_evaluation.py            # default scale
    python examples/defense_evaluation.py --smoke    # tiny scale
"""

import sys

from repro.api import DefenseStack, ScenarioConfig, build_scenario, run_scenario
from repro.config import ScaleConfig

SMOKE = "--smoke" in sys.argv

SCALE = ScaleConfig(
    name="defense-smoke" if SMOKE else "defense",
    n_samples=400 if SMOKE else 2000,
    n_predictions=120 if SMOKE else 600,
    n_trials=1,
    fractions=(0.3,),
    lr_epochs=20 if SMOKE else 100,
    mlp_hidden=(16,) if SMOKE else (64, 32),
    mlp_epochs=3 if SMOKE else 12,
    grna_hidden=(32,) if SMOKE else (256, 128, 64),
    grna_epochs=5 if SMOKE else 40,
)


def attack_pair(defenses) -> tuple[float, float, float]:
    """(ESA MSE, GRNA MSE, random-guess MSE) under one defense stack.

    Both attacks score the same defended deployment, so it is built once
    and passed to each ``run_scenario`` call as a prebuilt scenario.
    """
    stack = DefenseStack.from_specs(defenses)
    shared = build_scenario(
        "drive", "lr", 0.3, SCALE, 0,
        defense_stack=stack if len(stack) else None,
    )
    esa = run_scenario(
        ScenarioConfig(
            dataset="drive", model="lr", attack="esa", defenses=defenses,
            target_fraction=0.3, scale=SCALE, seed=0, baselines=("uniform",),
        ),
        scenario=shared,
    )
    grna = run_scenario(
        ScenarioConfig(
            dataset="drive", model="lr", attack="grna", defenses=defenses,
            target_fraction=0.3, scale=SCALE, seed=0,
        ),
        scenario=shared,
    )
    return esa.metrics["mse"], grna.metrics["mse"], esa.metrics["rg_uniform_mse"]


def main() -> None:
    # ------------------------------------------------------------------
    # Rounding vs ESA and GRNA (LR model).
    # ------------------------------------------------------------------
    _, _, rg_mse = attack_pair(())
    print("[rounding defense / LR model]")
    print(f"  {'defense':>16}  {'ESA mse':>9}  {'GRNA mse':>9}   (random guess: {rg_mse:.4f})")
    for label, defenses in [
        ("none", ()),
        ("b=4", (("rounding", {"digits": 4}),)),
        ("b=3", (("rounding", {"digits": 3}),)),
        ("b=2", (("rounding", {"digits": 2}),)),
        ("b=1", (("rounding", {"digits": 1}),)),
    ]:
        esa_mse, grna_mse, _ = attack_pair(defenses)
        print(f"  {label:>16}  {esa_mse:>9.4f}  {grna_mse:>9.4f}")

    # ------------------------------------------------------------------
    # Additive noise, and the rounding+noise chain (§VII composition).
    # ------------------------------------------------------------------
    print("\n[noise defense / LR model]")
    print(f"  {'defense':>16}  {'ESA mse':>9}  {'GRNA mse':>9}")
    for label, defenses in [
        ("noise 0.001", (("noise", {"scale": 0.001}),)),
        ("noise 0.01", (("noise", {"scale": 0.01}),)),
        ("noise 0.05", (("noise", {"scale": 0.05}),)),
        ("b=2 + noise 0.01", (("rounding", {"digits": 2}), ("noise", {"scale": 0.01}))),
    ]:
        esa_mse, grna_mse, _ = attack_pair(defenses)
        print(f"  {label:>16}  {esa_mse:>9.4f}  {grna_mse:>9.4f}")

    # ------------------------------------------------------------------
    # Dropout vs GRNA (NN model).
    # ------------------------------------------------------------------
    print("\n[dropout defense / NN model]")
    print(f"  {'dropout':>16}  {'model acc':>9}  {'GRNA mse':>9}")
    for dropout in (0.0, 0.25, 0.5):
        report = run_scenario(
            ScenarioConfig(
                dataset="drive", model="nn", attack="grna",
                model_params={"dropout": dropout},
                target_fraction=0.3, scale=SCALE, seed=0,
            )
        )
        scenario = report.scenario
        acc = scenario.model.score(scenario.X_pred_full, scenario.y_pred)
        print(f"  {dropout:>16}  {acc:>9.3f}  {report.metrics['mse']:>9.4f}")

    print("\nconclusions (paper Fig. 11): rounding to one digit breaks ESA but")
    print("leaves GRNA nearly intact; dropout costs model accuracy for only a")
    print("mild increase in GRNA error — output perturbation alone is not a")
    print("sufficient defense against correlation-learning attacks.")


if __name__ == "__main__":
    main()
