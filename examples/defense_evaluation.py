"""Evaluate the §VII countermeasures against ESA and GRNA.

Sweeps the rounding defense (b = 1..4 digits) against both attacks on a
multi-class LR deployment, then compares dropout-regularized NN training
against the undefended model, reproducing the qualitative conclusions of
Fig. 11: rounding kills ESA but not GRNA; dropout only dents GRNA.

Run:
    python examples/defense_evaluation.py
"""

import numpy as np

from repro.attacks import (
    EqualitySolvingAttack,
    GenerativeRegressionNetwork,
    RandomGuessAttack,
)
from repro.datasets import load_dataset
from repro.defenses import NoisyModel, RoundedModel
from repro.federated import FeaturePartition, train_vertical_model
from repro.metrics import mse_per_feature
from repro.models import LogisticRegression, MLPClassifier
from repro.nn.data import train_test_split

GRNA_KW = dict(hidden_sizes=(256, 128, 64), epochs=40)


def main() -> None:
    ds = load_dataset("drive", n_samples=2000)
    X_train, X_pool, y_train, y_pool = train_test_split(ds.X, ds.y, rng=0)
    partition = FeaturePartition.adversary_target(ds.n_features, 0.3, rng=0)
    view = partition.adversary_view()

    # ------------------------------------------------------------------
    # Rounding vs ESA and GRNA (LR model).
    # ------------------------------------------------------------------
    lr_model = LogisticRegression(epochs=100, lr=1.0, rng=0)
    vfl = train_vertical_model(lr_model, X_train, y_train, X_pool, y_pool, partition)
    X_adv = vfl.adversary_features()[:600]
    truth = vfl.ground_truth_target()[:600]
    rg_mse = mse_per_feature(
        RandomGuessAttack(view, rng=0).run(X_adv).x_target_hat, truth
    )

    print("[rounding defense / LR model]")
    print(f"  {'defense':>12}  {'ESA mse':>9}  {'GRNA mse':>9}   (random guess: {rg_mse:.4f})")
    for label, digits in (("none", None), ("b=4", 4), ("b=3", 3), ("b=2", 2), ("b=1", 1)):
        served = lr_model if digits is None else RoundedModel(lr_model, digits)
        vfl.model = served
        V = vfl.predict(np.arange(600))

        esa = EqualitySolvingAttack(lr_model, view)
        esa_mse = mse_per_feature(esa.run(X_adv, V).x_target_hat, truth)

        grna = GenerativeRegressionNetwork(lr_model, view, rng=1, **GRNA_KW)
        grna_mse = mse_per_feature(grna.run(X_adv, V).x_target_hat, truth)
        print(f"  {label:>12}  {esa_mse:>9.4f}  {grna_mse:>9.4f}")
    vfl.model = lr_model

    # ------------------------------------------------------------------
    # Additive noise as an alternative perturbation family.
    # ------------------------------------------------------------------
    print("\n[noise defense / LR model]")
    print(f"  {'scale':>12}  {'ESA mse':>9}  {'GRNA mse':>9}")
    for scale in (0.001, 0.01, 0.05):
        vfl.model = NoisyModel(lr_model, scale, rng=2)
        V = vfl.predict(np.arange(600))
        esa_mse = mse_per_feature(
            EqualitySolvingAttack(lr_model, view).run(X_adv, V).x_target_hat, truth
        )
        grna = GenerativeRegressionNetwork(lr_model, view, rng=1, **GRNA_KW)
        grna_mse = mse_per_feature(grna.run(X_adv, V).x_target_hat, truth)
        print(f"  {scale:>12}  {esa_mse:>9.4f}  {grna_mse:>9.4f}")
    vfl.model = lr_model

    # ------------------------------------------------------------------
    # Dropout vs GRNA (NN model).
    # ------------------------------------------------------------------
    print("\n[dropout defense / NN model]")
    print(f"  {'dropout':>12}  {'model acc':>9}  {'GRNA mse':>9}")
    for dropout in (0.0, 0.25, 0.5):
        nn = MLPClassifier(hidden_sizes=(64, 32), epochs=12, dropout=dropout, rng=0)
        vfl_nn = train_vertical_model(nn, X_train, y_train, X_pool, y_pool, partition)
        V = vfl_nn.predict(np.arange(600))
        grna = GenerativeRegressionNetwork(nn, view, rng=1, **GRNA_KW)
        grna_mse = mse_per_feature(grna.run(X_adv, V).x_target_hat, truth)
        acc = nn.score(X_pool, y_pool)
        print(f"  {dropout:>12}  {acc:>9.3f}  {grna_mse:>9.4f}")

    print("\nconclusions (paper Fig. 11): rounding to one digit breaks ESA but")
    print("leaves GRNA nearly intact; dropout costs model accuracy for only a")
    print("mild increase in GRNA error — output perturbation alone is not a")
    print("sufficient defense against correlation-learning attacks.")


if __name__ == "__main__":
    main()
