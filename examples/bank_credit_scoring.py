"""Digital-banking scenario from the paper's introduction (Fig. 1).

A bank and a FinTech company align customers with PSI, jointly train a
credit-scoring model over vertically partitioned features, and serve
predictions for new applicants. The bank (active party) then mounts the
GRNA attack to reconstruct the FinTech's private columns — deposit-like
and shopping-behaviour features — from nothing but prediction outputs.

Because the deployment here is custom (PSI-aligned rows rather than a
registry dataset split), this example drives the scenario API one level
below the facade: it hand-builds a :class:`~repro.api.VFLScenario` and
runs the registry attack through the unified ``prepare``/``run``
protocol — the same protocol ``run_scenario`` uses internally.

Run:
    python examples/bank_credit_scoring.py            # default scale
    python examples/bank_credit_scoring.py --smoke    # tiny scale
"""

import sys

import numpy as np

from repro.api import ATTACKS, VFLScenario
from repro.config import ScaleConfig
from repro.datasets import load_dataset
from repro.federated import (
    FeaturePartition,
    align_datasets,
    train_vertical_model,
)
from repro.metrics import feature_wise_mse, mse_per_feature
from repro.metrics.correlation import correlation_report
from repro.models import MLPClassifier
from repro.nn.data import train_test_split

SMOKE = "--smoke" in sys.argv

SCALE = ScaleConfig(
    name="credit-smoke" if SMOKE else "credit",
    n_samples=600 if SMOKE else 2400,
    n_predictions=160 if SMOKE else 800,
    n_trials=1,
    grna_hidden=(32,) if SMOKE else (256, 128, 64),
    grna_epochs=5 if SMOKE else 40,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Private set intersection: both organizations hold overlapping
    #    but distinct customer bases and align on the common ids.
    # ------------------------------------------------------------------
    ds = load_dataset("credit", n_samples=SCALE.n_samples)
    rng = np.random.default_rng(0)
    overlap = int(ds.n_samples * 0.92)
    all_ids = np.arange(10_000, 10_000 + ds.n_samples)
    bank_rows = np.sort(rng.choice(ds.n_samples, size=overlap, replace=False))
    fintech_rows = np.sort(rng.choice(ds.n_samples, size=overlap, replace=False))

    partition = FeaturePartition.adversary_target(ds.n_features, 0.35, rng=1)
    view = partition.adversary_view()
    bank_cols, fintech_cols = view.adversary_indices, view.target_indices

    common_ids, (bank_data, fintech_data, labels_aligned) = align_datasets(
        [all_ids[bank_rows], all_ids[fintech_rows], all_ids[bank_rows]],
        [
            ds.X[np.ix_(bank_rows, bank_cols)],
            ds.X[np.ix_(fintech_rows, fintech_cols)],
            ds.y[bank_rows, None],
        ],
    )
    print(f"PSI: bank has {bank_rows.size} customers, fintech {fintech_rows.size}; "
          f"intersection {common_ids.size}")

    joint = view.assemble(bank_data, fintech_data)
    labels = labels_aligned[:, 0].astype(np.int64)

    # ------------------------------------------------------------------
    # 2. Joint training and prediction serving.
    # ------------------------------------------------------------------
    X_train, X_pool, y_train, y_pool = train_test_split(joint, labels, rng=2)
    model = MLPClassifier(
        hidden_sizes=(16,) if SMOKE else (64, 32),
        epochs=3 if SMOKE else 12,
        rng=0,
    )
    vfl = train_vertical_model(model, X_train, y_train, X_pool, y_pool, partition)
    print(f"credit model accuracy: {vfl.model.score(X_train, y_train):.3f} (train), "
          f"{vfl.model.score(X_pool, y_pool):.3f} (prediction pool)")

    # The bank accumulates prediction outputs over time (paper §V: "in a
    # week or a month, as long as the vertical FL model is unchanged").
    accumulated = np.arange(min(SCALE.n_predictions, vfl.n_samples))
    V = vfl.predict(accumulated)
    print(f"bank accumulated {V.shape[0]} prediction outputs\n")

    # ------------------------------------------------------------------
    # 3. The attack: reconstruct the FinTech's columns through the
    #    unified registry protocol.
    # ------------------------------------------------------------------
    X_adv = vfl.adversary_features()[accumulated]
    truth = vfl.ground_truth_target()[accumulated]
    scenario = VFLScenario(
        dataset=ds,
        model=vfl.model,
        vfl=vfl,
        view=view,
        X_adv=X_adv,
        X_target=truth,
        V=V,
        X_pred_full=view.assemble(X_adv, truth),
        y_pred=y_pool[accumulated],
    )
    grna = ATTACKS.create("grna").prepare(scenario, scale=SCALE, seed=3)
    result = grna.run(X_adv, V)
    rg = ATTACKS.create("random_uniform").prepare(scenario, seed=0).run(X_adv, V)

    grna_mse = mse_per_feature(result.x_target_hat, truth)
    rg_mse = mse_per_feature(rg.x_target_hat, truth)
    print("[attack outcome]")
    print(f"  GRNA MSE per feature : {grna_mse:.4f}")
    print(f"  random-guess baseline: {rg_mse:.4f}")
    print(f"  improvement          : {rg_mse / grna_mse:.1f}x more accurate\n")

    # ------------------------------------------------------------------
    # 4. Which FinTech features leaked most? (paper Fig. 10 analysis)
    # ------------------------------------------------------------------
    report = correlation_report(
        X_adv, truth, V, feature_wise_mse(result.x_target_hat, truth)
    )
    print("[per-feature analysis]  (low MSE + high correlation = leaked)")
    print(f"  {'feature':>8}  {'mse':>8}  {'corr_adv':>8}  {'corr_pred':>9}")
    for feature_id, mse, corr_adv, corr_pred in report.rows():
        print(f"  {feature_id:>8}  {mse:>8.4f}  {corr_adv:>8.3f}  {corr_pred:>9.3f}")
    most_exposed = int(np.argmin(report.per_feature_mse))
    print(f"\n  most exposed fintech feature: column {fintech_cols[most_exposed]} "
          f"(MSE {report.per_feature_mse[most_exposed]:.4f})")


if __name__ == "__main__":
    main()
