"""Needle in traffic: isolate an attacker inside benign serving load.

The paper evaluates each feature-inference attack against a deployment
it has all to itself. This walkthrough serves the defender's view
instead: a population of benign tenants (drawn from the workload
layer's league of arrival processes) is interleaved with one GRNA-style
accumulation and replayed through a sharded, audited
``ShardedPredictionService``. The merged ``WorkloadReport`` then ranks
every consumer by anomaly score — volume plus duplicate rate, z-scored —
and the attacker surfaces as the top-1 outlier under every arrival
shape, while a per-shard rate limit (the blunt alternative) refuses
benign tenants alongside the attacker.

Also demonstrated: concurrent replay is bit-identical to single-shard
serial replay on the per-consumer accounting — the determinism contract
that makes the sharded numbers trustworthy.

Run:
    python examples/needle_in_traffic.py            # default scale
    python examples/needle_in_traffic.py --smoke    # tiny scale
"""

import sys

import numpy as np

from repro.api import build_scenario
from repro.config import ScaleConfig
from repro.workload import (
    ARRIVALS,
    ShardedPredictionService,
    attacker_trace,
    make_trace,
)

SMOKE = "--smoke" in sys.argv

SCALE = ScaleConfig(
    name="traffic-smoke" if SMOKE else "traffic",
    n_samples=400 if SMOKE else 2000,
    n_predictions=120 if SMOKE else 600,
    n_trials=1,
    fractions=(0.3,),
    lr_epochs=10 if SMOKE else 40,
)

N_BENIGN = 200 if SMOKE else 1000
N_EVENTS = 800 if SMOKE else 4000
N_SHARDS = 4


def main() -> None:
    # One deployed model serves every tenant; the attacker is just
    # another consumer name on the same boundary.
    vfl = build_scenario("bank", "lr", 0.3, SCALE, seed=0).vfl
    attacker = attacker_trace(
        "grna-attacker",
        np.arange(min(48, vfl.n_samples)),
        repeats=6,
        batch_size=16,
        seed=1,
    )

    print(
        f"[{N_BENIGN} benign tenants + 1 attacker, {N_SHARDS} shards, "
        "query_audit stacked]"
    )
    print(f"  {'arrivals':>10}  {'top-1':>14}  {'score':>7}  {'benign max':>10}  {'qps':>8}")
    for process in sorted(ARRIVALS.names()):
        benign = make_trace(
            N_BENIGN,
            N_EVENTS,
            n_samples=vfl.n_samples,
            process=process,
            seed=7,
        )
        trace = benign.merge(attacker)
        sharded = ShardedPredictionService(
            vfl,
            n_shards=N_SHARDS,
            defense_specs=("query_audit",),
            max_batch=32,
            cache=True,
            cache_size=256,
            seed=0,
        )
        report = sharded.replay(trace)

        # The determinism contract: the merged per-consumer accounting of
        # the concurrent 4-shard replay equals a serial 1-shard replay.
        oracle = ShardedPredictionService(
            vfl,
            n_shards=1,
            defense_specs=("query_audit",),
            max_batch=32,
            cache=True,
            cache_size=256,
            seed=0,
        ).replay(trace, mode="serial")
        assert report.consumer_accounting() == oracle.consumer_accounting()

        scores = report.anomaly_scores()
        top = report.ranked_consumers()[0]
        benign_max = max(
            score for name, score in scores.items() if name != "grna-attacker"
        )
        print(
            f"  {process:>10}  {top:>14}  {scores[top]:>7.2f}  "
            f"{benign_max:>10.2f}  {report.queries_per_second:>8.0f}"
        )

    # The blunt alternative: a per-shard rate limit sized for benign load
    # refuses whoever lands on a hot shard — attacker and bystanders.
    benign = make_trace(
        N_BENIGN, N_EVENTS, n_samples=vfl.n_samples, process="poisson", seed=7
    )
    trace = benign.merge(attacker)
    cap = max(1, int(1.05 * benign.n_queries / N_SHARDS))
    limited = ShardedPredictionService(
        vfl,
        n_shards=N_SHARDS,
        defense_specs=("query_audit", ("rate_limit", {"max_queries": cap})),
        max_batch=32,
        seed=0,
    ).replay(trace)
    attacker_refused = limited.refusals.get("grna-attacker", 0)
    benign_refused = sum(
        n for name, n in limited.refusals.items() if name != "grna-attacker"
    )
    print(f"\n[rate_limit alternative: {cap} queries per shard]")
    print(f"  attacker events refused: {attacker_refused}")
    print(f"  benign events refused:   {benign_refused}")

    print("\nconclusion: the audit's anomaly ranking isolates the accumulating")
    print("attacker as the top-1 outlier under every arrival shape, while the")
    print("deployment-wide rate limit punishes benign tenants that merely")
    print("share the attacker's shard.")


if __name__ == "__main__":
    main()
