"""Multi-party federation: topologies, communication metering, faults.

A four-party deployment over the bank-marketing stand-in: the bank
(active, holds labels), a colluding credit bureau, and two independent
data vendors whose columns are the attack target. The prediction
protocol runs as explicit message-passing rounds through the federation
runtime, so every cross-party byte is accounted — and can be budgeted,
exactly like query counts one layer up.

Shown here:

1. an N-party topology with a skewed (Dirichlet) column apportionment
   and one colluder feeding the adversary view;
2. the communication ledger: per-edge bytes, rounds, and the exact
   analytic cost of the accumulation;
3. a fractional communication budget that truncates the accumulation at
   the last affordable protocol round (GRNA trains on what crossed);
4. fault injection: a straggler slows a round (threaded scheduler
   overlaps the wait); a dropped party kills it with a clear error.

Run:
    python examples/multiparty_federation.py            # default scale
    python examples/multiparty_federation.py --smoke    # tiny scale
"""

import sys

from repro.api import ScenarioConfig, TopologyConfig, run_scenario
from repro.config import ScaleConfig
from repro.exceptions import PartyUnavailableError

SMOKE = "--smoke" in sys.argv

SCALE = ScaleConfig(
    name="federation-smoke" if SMOKE else "federation",
    n_samples=400 if SMOKE else 2000,
    n_predictions=120 if SMOKE else 600,
    n_trials=1,
    fractions=(0.4,),
    lr_epochs=10 if SMOKE else 40,
    mlp_hidden=(16,) if SMOKE else (64, 32),
    mlp_epochs=3 if SMOKE else 10,
    grna_hidden=(32,) if SMOKE else (256, 128, 64),
    grna_epochs=5 if SMOKE else 40,
)

TOPOLOGY = TopologyConfig(
    n_parties=4,
    colluders=(1,),                      # the credit bureau leaks to the bank
    partition="dirichlet",               # skewed column widths, not equal splits
    partition_params={"alpha": 0.6},
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1+2 — N-party GRNA with full communication accounting.
    # ------------------------------------------------------------------
    report = run_scenario(
        ScenarioConfig(
            dataset="bank", model="nn", attack="grna",
            target_fraction=0.4, scale=SCALE, seed=0,
            baselines=("uniform",),
            topology=TOPOLOGY, batch_size=32, scheduler="threaded",
        )
    )
    runtime = report.scenario.runtime
    widths = [p.n_features for p in runtime.vfl.parties]
    print("[4-party topology, dirichlet columns, party 1 colluding]")
    print(f"  party widths   : {widths} (parties 2+3 are the target)")
    print(f"  adversary view : {report.scenario.view.d_adv} columns, "
          f"target {report.scenario.view.d_target}")
    print(f"  GRNA MSE       : {report.metrics['mse']:.4f} "
          f"(random guess {report.metrics['rg_uniform_mse']:.4f})")
    cost = report.comm_cost
    print(f"  protocol cost  : {cost['bytes']} bytes over {cost['rounds']} rounds, "
          f"{cost['messages']} messages")
    for edge, stats in cost["edges"].items():
        print(f"    edge {edge:>4}   : {stats['bytes']:>8} bytes "
              f"({stats['messages']} messages)")
    projected = runtime.estimate_predict_bytes(
        report.queries_used, max_batch=32
    )
    print(f"  analytic cost  : {projected} bytes (codec-exact, no execution)\n")

    # ------------------------------------------------------------------
    # 3 — the same attack under half the communication budget.
    # ------------------------------------------------------------------
    report = run_scenario(
        ScenarioConfig(
            dataset="bank", model="nn", attack="grna",
            target_fraction=0.4, scale=SCALE, seed=0,
            baselines=("uniform",),
            topology=TOPOLOGY, batch_size=32,
            comm_budget=0.5, on_budget_exhausted="truncate",
        )
    )
    cost = report.comm_cost
    print(f"[same deployment, comm_budget=0.5 (={cost['byte_budget']} bytes)]")
    print(f"  queries served : {report.queries_used} of {SCALE.n_predictions} "
          "(the wire budget bound first)")
    print(f"  bytes moved    : {cost['bytes']} <= {cost['byte_budget']}")
    print(f"  GRNA MSE       : {report.metrics['mse']:.4f} "
          "(trained on the affordable rounds)\n")

    # ------------------------------------------------------------------
    # 4 — faults: a straggler only costs time; a dropped party fails loudly.
    # ------------------------------------------------------------------
    report = run_scenario(
        ScenarioConfig(
            dataset="bank", model="lr", attack="esa",
            target_fraction=0.4, scale=SCALE, seed=0,
            topology=TopologyConfig(
                n_parties=3,
                faults=(("straggler", {"party": 1, "delay": 0.002}),),
            ),
            scheduler="threaded",
        )
    )
    print("[straggling party 1, threaded rounds]")
    print(f"  ESA MSE        : {report.metrics['mse']:.4f} "
          "(identical result, slower round)")

    try:
        run_scenario(
            ScenarioConfig(
                dataset="bank", model="lr", attack="esa",
                target_fraction=0.4, scale=SCALE, seed=0,
                topology=TopologyConfig(
                    n_parties=3, faults=(("drop", {"party": 2}),)
                ),
            )
        )
    except PartyUnavailableError as exc:
        print(f"  dropped party  : {exc}")


if __name__ == "__main__":
    main()
