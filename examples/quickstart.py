"""Quickstart: run all three attacks against one vertical FL deployment.

Two parties — a bank (active, holds labels) and a fintech (passive) —
jointly serve models over the bank-marketing stand-in dataset. The bank
then attacks the fintech's feature values using nothing but the released
model, its own features, and the confidence scores the prediction protocol
reveals.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.attacks import (
    EqualitySolvingAttack,
    GenerativeRegressionNetwork,
    PathRestrictionAttack,
    RandomGuessAttack,
    random_path,
)
from repro.datasets import load_dataset
from repro.federated import FeaturePartition, train_vertical_model
from repro.metrics import aggregate_cbr, mse_per_feature, path_cbr
from repro.models import (
    DecisionTreeClassifier,
    LogisticRegression,
    MLPClassifier,
)
from repro.nn.data import train_test_split


def main() -> None:
    # ------------------------------------------------------------------
    # Setup: dataset, vertical split, train/prediction pools.
    # ------------------------------------------------------------------
    ds = load_dataset("bank", n_samples=2000)
    print(f"dataset: {ds.spec.name} ({ds.n_samples} rows, {ds.n_features} features, "
          f"{ds.n_classes} classes)")

    X_train, X_pool, y_train, y_pool = train_test_split(ds.X, ds.y, rng=0)
    partition = FeaturePartition.adversary_target(ds.n_features, 0.4, rng=0)
    view = partition.adversary_view()
    print(f"vertical split: bank holds {view.d_adv} features, "
          f"fintech holds {view.d_target} (the attack target)\n")

    # ------------------------------------------------------------------
    # Attack 1 — ESA on logistic regression (single prediction each).
    # ------------------------------------------------------------------
    vfl = train_vertical_model(
        LogisticRegression(epochs=40, rng=0),
        X_train, y_train, X_pool, y_pool, partition,
    )
    attack = EqualitySolvingAttack(vfl.release_model(), view)
    result = attack.run(vfl.adversary_features(), vfl.predict_all())
    truth = vfl.ground_truth_target()
    rg = RandomGuessAttack(view, rng=0).run(vfl.adversary_features())
    print("[ESA / logistic regression]")
    print(f"  exact solvable : {attack.is_exact} (needs d_target <= c-1)")
    print(f"  ESA MSE        : {mse_per_feature(result.x_target_hat, truth):.4f}")
    print(f"  random-guess   : {mse_per_feature(rg.x_target_hat, truth):.4f}\n")

    # ------------------------------------------------------------------
    # Attack 2 — PRA on a decision tree (single prediction each).
    # ------------------------------------------------------------------
    vfl = train_vertical_model(
        DecisionTreeClassifier(max_depth=5, rng=0),
        X_train, y_train, X_pool, y_pool, partition,
    )
    structure = vfl.release_model().tree_structure()
    pra = PathRestrictionAttack(structure, view)
    X_adv = vfl.adversary_features()
    labels = np.argmax(vfl.predict_all(), axis=1)
    rng = np.random.default_rng(0)
    counts, rg_counts = [], []
    for i in range(300):
        res = pra.run(X_adv[i], int(labels[i]), rng=rng)
        counts.append(path_cbr(structure, res.selected_path, X_pool[i], view.target_indices))
        rg_counts.append(
            path_cbr(structure, random_path(structure, rng), X_pool[i], view.target_indices)
        )
    print("[PRA / decision tree]")
    print(f"  tree paths     : {structure.n_prediction_paths()} total")
    print(f"  PRA CBR        : {aggregate_cbr(counts):.3f}")
    print(f"  random-path CBR: {aggregate_cbr(rg_counts):.3f}")
    example = pra.run(X_adv[0], int(labels[0]), rng=rng)
    intervals = pra.infer_intervals(example.selected_path)
    print(f"  sample leakage : restricted {example.n_paths_total} -> "
          f"{example.n_paths_restricted} paths; inferred intervals "
          f"{ {k: (round(a, 2), round(b, 2)) for k, (a, b) in intervals.items()} }\n")

    # ------------------------------------------------------------------
    # Attack 3 — GRNA on a neural network (accumulated predictions).
    # ------------------------------------------------------------------
    vfl = train_vertical_model(
        MLPClassifier(hidden_sizes=(64, 32), epochs=10, rng=0),
        X_train, y_train, X_pool, y_pool, partition,
    )
    grna = GenerativeRegressionNetwork(
        vfl.release_model(), view, hidden_sizes=(256, 128, 64), epochs=40, rng=0,
    )
    result = grna.run(vfl.adversary_features(), vfl.predict_all())
    truth = vfl.ground_truth_target()
    print("[GRNA / neural network]")
    print(f"  GRNA MSE       : {mse_per_feature(result.x_target_hat, truth):.4f}")
    print(f"  random-guess   : "
          f"{mse_per_feature(RandomGuessAttack(view, rng=0).run(X_adv).x_target_hat, truth):.4f}")
    print(f"  final loss     : {result.info['final_loss']:.5f}")


if __name__ == "__main__":
    main()
