"""Quickstart: run all three attacks against one vertical FL deployment.

Two parties — a bank (active, holds labels) and a fintech (passive) —
jointly serve models over the bank-marketing stand-in dataset. The bank
then attacks the fintech's feature values using nothing but the released
model, its own features, and the confidence scores the prediction protocol
reveals.

Every attack is one ``run_scenario`` call: pick a dataset, a model, an
attack, and a target fraction from the registries, and the facade builds
the deployment, accumulates predictions, runs the attack, and scores it.

Run:
    python examples/quickstart.py            # default scale (~a minute)
    python examples/quickstart.py --smoke    # tiny scale (~seconds)
"""

import sys

from repro.api import ATTACKS, DATASETS, MODELS, ScenarioConfig, run_scenario
from repro.config import ScaleConfig

SMOKE = "--smoke" in sys.argv

SCALE = ScaleConfig(
    name="quickstart-smoke" if SMOKE else "quickstart",
    n_samples=400 if SMOKE else 2000,
    n_predictions=120 if SMOKE else 600,
    n_trials=1,
    fractions=(0.4,),
    lr_epochs=10 if SMOKE else 40,
    mlp_hidden=(16,) if SMOKE else (64, 32),
    mlp_epochs=3 if SMOKE else 10,
    grna_hidden=(32,) if SMOKE else (256, 128, 64),
    grna_epochs=5 if SMOKE else 40,
)


def main() -> None:
    print(f"registries: attacks={ATTACKS.names()}")
    print(f"            models={MODELS.names()}")
    print(f"            datasets={DATASETS.names()}\n")

    # ------------------------------------------------------------------
    # Attack 1 — ESA on logistic regression (single prediction each).
    # ------------------------------------------------------------------
    report = run_scenario(
        ScenarioConfig(
            dataset="bank", model="lr", attack="esa",
            target_fraction=0.4, scale=SCALE, seed=0,
            baselines=("uniform",),
        )
    )
    view = report.scenario.view
    print(f"vertical split: bank holds {view.d_adv} features, "
          f"fintech holds {view.d_target} (the attack target)\n")
    print("[ESA / logistic regression]")
    print(f"  exact solvable : {report.result.info['is_exact']} (needs d_target <= c-1)")
    print(f"  ESA MSE        : {report.metrics['mse']:.4f}")
    print(f"  random-guess   : {report.metrics['rg_uniform_mse']:.4f}\n")

    # ------------------------------------------------------------------
    # Attack 2 — PRA on a decision tree (single prediction each).
    # ------------------------------------------------------------------
    report = run_scenario(
        ScenarioConfig(
            dataset="bank", model="dt", attack="pra",
            target_fraction=0.4, scale=SCALE, seed=0,
            baselines=("path",),
        )
    )
    info = report.result.info
    print("[PRA / decision tree]")
    print(f"  tree paths     : {info['n_paths_total']} total")
    print(f"  PRA CBR        : {report.metrics['pra_cbr']:.3f}")
    print(f"  random-path CBR: {report.metrics['rg_path_cbr']:.3f}")
    intervals = info["intervals"][0]
    print(f"  sample leakage : restricted {info['n_paths_total']} -> "
          f"{info['n_paths_restricted'][0]} paths; inferred intervals "
          f"{ {k: (round(a, 2), round(b, 2)) for k, (a, b) in intervals.items()} }\n")

    # ------------------------------------------------------------------
    # Attack 3 — GRNA on a neural network (accumulated predictions).
    # ------------------------------------------------------------------
    report = run_scenario(
        ScenarioConfig(
            dataset="bank", model="nn", attack="grna",
            target_fraction=0.4, scale=SCALE, seed=0,
            baselines=("uniform",),
        )
    )
    print("[GRNA / neural network]")
    print(f"  GRNA MSE       : {report.metrics['mse']:.4f}")
    print(f"  random-guess   : {report.metrics['rg_uniform_mse']:.4f}")
    print(f"  final loss     : {report.result.info['final_loss']:.5f}")
    print(f"  queries used   : {report.queries_used} "
          "(every prediction the protocol revealed was metered)\n")

    # ------------------------------------------------------------------
    # The serving boundary — the same attack against a metered deployment
    # that only answers half as many queries, truncating at the budget.
    # ------------------------------------------------------------------
    budget = SCALE.n_predictions // 2
    report = run_scenario(
        ScenarioConfig(
            dataset="bank", model="nn", attack="grna",
            target_fraction=0.4, scale=SCALE, seed=0,
            baselines=("uniform",),
            query_budget=budget, batch_size=32,
            on_budget_exhausted="truncate",
        )
    )
    print(f"[GRNA / neural network, query_budget={budget}]")
    print(f"  queries used   : {report.queries_used} (ledger stopped serving)")
    print(f"  GRNA MSE       : {report.metrics['mse']:.4f} "
          "(trained on the affordable prefix)")
    print(f"  random-guess   : {report.metrics['rg_uniform_mse']:.4f}")


if __name__ == "__main__":
    main()
