"""Audit how much a tree-model deployment leaks through its predictions.

A passive party can run this *before* agreeing to serve a decision tree or
random forest in vertical FL: it simulates the Path Restriction Attack and
the GRNA-on-RF attack against its own columns and reports how many paths
survive restriction, which value intervals an adversary could pin down,
and the branch-recovery rate — then shows the pre-collaboration screening
and post-processing verification countermeasures in action.

Run:
    python examples/tree_leakage_audit.py
"""

import numpy as np

from repro.attacks import PathRestrictionAttack, attack_random_forest
from repro.datasets import load_dataset
from repro.defenses import LeakageVerifier, screen_collaboration
from repro.federated import FeaturePartition
from repro.metrics import aggregate_cbr, reconstruction_cbr
from repro.models import (
    DecisionTreeClassifier,
    RandomForestClassifier,
    RandomForestDistiller,
)


def main() -> None:
    ds = load_dataset("bank", n_samples=1500)
    partition = FeaturePartition.adversary_target(ds.n_features, 0.4, rng=0)
    view = partition.adversary_view()
    X_adv_all, X_target_all = view.split(ds.X)
    print(f"auditing: {view.d_target} private columns against an adversary "
          f"holding {view.d_adv}\n")

    # ------------------------------------------------------------------
    # 1. Decision tree: path restriction exposure.
    # ------------------------------------------------------------------
    tree = DecisionTreeClassifier(max_depth=5, rng=0).fit(ds.X, ds.y)
    structure = tree.tree_structure()
    attack = PathRestrictionAttack(structure, view)
    labels = tree.predict(ds.X)

    rng = np.random.default_rng(1)
    survivors, pinned = [], 0
    for i in range(500):
        result = attack.run(X_adv_all[i], int(labels[i]), rng=rng)
        survivors.append(result.n_paths_restricted)
        if result.n_paths_restricted == 1:
            pinned += 1
    print("[decision tree / path restriction]")
    print(f"  tree has {structure.n_prediction_paths()} root-to-leaf paths")
    print(f"  after restriction: median {int(np.median(survivors))} paths survive")
    print(f"  fully pinned predictions: {pinned / 500:.1%} "
          f"(adversary identifies the exact path)")

    example = attack.run(X_adv_all[0], int(labels[0]), rng=rng)
    intervals = attack.infer_intervals(example.selected_path)
    if intervals:
        feature, (low, high) = next(iter(intervals.items()))
        print(f"  example leakage: private feature {feature} is in "
              f"({low:.2f}, {high:.2f}) — interval width {high - low:.2f}\n")
    else:
        print("  example leakage: selected path tests no private feature\n")

    # ------------------------------------------------------------------
    # 2. Random forest: GRNA branch recovery.
    # ------------------------------------------------------------------
    forest = RandomForestClassifier(n_trees=25, max_depth=3, rng=0).fit(ds.X, ds.y)
    n_attack = 300
    V = forest.predict_proba(ds.X[:n_attack])
    distiller = RandomForestDistiller(
        hidden_sizes=(512, 128), n_dummy=4000, epochs=10, rng=2
    )
    result, surrogate = attack_random_forest(
        forest, view, X_adv_all[:n_attack], V,
        distiller=distiller,
        grna_kwargs=dict(hidden_sizes=(256, 128, 64), epochs=40),
        rng=3,
    )
    full_hat = view.assemble(X_adv_all[:n_attack], result.x_target_hat)
    counts = []
    for i in range(n_attack):
        for tree_structure in forest.tree_structures():
            counts.append(
                reconstruction_cbr(
                    tree_structure, ds.X[i], full_hat[i], view.target_indices
                )
            )
    print("[random forest / GRNA]")
    print(f"  surrogate fidelity : {surrogate.fidelity(ds.X[:n_attack]):.3f}")
    print(f"  branch recovery    : {aggregate_cbr(counts):.3f} "
          f"(0.5 = coin flip)\n")

    # ------------------------------------------------------------------
    # 3. Countermeasures the passive party can demand.
    # ------------------------------------------------------------------
    screening = screen_collaboration(
        X_adv_all, X_target_all, ds.n_classes, correlation_threshold=0.45
    )
    print("[pre-collaboration screening]")
    print(f"  ESA exact-solve risk : {screening.esa_exact_risk}")
    print(f"  feature exposure     : {np.round(screening.feature_exposure, 3)}")
    print(f"  columns to withhold  : {screening.flagged_features.tolist()}\n")

    verifier = LeakageVerifier(view)
    blocked = 0
    for i in range(200):
        decision = verifier.verify_tree_output(
            structure, X_adv_all[i], int(labels[i]), min_candidate_paths=3
        )
        if not decision.release:
            blocked += 1
    print("[post-processing verification]")
    print(f"  outputs blocked at min_candidate_paths=3: {blocked / 200:.1%}")
    print("  (each blocked output would have let the adversary narrow the")
    print("   prediction to fewer than 3 candidate paths)")


if __name__ == "__main__":
    main()
