"""Audit how much a tree-model deployment leaks through its predictions.

A passive party can run this *before* agreeing to serve a decision tree or
random forest in vertical FL: it simulates the Path Restriction Attack and
the GRNA-on-RF attack against its own columns and reports how many paths
survive restriction, which value intervals an adversary could pin down,
and the branch-recovery rate — then shows the pre-collaboration screening
and post-processing verification countermeasures in action, composed
through the scenario API's defense registry.

Run:
    python examples/tree_leakage_audit.py            # default scale
    python examples/tree_leakage_audit.py --smoke    # tiny scale
"""

import sys

import numpy as np

from repro.api import DEFENSES, ScenarioConfig, run_scenario
from repro.config import ScaleConfig
from repro.exceptions import ScenarioError

SMOKE = "--smoke" in sys.argv

SCALE = ScaleConfig(
    name="audit-smoke" if SMOKE else "audit",
    n_samples=400 if SMOKE else 1500,
    n_predictions=120 if SMOKE else 500,
    n_trials=1,
    dt_depth=5,
    rf_trees=8 if SMOKE else 25,
    rf_depth=3,
    grna_hidden=(32,) if SMOKE else (256, 128, 64),
    grna_epochs=5 if SMOKE else 40,
    distiller_hidden=(64,) if SMOKE else (512, 128),
    distiller_dummy=500 if SMOKE else 4000,
    distiller_epochs=3 if SMOKE else 10,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Decision tree: path restriction exposure.
    # ------------------------------------------------------------------
    report = run_scenario(
        ScenarioConfig(
            dataset="bank", model="dt", attack="pra",
            target_fraction=0.4, scale=SCALE, seed=0,
            baselines=("path",),
        )
    )
    view = report.scenario.view
    info = report.result.info
    survivors = info["n_paths_restricted"]
    pinned = sum(1 for n in survivors if n == 1)
    print(f"auditing: {view.d_target} private columns against an adversary "
          f"holding {view.d_adv}\n")
    print("[decision tree / path restriction]")
    print(f"  tree has {info['n_paths_total']} root-to-leaf paths")
    print(f"  after restriction: median {int(np.median(survivors))} paths survive")
    print(f"  fully pinned predictions: {pinned / len(survivors):.1%} "
          f"(adversary identifies the exact path)")
    print(f"  PRA branch recovery: {report.metrics['pra_cbr']:.3f} vs "
          f"{report.metrics['rg_path_cbr']:.3f} for a random path")

    example = next((iv for iv in info["intervals"] if iv), None)
    if example:
        feature, (low, high) = next(iter(example.items()))
        print(f"  example leakage: private feature {feature} is in "
              f"({low:.2f}, {high:.2f}) — interval width {high - low:.2f}\n")
    else:
        print("  example leakage: no selected path tests a private feature\n")

    # ------------------------------------------------------------------
    # 2. Random forest: GRNA branch recovery.
    # ------------------------------------------------------------------
    report = run_scenario(
        ScenarioConfig(
            dataset="bank", model="rf", attack="grna",
            target_fraction=0.4, scale=SCALE, seed=0,
            baselines=("uniform",), compute_cbr=True,
        )
    )
    print("[random forest / GRNA]")
    print(f"  reconstruction MSE : {report.metrics['mse']:.4f} "
          f"(random guess {report.metrics['rg_uniform_mse']:.4f})")
    print(f"  branch recovery    : {report.metrics['cbr']:.3f} "
          f"(0.5 = coin flip, random guess {report.metrics['rg_uniform_cbr']:.3f})\n")

    # ------------------------------------------------------------------
    # 3. Countermeasures the passive party can demand, straight from the
    #    defense registry.
    # ------------------------------------------------------------------
    screened = run_scenario(
        ScenarioConfig(
            dataset="bank", model="rf", attack="grna",
            defenses=(("screening", {"correlation_threshold": 0.45}),),
            target_fraction=0.4, scale=SCALE, seed=0,
            baselines=("uniform",),
        )
    )
    dropped = screened.scenario.meta["screening"]["dropped_columns"]
    print("[pre-collaboration screening]")
    print(f"  registry entry       : {DEFENSES.get('screening').__name__}")
    print(f"  columns withheld     : {dropped}")
    print(f"  GRNA MSE afterwards  : {screened.metrics['mse']:.4f} on the "
          f"{screened.scenario.view.d_target} columns still contributed\n")

    print("[post-processing verification]")
    try:
        verified = run_scenario(
            ScenarioConfig(
                dataset="bank", model="dt", attack="pra",
                defenses=(("verification", {"min_candidate_paths": 3}),),
                target_fraction=0.4, scale=SCALE, seed=0,
            )
        )
    except ScenarioError:
        # Every pending output would let the adversary narrow the tree to
        # fewer than 3 candidate paths — the verifier refuses to serve
        # this deployment at all, the strongest possible audit verdict.
        print("  outputs blocked at min_candidate_paths=3: 100.0%")
        print("  verdict: this tree should not be served without an output defense")
    else:
        n_blocked = verified.scenario.meta["n_blocked"]
        n_total = n_blocked + verified.scenario.V.shape[0]
        print(f"  outputs blocked at min_candidate_paths=3: {n_blocked / n_total:.1%}")
        print("  (each blocked output would have let the adversary narrow the")
        print("   prediction to fewer than 3 candidate paths)")


if __name__ == "__main__":
    main()
