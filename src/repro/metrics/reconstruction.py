"""Reconstruction-accuracy metrics: MSE per feature (paper Eqn 10)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.utils.validation import check_matrix


def _check_pair(x_hat, x_true) -> tuple[np.ndarray, np.ndarray]:
    x_hat = check_matrix(np.atleast_2d(x_hat), name="x_hat")
    x_true = check_matrix(np.atleast_2d(x_true), name="x_true")
    if x_hat.shape != x_true.shape:
        raise ShapeError(
            f"x_hat shape {x_hat.shape} != x_true shape {x_true.shape}"
        )
    return x_hat, x_true


def mse_per_feature(x_hat: np.ndarray, x_true: np.ndarray) -> float:
    """Mean squared error per feature (Eqn 10).

    ``(1 / (n * d_target)) * Σ_t Σ_i (x̂[t,i] − x[t,i])²`` over the whole
    inferred block.
    """
    x_hat, x_true = _check_pair(x_hat, x_true)
    diff = x_hat - x_true
    return float(np.mean(diff * diff))


def feature_wise_mse(x_hat: np.ndarray, x_true: np.ndarray) -> np.ndarray:
    """Per-column MSE vector (the x-axis annotations of Fig. 10)."""
    x_hat, x_true = _check_pair(x_hat, x_true)
    diff = x_hat - x_true
    return np.mean(diff * diff, axis=0)


def esa_mse_upper_bound(x_true: np.ndarray) -> float:
    """Paper's analytic MSE upper bound for ESA (Eqns 11-15).

    ``MSE ≤ (1/d_target) Σ_i 2 x_i²`` averaged over samples; follows from
    the minimum-norm property of the pseudo-inverse solution and features
    normalized into (0, 1). Computed here so experiments can report the
    bound next to the measured value (§VI-B's explanation of Fig. 5).
    """
    x_true = check_matrix(np.atleast_2d(x_true), name="x_true")
    return float(np.mean(2.0 * x_true * x_true))
