"""Attack-evaluation metrics: MSE per feature, CBR, correlation reports."""

from repro.metrics.reconstruction import (
    esa_mse_upper_bound,
    feature_wise_mse,
    mse_per_feature,
)
from repro.metrics.branching import (
    aggregate_cbr,
    path_branch_decisions,
    path_cbr,
    reconstruction_cbr,
)
from repro.metrics.correlation import (
    CorrelationReport,
    correlation_report,
    mean_abs_correlation_with_columns,
)

__all__ = [
    "mse_per_feature",
    "feature_wise_mse",
    "esa_mse_upper_bound",
    "path_cbr",
    "reconstruction_cbr",
    "path_branch_decisions",
    "aggregate_cbr",
    "CorrelationReport",
    "correlation_report",
    "mean_abs_correlation_with_columns",
]
