"""Correct branching rate (CBR) metrics for tree-model attacks.

The paper defines CBR as "the fraction of inferred feature values that
belong to the same branches as those computed by the ground-truth"
(§III-C). Two settings use it:

- **PRA** (Fig. 6): a candidate root-to-leaf path is selected; each
  *target-feature* decision on that path implies a branch direction, which
  is scored against the direction the true feature value would take.
  Adversary-feature decisions are excluded — they are correct by
  construction and would inflate the metric.
- **GRNA on RF** (Fig. 8): the reconstructed feature values are walked
  against each tree; every target-feature decision on the true sample's
  prediction path is scored for sign agreement.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.models.tree import TreeStructure
from repro.utils.validation import check_vector


def path_branch_decisions(
    structure: TreeStructure, path: list[int]
) -> list[tuple[int, float, bool]]:
    """Decode a root-to-leaf path into ``(feature, threshold, went_left)`` triples."""
    decisions = []
    for parent, child in zip(path[:-1], path[1:]):
        if child not in (2 * parent + 1, 2 * parent + 2):
            raise ValidationError(f"{child} is not a child of {parent} in the path")
        feature = int(structure.feature[parent])
        if feature < 0:
            raise ValidationError(f"path passes through non-internal node {parent}")
        decisions.append((feature, float(structure.threshold[parent]), child == 2 * parent + 1))
    return decisions


def path_cbr(
    structure: TreeStructure,
    path: list[int],
    x_true: np.ndarray,
    target_features: np.ndarray,
) -> tuple[int, int]:
    """Count correct target-feature branch decisions along ``path``.

    Returns ``(n_correct, n_total)``; callers aggregate over samples before
    dividing, so samples whose paths contain no target decisions don't
    contribute spurious 0/0 terms.
    """
    x_true = check_vector(x_true, name="x_true")
    target_set = set(int(f) for f in np.asarray(target_features).ravel())
    n_correct = n_total = 0
    for feature, threshold, went_left in path_branch_decisions(structure, path):
        if feature not in target_set:
            continue
        n_total += 1
        truth_left = bool(x_true[feature] <= threshold)
        if truth_left == went_left:
            n_correct += 1
    return n_correct, n_total


def reconstruction_cbr(
    structure: TreeStructure,
    x_true: np.ndarray,
    x_reconstructed_full: np.ndarray,
    target_features: np.ndarray,
) -> tuple[int, int]:
    """Score a reconstructed sample's branch agreement on the true path.

    Walks the tree with the *true* sample and, at every internal node on
    that path testing a target feature, checks whether the reconstructed
    value falls on the same side of the threshold.

    Parameters
    ----------
    x_reconstructed_full:
        Full-width sample with the adversary's own (exact) values in their
        columns and reconstructed values in the target columns.
    """
    x_true = check_vector(x_true, name="x_true")
    x_rec = check_vector(x_reconstructed_full, name="x_reconstructed_full")
    if x_true.shape != x_rec.shape:
        raise ValidationError(
            f"shape mismatch: {x_true.shape} vs {x_rec.shape}"
        )
    target_set = set(int(f) for f in np.asarray(target_features).ravel())
    path = structure.prediction_path(x_true)
    n_correct = n_total = 0
    for feature, threshold, _went_left in path_branch_decisions(structure, path):
        if feature not in target_set:
            continue
        n_total += 1
        if (x_true[feature] <= threshold) == (x_rec[feature] <= threshold):
            n_correct += 1
    return n_correct, n_total


def aggregate_cbr(counts: list[tuple[int, int]]) -> float:
    """Pool ``(n_correct, n_total)`` pairs into a single rate.

    Returns NaN if no decisions were scored at all (e.g. the tree never
    split on a target feature).
    """
    n_correct = sum(c for c, _ in counts)
    n_total = sum(t for _, t in counts)
    if n_total == 0:
        return float("nan")
    return n_correct / n_total
