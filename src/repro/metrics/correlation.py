"""Correlation diagnostics between target features, x_adv, and predictions.

Implements Eqns 16 and 17 of the paper: the mean *absolute* Pearson
correlation between each target feature and (a) the adversary's features,
(b) the confidence-score components. Fig. 10 plots these against the
per-feature reconstruction MSE to explain which features GRNA recovers
well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError
from repro.utils.numeric import pearson_correlation
from repro.utils.validation import check_matrix


def mean_abs_correlation_with_columns(
    block: np.ndarray, target_column: np.ndarray
) -> float:
    """``(1/k) Σ_j |r(block[:, j], target_column)|`` (Eqns 16/17 kernel)."""
    block = check_matrix(block, name="block")
    target_column = np.asarray(target_column, dtype=np.float64).ravel()
    if block.shape[0] != target_column.shape[0]:
        raise ShapeError(
            f"row mismatch: {block.shape[0]} vs {target_column.shape[0]}"
        )
    coefficients = [
        abs(pearson_correlation(block[:, j], target_column))
        for j in range(block.shape[1])
    ]
    return float(np.mean(coefficients))


@dataclass
class CorrelationReport:
    """Per-target-feature correlation diagnostics (one Fig. 10 panel).

    Attributes
    ----------
    corr_with_adv:
        Eqn 16 per target feature: mean |r| against the adversary's columns.
    corr_with_pred:
        Eqn 17 per target feature: mean |r| against the confidence scores.
    per_feature_mse:
        Reconstruction MSE of each target feature (the panel's x-axis).
    """

    corr_with_adv: np.ndarray
    corr_with_pred: np.ndarray
    per_feature_mse: np.ndarray

    def rows(self) -> list[tuple[int, float, float, float]]:
        """``(feature_id, mse, corr_adv, corr_pred)`` rows, paper-style."""
        return [
            (i, float(m), float(a), float(p))
            for i, (m, a, p) in enumerate(
                zip(self.per_feature_mse, self.corr_with_adv, self.corr_with_pred)
            )
        ]


def correlation_report(
    X_adv: np.ndarray,
    X_target: np.ndarray,
    V: np.ndarray,
    per_feature_mse: np.ndarray,
) -> CorrelationReport:
    """Build the Fig. 10 diagnostics for one dataset/model pair."""
    X_adv = check_matrix(X_adv, name="X_adv")
    X_target = check_matrix(X_target, name="X_target")
    V = check_matrix(V, name="V")
    per_feature_mse = np.asarray(per_feature_mse, dtype=np.float64).ravel()
    if per_feature_mse.shape[0] != X_target.shape[1]:
        raise ShapeError(
            f"per_feature_mse has {per_feature_mse.shape[0]} entries for "
            f"{X_target.shape[1]} target features"
        )
    corr_adv = np.array(
        [
            mean_abs_correlation_with_columns(X_adv, X_target[:, i])
            for i in range(X_target.shape[1])
        ]
    )
    corr_pred = np.array(
        [
            mean_abs_correlation_with_columns(V, X_target[:, i])
            for i in range(X_target.shape[1])
        ]
    )
    return CorrelationReport(
        corr_with_adv=corr_adv,
        corr_with_pred=corr_pred,
        per_feature_mse=per_feature_mse,
    )
