"""Arrival processes: deterministic request-time generation for traces.

A deployment serving "millions of users" is not exercised by one attack
accumulating a pool — it sees *traffic*: requests arriving over a time
horizon with a shape. This module is the registry of those shapes. Each
arrival process is a vectorized sampler ``(rng, n_events, horizon) ->
float64 times`` returning ``n_events`` arrival instants in
``[0, horizon)``, sorted ascending, fully determined by the generator it
is handed — the property every downstream determinism proof (sharded ==
serial replay, trace round-trips) rests on.

The league of registered processes:

``poisson``
    A homogeneous Poisson process conditioned on its event count: given
    ``N`` arrivals in ``[0, horizon)``, the instants are distributed as
    ``N`` iid uniforms, order statistics sorted — the textbook
    conditional construction, exact and O(n).
``bursty``
    Flash-crowd traffic: ``n_bursts`` centers drawn uniformly over the
    horizon, each event attached to a random center plus exponential
    jitter — heavy short-range correlation, the worst case for a cache
    bound and for per-shard load balance.
``diurnal``
    A sinusoidal day/night intensity ``λ(t) ∝ 1 + depth·sin(2πt/period)``
    sampled by inverse-CDF over a dense grid — smooth long-range
    non-stationarity, the shape real serving dashboards show.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Registry
from repro.exceptions import ValidationError
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["ARRIVALS", "poisson_arrivals", "bursty_arrivals", "diurnal_arrivals"]

#: Arrival-process samplers, keyed by short name. Each entry is a
#: callable ``(rng, n_events, horizon, **params) -> np.ndarray`` of
#: sorted float64 arrival times in ``[0, horizon)``.
ARRIVALS = Registry("arrival process")


def _check_args(n_events: int, horizon: float) -> float:
    check_positive_int(n_events, name="n_events")
    horizon = float(horizon)
    if not horizon > 0.0:
        raise ValidationError(f"horizon must be positive, got {horizon}")
    return horizon


@ARRIVALS.register("poisson")
def poisson_arrivals(
    rng: np.random.Generator, n_events: int, horizon: float
) -> np.ndarray:
    """Homogeneous Poisson arrivals, conditioned on the event count."""
    horizon = _check_args(n_events, horizon)
    times = rng.uniform(0.0, horizon, size=n_events)
    times.sort()
    return times


@ARRIVALS.register("bursty")
def bursty_arrivals(
    rng: np.random.Generator,
    n_events: int,
    horizon: float,
    *,
    n_bursts: int = 10,
    spread: float = 0.01,
) -> np.ndarray:
    """Flash-crowd arrivals clustered around random burst centers.

    ``spread`` is the exponential jitter scale as a fraction of the
    horizon; smaller means sharper spikes.
    """
    horizon = _check_args(n_events, horizon)
    check_positive_int(n_bursts, name="n_bursts")
    check_in_range(spread, name="spread", low=0.0)
    centers = rng.uniform(0.0, horizon, size=n_bursts)
    assignment = rng.integers(0, n_bursts, size=n_events)
    jitter = rng.exponential(scale=spread * horizon, size=n_events)
    # Fold overshoot back into the horizon so the support stays exact.
    times = np.mod(centers[assignment] + jitter, horizon)
    times.sort()
    return times


@ARRIVALS.register("diurnal")
def diurnal_arrivals(
    rng: np.random.Generator,
    n_events: int,
    horizon: float,
    *,
    period: "float | None" = None,
    depth: float = 0.8,
    grid: int = 4096,
) -> np.ndarray:
    """Day/night arrivals from a sinusoidal intensity, via inverse CDF.

    ``period`` defaults to the horizon (one full day per trace);
    ``depth`` in ``[0, 1)`` sets the peak-to-trough contrast.
    """
    horizon = _check_args(n_events, horizon)
    if not 0.0 <= depth < 1.0:
        raise ValidationError(f"depth must lie in [0, 1), got {depth}")
    check_positive_int(grid, name="grid")
    period = horizon if period is None else float(period)
    if not period > 0.0:
        raise ValidationError(f"period must be positive, got {period}")
    t = np.linspace(0.0, horizon, grid + 1)
    intensity = 1.0 + depth * np.sin(2.0 * np.pi * t / period)
    cdf = np.concatenate([[0.0], np.cumsum((intensity[1:] + intensity[:-1]) / 2.0)])
    cdf /= cdf[-1]
    times = np.interp(rng.uniform(0.0, 1.0, size=n_events), cdf, t)
    times.sort()
    return times
