"""Workload layer: traffic simulation over the sharded serving boundary.

The ROADMAP's north star serves "millions of users"; this package makes
that population concrete. It has three parts, each deterministic from an
integer seed:

- :mod:`~repro.workload.arrivals` — the league of arrival processes
  (``poisson``, ``bursty``, ``diurnal``) generating request instants;
- :mod:`~repro.workload.trace` — :class:`TrafficTrace`, a
  structure-of-arrays request log built by :func:`make_trace`
  (thousands-to-millions of named tenants) and :func:`attacker_trace`
  (one adversary's accumulation), merged by arrival time;
- :mod:`~repro.workload.sharded` — :class:`ShardedPredictionService`,
  N share-nothing serving shards whose concurrent replay is
  bit-identical to serial replay, merged into a :class:`WorkloadReport`
  whose anomaly ranking answers the needle-in-traffic question: does
  the GRNA/PRA/ESA consumer stand out from benign load?

::

    from repro.workload import ShardedPredictionService, make_trace

    trace = make_trace(1000, 5000, n_samples=vfl.n_samples, seed=7)
    sharded = ShardedPredictionService(vfl, n_shards=4, cache=True,
                                       cache_size=64)
    report = sharded.replay(trace)
    report.queries_per_second, report.ranked_consumers()[:3]
"""

from repro.workload.arrivals import ARRIVALS
from repro.workload.sharded import (
    ShardedPredictionService,
    WorkloadReport,
    shard_of,
)
from repro.workload.trace import TrafficTrace, attacker_trace, make_trace

__all__ = [
    "ARRIVALS",
    "ShardedPredictionService",
    "TrafficTrace",
    "WorkloadReport",
    "attacker_trace",
    "make_trace",
    "shard_of",
]
