"""Sharded multi-tenant serving: concurrent replay, serial accounting.

:class:`ShardedPredictionService` runs ``n_shards`` independent
:class:`~repro.serving.PredictionService` instances over one deployed
model. The design is **share-nothing**: every shard owns its
:class:`~repro.serving.QueryLedger`, its (LRU-bounded) response caches,
and its own :class:`~repro.api.defenses.DefenseStack` instances, and
every consumer is pinned to exactly one shard by a stable content hash
of its name (``crc32``, never Python's salted ``hash``). Because no
serving state crosses a shard boundary and each shard processes its
consumers' requests in trace order, concurrent replay is **bit-identical
to serial replay of the same shards** — no locks, no retries, and the
differential tests assert equality on the merged accounting, not mere
statistical agreement.

A second, stronger invariance — the merged accounting not depending on
the *shard count* at all (``N`` shards == 1 shard) — holds exactly when
all serving state is consumer-scoped: ``cache_scope="consumer"`` (the
default here), per-consumer budgets only, and consumer-scoped defense
signals. Deployment-wide state (a shared cache, ``rate_limit``'s global
cap, ``query_audit``'s cross-tenant ``seen`` tally) is legitimately
per-shard and changes with the layout; the per-consumer tallies the
anomaly ranking uses do not.

Replay deliberately returns accounting, not score matrices — a workload
is a load test of the metered boundary, and keeping a million response
rows would be an unbounded allocation for numbers nobody reads. For the
same reason the deployment's forensic
:attr:`~repro.federated.VerticalFLModel.prediction_log_` is gated off
for the duration of a replay.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.api.defenses import DefenseStack, QueryAuditDefense
from repro.checkpoint import CheckpointPlan, content_fingerprint, raw_fragment
from repro.exceptions import (
    QueryBudgetExceededError,
    ServiceUnavailableError,
    ValidationError,
)
from repro.federated.model import VerticalFLModel
from repro.serving.ledger import QueryLedger
from repro.serving.service import PredictionService
from repro.telemetry import MemorySink, Tracer
from repro.utils.random import spawn_rngs
from repro.utils.validation import check_positive_int
from repro.workload.trace import TrafficTrace

__all__ = ["ShardedPredictionService", "WorkloadReport", "shard_of"]

#: Replay execution modes: one worker thread per shard, or the same
#: shard-by-shard work on the calling thread (the differential oracle).
REPLAY_MODES = ("threads", "serial")


def shard_of(consumer: str, n_shards: int) -> int:
    """The shard a consumer is pinned to — a stable content hash.

    ``crc32`` rather than ``hash()``: Python salts string hashes per
    process, and a pinning that moves between runs would unmoor every
    determinism statement this module makes.
    """
    return zlib.crc32(consumer.encode("utf-8")) % n_shards


def _zscores(values: np.ndarray) -> np.ndarray:
    std = float(values.std())
    if std == 0.0:
        return np.zeros_like(values)
    return (values - values.mean()) / std


@dataclass
class WorkloadReport:
    """Merged accounting of one trace replay.

    ``accounting()`` is the timing-free payload two replays of the same
    trace can be compared on bit-for-bit; ``as_dict()`` adds wall-clock
    throughput for benches and experiment artifacts.
    """

    n_shards: int
    mode: str
    trace: dict[str, Any]
    ledger: dict[str, Any]
    shard_ledgers: list[dict[str, Any]]
    refusals: dict[str, int]
    audit: dict[str, Any]
    elapsed_s: float = 0.0

    @property
    def queries_per_second(self) -> float:
        """Sustained individual predictions served per wall-clock second."""
        if self.elapsed_s <= 0.0:
            return 0.0
        served = self.ledger["queries_used"] + self.ledger["cache_hits"]
        return served / self.elapsed_s

    # ------------------------------------------------------------------
    # Needle-in-traffic ranking
    # ------------------------------------------------------------------
    def anomaly_scores(self) -> dict[str, float]:
        """Per-consumer anomaly score: volume + duplication, standardized.

        Each consumer's request volume (served + replayed + refused
        events) and duplicate rate (audited per-consumer duplicates when
        a ``query_audit`` defense ran, else cache replays) are z-scored
        across the population and summed — an adversary accumulating a
        pool and re-querying it to average noise away is an outlier on
        both axes, while volume alone would also flag a merely chatty
        benign tenant.
        """
        counts: dict[str, int] = dict(self.ledger["counts"])
        hits: dict[str, int] = dict(self.ledger["cache_hit_counts"])
        consumers = list(
            dict.fromkeys(
                [*counts, *hits, *self.refusals, *self.audit["consumer_queries"]]
            )
        )
        if not consumers:
            return {}
        audited: dict[str, int] = self.audit["consumer_queries"]
        duplicates: dict[str, int] = self.audit["consumer_duplicates"]
        volume = np.empty(len(consumers))
        dup_rate = np.empty(len(consumers))
        for i, name in enumerate(consumers):
            served = counts.get(name, 0) + hits.get(name, 0)
            volume[i] = served + self.refusals.get(name, 0)
            asked = audited.get(name, served)
            dups = (
                duplicates.get(name, 0) if audited else hits.get(name, 0)
            )
            dup_rate[i] = dups / asked if asked else 0.0
        scores = _zscores(volume) + _zscores(dup_rate)
        return {name: float(scores[i]) for i, name in enumerate(consumers)}

    def ranked_consumers(self) -> list[str]:
        """Consumers by descending anomaly score (name breaks ties)."""
        scores = self.anomaly_scores()
        return sorted(scores, key=lambda name: (-scores[name], name))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def consumer_accounting(self) -> dict[str, Any]:
        """The layout-invariant payload: per-consumer accounting only.

        Two replays of one trace through *different shard counts* agree
        on this dict exactly (given consumer-scoped serving state);
        deployment-wide tallies — per-shard ledgers, the audit's
        cross-tenant ``seen``/``duplicates`` — legitimately depend on
        the layout and are excluded.
        """
        return {
            "trace": dict(self.trace),
            "ledger": self.ledger,
            "refusals": dict(self.refusals),
            "consumer_queries": dict(self.audit["consumer_queries"]),
            "consumer_duplicates": dict(self.audit["consumer_duplicates"]),
        }

    def accounting(self) -> dict[str, Any]:
        """The deterministic payload — everything except wall-clock."""
        return {
            "n_shards": self.n_shards,
            "trace": dict(self.trace),
            "ledger": self.ledger,
            "shard_ledgers": list(self.shard_ledgers),
            "refusals": dict(self.refusals),
            "audit": self.audit,
        }

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready report: accounting plus mode and throughput."""
        payload = self.accounting()
        payload["mode"] = self.mode
        payload["elapsed_s"] = self.elapsed_s
        payload["queries_per_second"] = self.queries_per_second
        return payload


class ShardedPredictionService:
    """N share-nothing serving shards over one deployed VFL model.

    Parameters
    ----------
    vfl:
        The deployment every shard serves. The model itself is read-only
        during prediction (its lazy kernel tables are warmed before any
        concurrent fan-out), so sharing it is safe.
    n_shards:
        Number of independent serving shards.
    defense_specs:
        Defense specs (as accepted by
        :meth:`~repro.api.defenses.DefenseStack.from_specs`) built
        **fresh per shard** — online defenses carry mutable tallies that
        must not be shared across concurrent shards.
    consumer_budgets:
        Per-consumer query caps, handed to every shard's ledger (a
        consumer is pinned to one shard, so its cap binds exactly once).
        Deployment-wide budgets are deliberately not offered: a global
        cap needs cross-shard coordination, which share-nothing rejects.
    max_batch, cache, cache_size, exhaustion:
        Per-shard :class:`~repro.serving.PredictionService` knobs.
    cache_scope:
        Defaults to ``"consumer"`` (tenant-isolated stores) — the
        setting under which the merged accounting is invariant to the
        shard count. ``"shared"`` shares one store per *shard*, which
        is faithful to a real deployment but layout-dependent.
    seed:
        Spawns one defense stream per shard (prefix scheme), so a
        ``query_noise`` defense draws reproducibly per shard.
    breaker:
        Per-consumer circuit-breaker policy forwarded to every shard's
        :class:`~repro.serving.PredictionService` (a consumer is pinned
        to one shard, so its breaker lives in exactly one place).
        ``None`` (default) disables breaking. During replay a breaker
        refusal counts in the report's ``refusals`` like a budget
        refusal — the shard keeps serving its other consumers.
    tracer:
        Coordinator :class:`~repro.telemetry.Tracer` for the
        ``workload.replay`` span. When given, every shard additionally
        gets its **own** memory-sink tracer (share-nothing, like the
        ledgers), stamped with the global trace event index as the
        record ``step`` — :meth:`merged_trace` merges them back in
        ``(step, seq)`` order, which is invariant to both the replay
        mode and (on consumer-scoped ``(step, kind, attrs)`` content)
        the shard count.
    """

    def __init__(
        self,
        vfl: VerticalFLModel,
        *,
        n_shards: int = 1,
        defense_specs: "tuple | list" = (),
        consumer_budgets: "dict[str, int] | None" = None,
        max_batch: "int | None" = None,
        cache: bool = False,
        cache_size: "int | None" = None,
        cache_scope: str = "consumer",
        exhaustion: str = "raise",
        seed: int = 0,
        breaker: "int | dict | None" = None,
        tracer=None,
    ) -> None:
        self.vfl = vfl
        self.n_shards = check_positive_int(n_shards, name="n_shards")
        self.defense_specs = tuple(defense_specs)
        self.tracer = tracer
        rngs = spawn_rngs(seed, self.n_shards)
        self.shards: list[PredictionService] = []
        for shard_rng in rngs:
            stack = (
                DefenseStack.from_specs(self.defense_specs)
                if self.defense_specs
                else None
            )
            self.shards.append(
                PredictionService(
                    vfl,
                    defense_stack=stack,
                    ledger=QueryLedger(consumer_budgets=consumer_budgets),
                    max_batch=max_batch,
                    cache=cache,
                    cache_size=cache_size,
                    cache_scope=cache_scope,
                    rng=shard_rng,
                    exhaustion=exhaustion,
                    breaker=breaker,
                    # Share-nothing telemetry: concurrent shard workers
                    # must never race one tracer's counters.
                    tracer=Tracer(MemorySink()) if tracer is not None else None,
                )
            )

    def shard_of(self, consumer: str) -> int:
        """The shard serving ``consumer`` (stable across runs/processes)."""
        return shard_of(consumer, self.n_shards)

    def _warm_kernels(self) -> None:
        """Build the model's lazy kernel tables before concurrent fan-out.

        Tree/forest deployments flatten their structures into decision
        tables on first predict; racing that first call from several
        shard workers is the one write the otherwise read-only model
        would see. One serial throwaway round (never charged, never
        logged) makes every later predict a pure read.
        """
        self.vfl.predict(np.zeros(1, dtype=np.int64))

    def replay(
        self,
        trace: TrafficTrace,
        *,
        mode: str = "threads",
        checkpoint: "CheckpointPlan | None" = None,
    ) -> WorkloadReport:
        """Replay a trace through the shards and merge the accounting.

        ``mode="threads"`` runs one worker per shard;  ``mode="serial"``
        performs the identical per-shard work on the calling thread.
        The two are bit-identical by construction — ``serial`` exists as
        the differential oracle and for profiling.

        With a ``checkpoint`` plan (``mode="serial"`` only — a snapshot
        captures a serial replay cursor), every event boundary may emit
        a snapshot of all shard ledgers, caches, defense rng streams and
        the refusal tallies, and the call first resumes mid-trace from
        the plan's latest matching snapshot. The resumed report's
        accounting is bit-identical to an uninterrupted serial replay —
        which is itself bit-identical to the threaded one. Checkpointing
        refuses defense stacks: per-defense tallies are not snapshotted.
        """
        if mode not in REPLAY_MODES:
            raise ValidationError(
                f"mode must be one of {REPLAY_MODES}, got {mode!r}"
            )
        if trace.n_events == 0:
            raise ValidationError("cannot replay an empty trace")
        if checkpoint is not None:
            if mode != "serial":
                raise ValidationError(
                    "checkpointed replay requires mode='serial': a snapshot "
                    "captures one serial cursor through the shards, which "
                    "concurrent workers do not have"
                )
            if self.defense_specs:
                raise ValidationError(
                    "checkpointed replay refuses defense stacks: per-defense "
                    "tallies are not snapshotted, so a resumed replay could "
                    "diverge silently"
                )
        if self.tracer is None:
            return self._replay_inner(trace, mode, checkpoint)
        # The replay mode is deliberately not a span attr: the threaded
        # and the serial replay of one trace produce identical records.
        with self.tracer.span("workload.replay", events=int(trace.n_events)) as span:
            report = self._replay_inner(trace, mode, checkpoint)
            span["refused"] = int(sum(report.refusals.values()))
            return report

    def _replay_inner(
        self,
        trace: TrafficTrace,
        mode: str,
        checkpoint: "CheckpointPlan | None",
    ) -> WorkloadReport:
        pins = np.fromiter(
            (shard_of(name, self.n_shards) for name in trace.names),
            dtype=np.int64,
            count=len(trace.names),
        )
        event_shards = pins[trace.consumer_ids]
        shard_events = [
            np.flatnonzero(event_shards == s) for s in range(self.n_shards)
        ]

        was_logging = self.vfl.log_predictions
        self.vfl.log_predictions = False
        try:
            self._warm_kernels()
            start = time.perf_counter()
            if checkpoint is not None:
                refusal_maps = self._replay_checkpointed(
                    trace, shard_events, checkpoint
                )
            elif mode == "serial" or self.n_shards == 1:
                refusal_maps = [
                    self._replay_shard(trace, s, shard_events[s])
                    for s in range(self.n_shards)
                ]
            else:
                with ThreadPoolExecutor(max_workers=self.n_shards) as pool:
                    refusal_maps = list(
                        pool.map(
                            lambda s: self._replay_shard(
                                trace, s, shard_events[s]
                            ),
                            range(self.n_shards),
                        )
                    )
            elapsed = time.perf_counter() - start
        finally:
            self.vfl.log_predictions = was_logging

        refusals: dict[str, int] = {}
        for shard_refusals in refusal_maps:
            refusals.update(shard_refusals)  # consumers pinned -> disjoint
        return WorkloadReport(
            n_shards=self.n_shards,
            mode=mode,
            trace=trace.as_dict(),
            ledger=QueryLedger.merged(s.ledger for s in self.shards).as_dict(),
            shard_ledgers=[s.ledger.as_dict() for s in self.shards],
            refusals=refusals,
            audit=self.audit_report(),
            elapsed_s=elapsed,
        )

    # ------------------------------------------------------------------
    # Checkpointed serial replay
    # ------------------------------------------------------------------
    def _replay_fingerprint(self, trace: TrafficTrace) -> str:
        """Bind snapshots to this exact trace against this shard layout."""
        lead = self.shards[0]
        return content_fingerprint(
            {
                "workload": {
                    "n_shards": self.n_shards,
                    "max_batch": lead.max_batch,
                    "cache": lead.cache_enabled,
                    "cache_size": lead.cache_size,
                    "cache_scope": lead.cache_scope,
                    "exhaustion": lead.exhaustion,
                    "consumer_budgets": dict(lead.ledger.consumer_budgets),
                    # Only when enabled, so breaker-free fingerprints stay
                    # byte-identical to pre-resilience snapshots.
                    **(
                        {"breaker": lead.breaker_policy.to_payload()}
                        if lead.breaker_policy is not None
                        else {}
                    ),
                    # Only when traced: the shard fragments then carry
                    # tracer counters an untraced resume would drop.
                    **({"telemetry": True} if self.tracer is not None else {}),
                },
                "trace": {
                    "times": trace.times,
                    "consumer_ids": trace.consumer_ids,
                    "names": list(trace.names),
                    "sample_ids": trace.sample_ids,
                    "offsets": trace.offsets,
                },
            }
        )

    def _replay_fragments(self) -> dict:
        """One fragment per shard state item, name-spaced ``shard{s}:``."""
        fragments: dict[str, Any] = {}
        for s, service in enumerate(self.shards):
            for name, fragment in service.serving_fragments().items():
                fragments[f"shard{s}:{name}"] = fragment
        return fragments

    def _replay_checkpointed(
        self,
        trace: TrafficTrace,
        shard_events: "list[np.ndarray]",
        checkpoint: CheckpointPlan,
    ) -> "list[dict[str, int]]":
        """Serial replay with per-event snapshot boundaries and resume."""
        checkpoint.bind_fingerprint(self._replay_fingerprint(trace))
        snapshot = checkpoint.latest()
        refusal_maps: list[dict[str, int]] = [{} for _ in range(self.n_shards)]
        resume_shard, resume_cursor = 0, 0
        if snapshot is not None:
            for s, service in enumerate(self.shards):
                prefix = f"shard{s}:"
                service.restore_serving_fragments(
                    {
                        name[len(prefix):]: fragment
                        for name, fragment in snapshot.fragments.items()
                        if name.startswith(prefix)
                    }
                )
            refusal_maps = [dict(m) for m in snapshot.meta["refusals"]]
            resume_shard = int(snapshot.meta["shard"])
            resume_cursor = int(snapshot.meta["cursor"])
        # Global event numbering across the serial shard order, so the
        # snapshot step keeps increasing when the cursor crosses shards.
        bases = np.zeros(self.n_shards + 1, dtype=np.int64)
        np.cumsum([ev.size for ev in shard_events], out=bases[1:])
        for s in range(resume_shard, self.n_shards):
            start_cursor = resume_cursor if s == resume_shard else 0

            def on_event(cursor: int, shard: int = s) -> None:
                checkpoint.maybe_emit(
                    int(bases[shard]) + cursor,
                    self._replay_fragments,
                    meta={
                        "shard": shard,
                        "cursor": cursor + 1,
                        "refusals": [dict(m) for m in refusal_maps],
                    },
                )

            self._replay_shard(
                trace,
                s,
                shard_events[s],
                start=start_cursor,
                on_event=on_event,
                refused=refusal_maps[s],
            )
        return refusal_maps

    def _replay_shard(
        self,
        trace: TrafficTrace,
        shard: int,
        events: np.ndarray,
        *,
        start: int = 0,
        on_event=None,
        refused: "dict[str, int] | None" = None,
    ) -> dict[str, int]:
        """Serve one shard's events in trace order; returns its refusals.

        ``start`` skips events a checkpoint already replayed; ``on_event``
        (called with the shard-local cursor after each served event) is
        the snapshot boundary hook; ``refused`` lets a resumed replay keep
        accumulating into restored tallies.
        """
        service = self.shards[shard]
        names = trace.names
        consumer_ids = trace.consumer_ids
        offsets = trace.offsets
        sample_ids = trace.sample_ids
        query = service.query
        tracer = service.tracer
        if refused is None:
            refused = {}
        for cursor in range(start, events.size):
            i = events[cursor]
            if tracer is not None:
                # Stamp the *global* trace event index, not the
                # shard-local cursor: it survives re-pinning, so merged
                # records can be compared across shard counts.
                tracer.step = int(i)
            name = names[consumer_ids[i]]
            try:
                query(sample_ids[offsets[i] : offsets[i + 1]], consumer=name)
            except (QueryBudgetExceededError, ServiceUnavailableError):
                # Budget exhaustion and breaker refusals are both
                # per-consumer serving decisions; the shard keeps going.
                refused[name] = refused.get(name, 0) + 1
            if on_event is not None:
                on_event(cursor)
        return refused

    def merged_trace(self) -> "list[dict[str, Any]]":
        """Every shard's records, merged in ``(step, seq)`` order.

        A consumer is pinned to one shard, so records sharing a step
        come from one shard and their local ``seq`` order is the true
        order; across steps the global trace event index dominates. On
        consumer-scoped content — ``(step, kind, attrs)`` — the merge is
        invariant to the shard count; ``span``/``seq``/tick fields are
        shard-local and legitimately depend on the layout.
        """
        records: list[dict[str, Any]] = []
        for service in self.shards:
            if service.tracer is not None:
                records.extend(service.tracer.sink.records)
        records.sort(key=lambda r: (r["step"], r["seq"]))
        return records

    def audit_report(self) -> dict[str, Any]:
        """Merged ``query_audit`` tallies across every shard's stack.

        Per-consumer dicts merge disjointly (consumers are pinned);
        deployment-wide totals sum. All-zero when no shard stacks a
        ``query_audit`` defense.
        """
        merged: dict[str, Any] = {
            "distinct_samples": 0,
            "duplicates": 0,
            "consumer_queries": {},
            "consumer_duplicates": {},
        }
        for service in self.shards:
            stack = service.defense_stack
            if stack is None:
                continue
            for defense in stack:
                if not isinstance(defense, QueryAuditDefense):
                    continue
                report = defense.report()
                merged["distinct_samples"] += report["distinct_samples"]
                merged["duplicates"] += report["duplicates"]
                merged["consumer_queries"].update(report["consumer_queries"])
                merged["consumer_duplicates"].update(
                    report["consumer_duplicates"]
                )
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ShardedPredictionService(n_shards={self.n_shards}, "
            f"defenses={list(self.defense_specs) or 'none'})"
        )
