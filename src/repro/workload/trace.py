"""Deterministic traffic traces: who queries what, when.

A :class:`TrafficTrace` is a structure-of-arrays request log — arrival
``times``, per-event consumer, and a flat sample-id array sliced by
``offsets`` — so a million-event trace is a handful of numpy arrays, not
a million Python objects. Traces are built by :func:`make_trace` from a
single integer seed via the repo-wide :func:`~repro.utils.random.spawn_rngs`
prefix scheme (one child stream each for arrival times, consumer
assignment, and sample picks), merged deterministically by arrival time
(:meth:`TrafficTrace.merge`, stable on ties), and replayed through
:class:`~repro.workload.sharded.ShardedPredictionService`.

The needle-in-traffic construction the ``traffic`` experiment uses is
exactly ``benign.merge(attacker)``: a broad benign trace from
:func:`make_trace` with an attacker's accumulation trace
(:func:`attacker_trace`) interleaved at its own arrival instants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.random import spawn_rngs
from repro.utils.validation import check_positive_int
from repro.workload.arrivals import ARRIVALS

__all__ = ["TrafficTrace", "make_trace", "attacker_trace"]


@dataclass(frozen=True)
class TrafficTrace:
    """An immutable request log in structure-of-arrays form.

    Attributes
    ----------
    times:
        ``(n_events,)`` float64 arrival instants, ascending.
    consumer_ids:
        ``(n_events,)`` int64 indices into :attr:`names`.
    names:
        Distinct consumer names; index is the id used above.
    sample_ids:
        Flat int64 array of every requested sample id; event ``i``
        requests ``sample_ids[offsets[i]:offsets[i+1]]``.
    offsets:
        ``(n_events + 1,)`` int64 prefix offsets into ``sample_ids``.
    """

    times: np.ndarray
    consumer_ids: np.ndarray
    names: tuple[str, ...]
    sample_ids: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        n = self.times.shape[0]
        if self.consumer_ids.shape[0] != n or self.offsets.shape[0] != n + 1:
            raise ValidationError(
                "trace arrays disagree on the event count: "
                f"{n} times, {self.consumer_ids.shape[0]} consumer ids, "
                f"{self.offsets.shape[0]} offsets (need event count + 1)"
            )
        if n and np.any(self.times[1:] < self.times[:-1]):
            raise ValidationError("trace times must be sorted ascending")
        if self.offsets[0] != 0 or self.offsets[-1] != self.sample_ids.shape[0]:
            raise ValidationError(
                "offsets must span the flat sample array exactly"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_events(self) -> int:
        """Requests in the trace (one event = one ``query()`` call)."""
        return int(self.times.shape[0])

    @property
    def n_queries(self) -> int:
        """Individual sample predictions requested, across all events."""
        return int(self.sample_ids.shape[0])

    @property
    def n_consumers(self) -> int:
        """Distinct consumers that actually appear in the trace."""
        return int(np.unique(self.consumer_ids).shape[0])

    @property
    def horizon(self) -> float:
        """Last arrival instant (0.0 for an empty trace)."""
        return float(self.times[-1]) if self.n_events else 0.0

    def event(self, i: int) -> tuple[float, str, np.ndarray]:
        """One event as ``(time, consumer_name, sample_ids)``."""
        return (
            float(self.times[i]),
            self.names[self.consumer_ids[i]],
            self.sample_ids[self.offsets[i] : self.offsets[i + 1]],
        )

    def __iter__(self) -> Iterator[tuple[float, str, np.ndarray]]:
        return (self.event(i) for i in range(self.n_events))

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready shape summary (reports embed this, never the arrays)."""
        return {
            "n_events": self.n_events,
            "n_queries": self.n_queries,
            "n_consumers": self.n_consumers,
            "horizon": self.horizon,
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls,
        times: Sequence[float],
        consumers: Sequence[str],
        samples: Sequence[Sequence[int]],
    ) -> "TrafficTrace":
        """Build a (small) trace from per-event Python sequences."""
        if not (len(times) == len(consumers) == len(samples)):
            raise ValidationError(
                "times, consumers, and samples must have equal lengths"
            )
        order = np.argsort(np.asarray(times, dtype=np.float64), kind="stable")
        names: dict[str, int] = {}
        consumer_ids = np.empty(len(consumers), dtype=np.int64)
        flat: list[np.ndarray] = []
        offsets = np.zeros(len(consumers) + 1, dtype=np.int64)
        for position, i in enumerate(order):
            consumer_ids[position] = names.setdefault(consumers[i], len(names))
            block = np.asarray(samples[i], dtype=np.int64).ravel()
            flat.append(block)
            offsets[position + 1] = offsets[position] + block.size
        return cls(
            times=np.asarray(times, dtype=np.float64)[order],
            consumer_ids=consumer_ids,
            names=tuple(names),
            sample_ids=(
                np.concatenate(flat) if flat else np.empty(0, dtype=np.int64)
            ),
            offsets=offsets,
        )

    def merge(self, other: "TrafficTrace") -> "TrafficTrace":
        """Interleave two traces by arrival time, stably (self wins ties).

        Consumer names are unioned; a name appearing in both traces keeps
        one id, so its events from either side charge the same ledger
        entry.
        """
        name_index = {name: i for i, name in enumerate(self.names)}
        remap = np.empty(len(other.names), dtype=np.int64)
        names = list(self.names)
        for i, name in enumerate(other.names):
            at = name_index.get(name)
            if at is None:
                at = name_index[name] = len(names)
                names.append(name)
            remap[i] = at
        times = np.concatenate([self.times, other.times])
        order = np.argsort(times, kind="stable")
        consumer_ids = np.concatenate(
            [self.consumer_ids, remap[other.consumer_ids]]
        )[order]
        sizes = np.concatenate(
            [np.diff(self.offsets), np.diff(other.offsets)]
        )[order]
        offsets = np.zeros(order.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        starts = np.concatenate(
            [self.offsets[:-1], self.offsets[-1] + other.offsets[:-1]]
        )[order]
        flat = np.concatenate([self.sample_ids, other.sample_ids])
        # Gather every event's block in one shot: global position p inside
        # event i maps to flat[starts[i] + (p - offsets[i])].
        gather = np.repeat(starts - offsets[:-1], sizes) + np.arange(
            offsets[-1], dtype=np.int64
        )
        sample_ids = flat[gather]
        return TrafficTrace(
            times=times[order],
            consumer_ids=consumer_ids,
            names=tuple(names),
            sample_ids=sample_ids,
            offsets=offsets,
        )


def make_trace(
    n_consumers: int,
    n_events: int,
    *,
    n_samples: int,
    horizon: float = 1.0,
    process: str = "poisson",
    process_params: "dict[str, Any] | None" = None,
    batch_size: int = 1,
    seed: int = 0,
    prefix: str = "client",
) -> TrafficTrace:
    """Generate a benign multi-tenant trace from one integer seed.

    Parameters
    ----------
    n_consumers, n_events:
        Named tenants and request events. With ``n_events >=
        n_consumers`` every tenant appears at least once (the first
        ``n_consumers`` assignments are a permutation, the surplus
        uniform); with fewer events, the appearing tenants are a random
        distinct subset.
    n_samples:
        Size of the deployment's prediction pool; sample ids are drawn
        uniformly from ``[0, n_samples)``.
    horizon, process, process_params:
        Arrival shape — an :data:`~repro.workload.arrivals.ARRIVALS`
        key plus its parameters, over ``[0, horizon)``.
    batch_size:
        Samples per request event.
    seed:
        Master seed; three child streams (times, consumers, samples)
        are spawned via the repo's prefix scheme, so extending the
        league of processes never perturbs consumer assignment.
    prefix:
        Consumer names are ``f"{prefix}-{i}"``.
    """
    check_positive_int(n_consumers, name="n_consumers")
    check_positive_int(n_events, name="n_events")
    check_positive_int(n_samples, name="n_samples")
    check_positive_int(batch_size, name="batch_size")
    time_rng, consumer_rng, sample_rng = spawn_rngs(seed, 3)
    times = ARRIVALS.create(
        process, time_rng, n_events, horizon, **dict(process_params or {})
    )
    if n_events >= n_consumers:
        assignment = np.concatenate(
            [
                consumer_rng.permutation(n_consumers),
                consumer_rng.integers(
                    0, n_consumers, size=n_events - n_consumers
                ),
            ]
        )
        consumer_ids = consumer_rng.permutation(assignment)
    else:
        consumer_ids = consumer_rng.permutation(n_consumers)[:n_events]
    sample_ids = sample_rng.integers(
        0, n_samples, size=n_events * batch_size, dtype=np.int64
    )
    offsets = np.arange(n_events + 1, dtype=np.int64) * batch_size
    return TrafficTrace(
        times=times,
        consumer_ids=consumer_ids.astype(np.int64, copy=False),
        names=tuple(f"{prefix}-{i}" for i in range(n_consumers)),
        sample_ids=sample_ids,
        offsets=offsets,
    )


def attacker_trace(
    consumer: str,
    pool: np.ndarray,
    *,
    repeats: int = 1,
    batch_size: "int | None" = None,
    horizon: float = 1.0,
    process: str = "poisson",
    process_params: "dict[str, Any] | None" = None,
    seed: int = 0,
) -> TrafficTrace:
    """The adversary's accumulation as a trace: one consumer, one pool.

    The attacker queries its prediction pool ``repeats`` times over the
    horizon (re-querying is how an adversary averages out a per-query
    noise defense — and exactly the duplicate signature ``query_audit``
    scores), split into ``batch_size``-sized request events whose
    arrival instants follow the chosen process. Merge the result into a
    benign trace with :meth:`TrafficTrace.merge` to pose the
    needle-in-traffic question.
    """
    check_positive_int(repeats, name="repeats")
    pool = np.asarray(pool, dtype=np.int64).ravel()
    if pool.size == 0:
        raise ValidationError("attacker pool must name at least one sample")
    sample_ids = np.tile(pool, repeats)
    step = sample_ids.size if batch_size is None else int(batch_size)
    check_positive_int(step, name="batch_size")
    bounds = np.arange(0, sample_ids.size + step, step, dtype=np.int64)
    bounds[-1] = sample_ids.size
    offsets = np.unique(bounds)
    n_events = offsets.size - 1
    time_rng = spawn_rngs(seed, 1)[0]
    times = ARRIVALS.create(
        process, time_rng, n_events, horizon, **dict(process_params or {})
    )
    return TrafficTrace(
        times=times,
        consumer_ids=np.zeros(n_events, dtype=np.int64),
        names=(consumer,),
        sample_ids=sample_ids,
        offsets=offsets,
    )
