"""Random-state handling.

The whole library threads :class:`numpy.random.Generator` objects through
every stochastic component so that each experiment is reproducible from a
single integer seed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def check_random_state(
    seed: int | np.random.Generator | None, *, entropy: bool = False
) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        An ``int`` to seed a new generator, or an existing
        :class:`~numpy.random.Generator` which is returned unchanged.
        ``None`` is rejected unless ``entropy=True``: an unseeded
        generator draws OS entropy and silently produces runs nothing
        can replay, which is exactly the bug class this library exists
        to rule out.
    entropy:
        Explicit opt-in for a fresh OS-entropy generator when ``seed``
        is ``None`` — the caller is stating, in code, that the stream's
        draws never feed a reproducible result.

    Returns
    -------
    numpy.random.Generator
    """
    if seed is None:
        if not entropy:
            raise ValidationError(
                "seed is None: pass an explicit integer seed or Generator "
                "(or opt into OS entropy with entropy=True) — unseeded "
                "generators silently break reproducibility"
            )
        # The single sanctioned OS-entropy source in the library.
        # repro: allow[rng-discipline] explicit entropy=True opt-in is this function's contract
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValidationError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise ValidationError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rngs(
    seed: int | np.random.Generator | None, n: int, *, entropy: bool = False
) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Useful when several components (e.g. the trees of a random forest) each
    need their own stream but the caller supplies a single seed. The schedule
    is prefix-stable in ``n``: the first ``k`` streams of ``spawn_rngs(s, n)``
    equal ``spawn_rngs(s, k)``. ``seed=None`` requires the same explicit
    ``entropy=True`` opt-in as :func:`check_random_state`.
    """
    if n < 0:
        raise ValidationError(f"n must be non-negative, got {n}")
    rng = check_random_state(seed, entropy=entropy)
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
