"""Random-state handling.

The whole library threads :class:`numpy.random.Generator` objects through
every stochastic component so that each experiment is reproducible from a
single integer seed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def check_random_state(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for a fresh nondeterministic generator, an ``int`` to seed a
        new generator, or an existing :class:`~numpy.random.Generator` which
        is returned unchanged.

    Returns
    -------
    numpy.random.Generator
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValidationError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise ValidationError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Useful when several components (e.g. the trees of a random forest) each
    need their own stream but the caller supplies a single seed.
    """
    if n < 0:
        raise ValidationError(f"n must be non-negative, got {n}")
    rng = check_random_state(seed)
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
