"""Numerically-stable scalar/array kernels shared by models and attacks."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

#: Smallest probability used when taking logs of confidence scores.
EPS = 1e-12


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid ``1 / (1 + exp(-x))``."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def log_sigmoid(x: np.ndarray) -> np.ndarray:
    """Stable ``log(sigmoid(x))`` computed as ``-log1p(exp(-x))`` piecewise."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = -np.log1p(np.exp(-x[pos]))
    out[~pos] = x[~pos] - np.log1p(np.exp(x[~pos]))
    return out


def logit(p: np.ndarray) -> np.ndarray:
    """Inverse sigmoid; clips ``p`` away from {0, 1} for stability."""
    p = np.clip(np.asarray(p, dtype=np.float64), EPS, 1.0 - EPS)
    return np.log(p) - np.log1p(-p)


def softmax(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    z = np.asarray(z, dtype=np.float64)
    z = z - z.max(axis=axis, keepdims=True)
    ez = np.exp(z)
    return ez / ez.sum(axis=axis, keepdims=True)


def logsumexp(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable ``log(sum(exp(z)))`` along ``axis``."""
    z = np.asarray(z, dtype=np.float64)
    m = z.max(axis=axis, keepdims=True)
    out = np.log(np.exp(z - m).sum(axis=axis)) + np.squeeze(m, axis=axis)
    return out


def stable_log(p: np.ndarray) -> np.ndarray:
    """``log(p)`` with probabilities clipped away from zero."""
    return np.log(np.clip(np.asarray(p, dtype=np.float64), EPS, None))


def one_hot(y: np.ndarray, n_classes: int) -> np.ndarray:
    """Encode integer labels into a ``(n, n_classes)`` one-hot matrix."""
    y = np.asarray(y, dtype=np.int64)
    if y.ndim != 1:
        raise ValidationError(f"y must be 1-D, got shape {y.shape}")
    if n_classes <= 0:
        raise ValidationError(f"n_classes must be positive, got {n_classes}")
    if y.size and (y.min() < 0 or y.max() >= n_classes):
        raise ValidationError(
            f"labels must be in [0, {n_classes}), got range [{y.min()}, {y.max()}]"
        )
    out = np.zeros((y.shape[0], n_classes), dtype=np.float64)
    out[np.arange(y.shape[0]), y] = 1.0
    return out


def pearson_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation coefficient between two 1-D arrays.

    Returns 0.0 when either input is constant (the coefficient is undefined
    there; zero is the convention used by the paper's correlation
    diagnostics, where a constant feature carries no usable signal).
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValidationError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValidationError("need at least 2 observations")
    a = a - a.mean()
    b = b - b.mean()
    denom = np.sqrt((a * a).sum() * (b * b).sum())
    if denom == 0.0:
        return 0.0
    return float(np.clip((a * b).sum() / denom, -1.0, 1.0))
