"""Argument validation helpers used across the library.

Each helper raises :class:`repro.exceptions.ValidationError` (a subclass of
``ValueError``) with a message naming the offending argument, so call sites
stay one-liners.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.exceptions import ShapeError, ValidationError


def check_array(
    x,
    *,
    name: str = "array",
    dtype=np.float64,
    ndim: int | None = None,
    allow_empty: bool = False,
) -> np.ndarray:
    """Coerce ``x`` to a numpy array and validate its basic properties."""
    arr = np.asarray(x, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ShapeError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if np.issubdtype(arr.dtype, np.floating) and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def check_matrix(x, *, name: str = "X", dtype=np.float64) -> np.ndarray:
    """Validate a 2-D array ``(n_samples, n_features)``."""
    return check_array(x, name=name, dtype=dtype, ndim=2)


def check_vector(x, *, name: str = "x", dtype=np.float64) -> np.ndarray:
    """Validate a 1-D array."""
    return check_array(x, name=name, dtype=dtype, ndim=1)


def check_X_y(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and label vector with matching lengths."""
    X = check_matrix(X)
    y = check_array(y, name="y", dtype=np.int64, ndim=1)
    if X.shape[0] != y.shape[0]:
        raise ShapeError(
            f"X and y have inconsistent lengths: {X.shape[0]} vs {y.shape[0]}"
        )
    if np.any(y < 0):
        raise ValidationError("y must contain non-negative class indices")
    return X, y


def check_positive_int(value, *, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    value = int(value)
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return value


def check_in_range(
    value,
    *,
    name: str,
    low: float | None = None,
    high: float | None = None,
    inclusive: bool = True,
) -> float:
    """Validate that a real ``value`` lies in ``[low, high]`` (or open)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    if inclusive:
        if low is not None and value < low:
            raise ValidationError(f"{name} must be >= {low}, got {value}")
        if high is not None and value > high:
            raise ValidationError(f"{name} must be <= {high}, got {value}")
    else:
        if low is not None and value <= low:
            raise ValidationError(f"{name} must be > {low}, got {value}")
        if high is not None and value >= high:
            raise ValidationError(f"{name} must be < {high}, got {value}")
    return value


def check_probability_vector(v, *, name: str = "v", atol: float = 1e-6) -> np.ndarray:
    """Validate a vector of confidence scores: non-negative, sums to one."""
    v = check_vector(v, name=name)
    if np.any(v < -atol):
        raise ValidationError(f"{name} must be non-negative")
    total = float(v.sum())
    if abs(total - 1.0) > max(atol, 1e-6 * len(v)):
        raise ValidationError(f"{name} must sum to 1, sums to {total}")
    return np.clip(v, 0.0, None)
