"""Generic string-keyed registry for pluggable component families.

Every pluggable component family (attacks, defenses, models, datasets,
checkpoint codecs, lint rules) gets one :class:`Registry` instance. Keys
are short strings in the paper's vocabulary (``"esa"``, ``"rounding"``,
``"lr"``, ``"bank"``); unknown keys fail with a
:class:`~repro.exceptions.ScenarioError` that enumerates the valid
choices, so a typo never surfaces as a bare ``KeyError`` three layers
deep.

The class lives in :mod:`repro.utils` — the bottom of the layer DAG — so
low-level subsystems (:mod:`repro.checkpoint`, :mod:`repro.analysis`)
can host registries without importing upward; :mod:`repro.api.registry`
re-exports it for the facade's public surface.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Iterator

from repro.exceptions import ScenarioError


class Registry:
    """An ordered mapping from string keys to component factories/specs.

    Parameters
    ----------
    kind:
        Human-readable component family name (``"attack"``, ``"model"``,
        ...) used in error messages.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}

    def register(self, key: str, value: Any = None, *, replace: bool = False) -> Any:
        """Add ``value`` under ``key``; usable as a decorator.

        Duplicate keys are rejected unless ``replace=True`` — silently
        shadowing a registered component is how grids go subtly wrong.
        """
        if value is None:
            def decorator(obj: Any) -> Any:
                self.register(key, obj, replace=replace)
                return obj

            return decorator
        if not replace and key in self._entries:
            raise ScenarioError(
                f"{self.kind} {key!r} is already registered; pass replace=True "
                "to override"
            )
        self._entries[key] = value
        return value

    def get(self, key: str) -> Any:
        """Resolve ``key``, raising a choices-listing error when unknown."""
        try:
            return self._entries[key]
        except KeyError:
            raise ScenarioError(
                f"unknown {self.kind} {key!r}; choose from {self.names()}"
            ) from None

    def create(self, key: str, *args: Any, **kwargs: Any) -> Any:
        """Resolve ``key`` and call the registered factory with the arguments."""
        factory: Callable[..., Any] = self.get(key)
        return factory(*args, **kwargs)

    def names(self) -> list[str]:
        """Registered keys, in registration order."""
        return list(self._entries)

    def describe(self) -> dict[str, str]:
        """One-line description per key, in registration order.

        Sourced from the entry's ``description`` attribute (dataset
        specs), else the first docstring line of the entry (classes,
        builder functions) or of the callable a ``functools.partial``
        wraps. Entries with neither get an empty string — the CLI's
        ``list`` subcommand prints them all.
        """
        described: dict[str, str] = {}
        for key, entry in self._entries.items():
            text = getattr(entry, "description", None)
            if not isinstance(text, str):
                # A partial's own __doc__ is functools boilerplate; read
                # the wrapped callable instead.
                target = entry.func if isinstance(entry, functools.partial) else entry
                doc = getattr(target, "__doc__", None)
                text = doc.strip().splitlines()[0] if doc else ""
            described[key] = text
        return described

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Registry({self.kind!r}, {self.names()})"
