"""Shared utilities: RNG handling, validation helpers, numeric kernels."""

from repro.utils.random import check_random_state, spawn_rngs
from repro.utils.registry import Registry
from repro.utils.validation import (
    check_array,
    check_matrix,
    check_vector,
    check_X_y,
    check_in_range,
    check_positive_int,
    check_probability_vector,
)
from repro.utils.numeric import (
    log_sigmoid,
    logsumexp,
    one_hot,
    pearson_correlation,
    sigmoid,
    softmax,
    stable_log,
)

__all__ = [
    "Registry",
    "check_random_state",
    "spawn_rngs",
    "check_array",
    "check_matrix",
    "check_vector",
    "check_X_y",
    "check_in_range",
    "check_positive_int",
    "check_probability_vector",
    "sigmoid",
    "log_sigmoid",
    "softmax",
    "logsumexp",
    "stable_log",
    "one_hot",
    "pearson_correlation",
]
