"""Experiment scale presets.

The paper ran on a 12-core Xeon with full-size datasets; every experiment
here accepts a :class:`ScaleConfig` so the same code runs as a seconds-long
smoke test, a minutes-long default, or a paper-scale session. Attack
*trends* (the claims under reproduction) are stable across scales; absolute
wall-clock and third-decimal MSE are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ValidationError

#: Fractions of the feature space assigned to the attack target, as in the
#: x-axes of Figs. 5-9 (percent of total features).
PAPER_FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)


@dataclass(frozen=True)
class ScaleConfig:
    """All size knobs for one experiment run.

    Attributes
    ----------
    n_samples:
        Rows materialized per dataset (train + prediction pool).
    n_predictions:
        Prediction outputs accumulated by the adversary (GRNA training set).
    n_trials:
        Independent repetitions averaged per point (paper: 10).
    fractions:
        The d_target sweep.
    lr_epochs / mlp_hidden / mlp_epochs:
        VFL-model training budgets.
    rf_trees / rf_depth / dt_depth:
        Tree-model shapes (paper: RF 100×depth-3, DT depth 5).
    grna_hidden / grna_epochs:
        Generator budget (paper: (600, 200, 100)).
    distiller_hidden / distiller_dummy / distiller_epochs:
        RF-surrogate budget (paper: (2000, 200) on 20k dummies).
    """

    name: str
    n_samples: int
    n_predictions: int
    n_trials: int
    fractions: tuple[float, ...] = PAPER_FRACTIONS
    lr_epochs: int = 40
    mlp_hidden: tuple[int, ...] = (64, 32)
    mlp_epochs: int = 10
    rf_trees: int = 30
    rf_depth: int = 3
    dt_depth: int = 5
    grna_hidden: tuple[int, ...] = (256, 128, 64)
    grna_epochs: int = 40
    grna_batch_size: int = 64
    distiller_hidden: tuple[int, ...] = (512, 128)
    distiller_dummy: int = 4000
    distiller_epochs: int = 10

    def __post_init__(self) -> None:
        if self.n_predictions > self.n_samples:
            raise ValidationError(
                f"n_predictions={self.n_predictions} exceeds n_samples={self.n_samples}"
            )
        if not self.fractions:
            raise ValidationError("fractions must be non-empty")
        for f in self.fractions:
            if not 0.0 < f < 1.0:
                raise ValidationError(f"fractions must lie in (0, 1), got {f}")


SMOKE = ScaleConfig(
    name="smoke",
    n_samples=600,
    n_predictions=240,
    n_trials=1,
    fractions=(0.2, 0.4, 0.6),
    lr_epochs=15,
    mlp_hidden=(32, 16),
    mlp_epochs=5,
    rf_trees=10,
    grna_hidden=(64, 32),
    grna_epochs=10,
    distiller_hidden=(128, 64),
    distiller_dummy=1000,
    distiller_epochs=5,
)

DEFAULT = ScaleConfig(
    name="default",
    n_samples=3000,
    n_predictions=800,
    n_trials=3,
)

FULL = ScaleConfig(
    name="full",
    n_samples=20000,
    n_predictions=4000,
    n_trials=10,
    lr_epochs=80,
    mlp_hidden=(600, 300, 100),
    mlp_epochs=30,
    rf_trees=100,
    grna_hidden=(600, 200, 100),
    grna_epochs=60,
    distiller_hidden=(2000, 200),
    distiller_dummy=20000,
    distiller_epochs=20,
)

PRESETS = {"smoke": SMOKE, "default": DEFAULT, "full": FULL}


def get_scale(name_or_config: "str | ScaleConfig") -> ScaleConfig:
    """Resolve a preset name or pass through an explicit config."""
    if isinstance(name_or_config, ScaleConfig):
        return name_or_config
    try:
        return PRESETS[name_or_config]
    except KeyError:
        raise ValidationError(
            f"unknown scale {name_or_config!r}; choose from {sorted(PRESETS)}"
        ) from None
