"""A reverse-mode automatic-differentiation engine over numpy arrays.

This module stands in for PyTorch's autograd in the paper reproduction.
:class:`Tensor` wraps a ``numpy.ndarray`` and records the operations applied
to it; calling :meth:`Tensor.backward` walks the recorded graph in reverse
topological order and accumulates gradients into every tensor created with
``requires_grad=True``.

Design notes
------------
- All data is ``float64``. The attacks in this library are optimization
  procedures whose analysis (e.g. ESA exactness) relies on high precision.
- Broadcasting follows numpy semantics; gradients of broadcast operands are
  reduced back to the operand's shape by :func:`unbroadcast`.
- The graph is built eagerly and is acyclic by construction; ``backward``
  uses an explicit stack-based topological sort so deep generator+model
  compositions cannot hit the interpreter recursion limit.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.exceptions import GradientError, ShapeError, ValidationError

ArrayLike = "np.ndarray | float | int | list | tuple"


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape of a broadcast result) back to ``shape``.

    Sums over the axes that were added or expanded by numpy broadcasting so
    that the returned gradient has exactly ``shape``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were prepended by broadcasting.
    extra = grad.ndim - len(shape)
    if extra < 0:
        raise ShapeError(f"cannot unbroadcast {grad.shape} to {shape}")
    if extra:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were expanded from size 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    if grad.shape != shape:
        raise ShapeError(f"unbroadcast produced {grad.shape}, expected {shape}")
    return grad


def _as_array(value) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    return arr


class Tensor:
    """A node in the autodiff graph wrapping a float64 numpy array.

    Parameters
    ----------
    data:
        Array-like payload; copied to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_op")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        _op: str = "leaf",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._parents = tuple(_parents)
        self._backward = _backward
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return a copy of the underlying data as a plain ndarray."""
        return self.data.copy()

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_item(self)

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op}{grad})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if grad.shape != self.data.shape:
            raise GradientError(
                f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to ones (and must be supplied
            explicitly for non-scalar outputs only if a different seed is
            desired).
        """
        if not self.requires_grad:
            raise GradientError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise GradientError(
                    f"seed gradient shape {grad.shape} != output shape {self.data.shape}"
                )

        order = self._topological_order()
        self._accumulate(grad)
        for node in order:
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _topological_order(self) -> list["Tensor"]:
        """Reverse topological order starting at ``self`` (iterative DFS)."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out_data = self.data + other.data
        requires = self.requires_grad or other.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad, other.data.shape))

        return Tensor(out_data, requires, (self, other), backward if requires else None, "add")

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out_data = self.data * other.data
        requires = self.requires_grad or other.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad * self.data, other.data.shape))

        return Tensor(out_data, requires, (self, other), backward if requires else None, "mul")

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-_ensure_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return _ensure_tensor(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return _ensure_tensor(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise ValidationError("tensor exponents are not supported; use exp/log")
        exponent = float(exponent)
        out_data = self.data ** exponent
        requires = self.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor(out_data, requires, (self,), backward if requires else None, "pow")

    # ------------------------------------------------------------------
    # Transcendental ops
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)
        requires = self.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor(out_data, requires, (self,), backward if requires else None, "exp")

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)
        requires = self.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor(out_data, requires, (self,), backward if requires else None, "log")

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self ** 0.5

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)
        requires = self.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data * out_data))

        return Tensor(out_data, requires, (self,), backward if requires else None, "tanh")

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid with a numerically stable forward."""
        from repro.utils.numeric import sigmoid as _sigmoid

        out_data = _sigmoid(self.data)
        requires = self.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor(out_data, requires, (self,), backward if requires else None, "sigmoid")

    def relu(self) -> "Tensor":
        """Elementwise rectified linear unit."""
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0)
        requires = self.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor(out_data, requires, (self,), backward if requires else None, "relu")

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at the origin)."""
        sign = np.sign(self.data)
        out_data = np.abs(self.data)
        requires = self.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor(out_data, requires, (self,), backward if requires else None, "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside."""
        mask = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)
        requires = self.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor(out_data, requires, (self,), backward if requires else None, "clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all elements when ``None``)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        requires = self.requires_grad

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                g = np.expand_dims(g, axis=tuple(a % self.data.ndim for a in axes))
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return Tensor(out_data, requires, (self,), backward if requires else None, "sum")

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Population variance (``ddof=0``) over ``axis``, differentiable."""
        mu = self.mean(axis=axis, keepdims=True)
        diff = self - mu
        return (diff * diff).mean(axis=axis, keepdims=keepdims)

    def max_detached(self, axis: int | None = None, keepdims: bool = False) -> np.ndarray:
        """Max of the raw data (used for numerically-stable softmax shifts).

        The result is a plain array treated as a constant by autograd —
        shifting by the max does not change softmax's value or gradient.
        """
        return self.data.max(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """Return a reshaped view of the tensor."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        requires = self.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return Tensor(out_data, requires, (self,), backward if requires else None, "reshape")

    @property
    def T(self) -> "Tensor":
        """Matrix transpose (2-D only)."""
        if self.data.ndim != 2:
            raise ShapeError(f"T requires a 2-D tensor, got shape {self.shape}")
        out_data = self.data.T
        requires = self.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor(out_data, requires, (self,), backward if requires else None, "transpose")

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        requires = self.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor(out_data, requires, (self,), backward if requires else None, "getitem")

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product ``self @ other`` for 2-D operands."""
        other = _ensure_tensor(other)
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise ShapeError(
                f"matmul requires 2-D tensors, got {self.shape} and {other.shape}"
            )
        if self.data.shape[1] != other.data.shape[0]:
            raise ShapeError(f"matmul shape mismatch: {self.shape} @ {other.shape}")
        out_data = self.data @ other.data
        requires = self.requires_grad or other.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor(out_data, requires, (self, other), backward if requires else None, "matmul")

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)


def _ensure_tensor(value) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _raise_item(t: Tensor):
    raise ValidationError(f"item() requires a single-element tensor, got shape {t.shape}")


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing.

    Used to join the adversary's known features with the generator's output
    before feeding the VFL model (Algorithm 2, line 9).
    """
    tensors = [_ensure_tensor(t) for t in tensors]
    if not tensors:
        raise ValidationError("concat requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    ax = axis % out_data.ndim
    sizes = [t.data.shape[ax] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[ax] = slice(int(start), int(stop))
                t._accumulate(grad[tuple(index)])

    return Tensor(out_data, requires, tuple(tensors), backward if requires else None, "concat")


def stack_rows(tensors: Iterable[Tensor]) -> Tensor:
    """Stack 1-D tensors as rows of a 2-D tensor."""
    tensors = [_ensure_tensor(t) for t in tensors]
    reshaped = [t.reshape(1, -1) if t.ndim == 1 else t for t in tensors]
    return concat(reshaped, axis=0)


def assemble_columns(
    constant: np.ndarray,
    variable: Tensor,
    constant_positions: np.ndarray,
    variable_positions: np.ndarray,
) -> Tensor:
    """Scatter a constant block and a tensor block into interleaved columns.

    Single-node fusion of ``concat([constant, variable], axis=1)[:, perm]``
    — the "x_adv ∪ x̂_target" reassembly on GRNA's training hot path
    (Algorithm 2 line 9). The forward is one scatter instead of a
    concatenate plus a full-width gather, and the backward is one gather
    of the variable columns instead of an ``np.add.at`` scatter over the
    full joint width. Both the output and the gradient bytes are
    identical to the composition this replaces: the positions partition
    the column range, so ``add.at`` degenerates to assignment, and the
    trailing ``+ 0.0`` reproduces its ``0.0 + g`` zero-sign behavior.
    """
    constant = np.asarray(constant, dtype=np.float64)
    if constant.ndim != 2 or variable.ndim != 2:
        raise ShapeError(
            f"assemble_columns requires 2-D blocks, got {constant.shape} and {variable.shape}"
        )
    if constant.shape[0] != variable.shape[0]:
        raise ShapeError(
            f"row mismatch: {constant.shape[0]} vs {variable.shape[0]}"
        )
    constant_positions = np.asarray(constant_positions, dtype=np.int64)
    variable_positions = np.asarray(variable_positions, dtype=np.int64)
    width = constant_positions.size + variable_positions.size
    if constant.shape[1] != constant_positions.size or variable.shape[1] != variable_positions.size:
        raise ShapeError(
            "column positions do not match block widths: "
            f"{constant.shape[1]}/{constant_positions.size} and "
            f"{variable.shape[1]}/{variable_positions.size}"
        )
    combined = np.concatenate([constant_positions, variable_positions])
    combined.sort()
    if not np.array_equal(combined, np.arange(width)):
        raise ValidationError(
            "constant_positions and variable_positions must partition "
            f"the output columns 0..{width - 1} exactly"
        )
    # Column-major on purpose: the composition this fuses ends in a
    # column-gather (`concat(...)[:, perm]`) whose result numpy lays out
    # F-contiguously, and BLAS picks its reassociation by operand layout —
    # a C-ordered buffer here would flip downstream matmul bits by 1 ulp.
    out_data = np.empty((constant.shape[0], width), order="F")
    out_data[:, constant_positions] = constant
    out_data[:, variable_positions] = variable.data
    requires = variable.requires_grad

    def backward(grad: np.ndarray) -> None:
        if variable.requires_grad:
            variable._accumulate(grad[:, variable_positions] + 0.0)

    return Tensor(out_data, requires, (variable,), backward if requires else None, "assemble")
