"""Finite-difference gradient checking for the autodiff engine.

Because the GRNA attack's correctness rests entirely on the gradients of
the composed generator + VFL model, the test suite validates every
primitive op against central finite differences via :func:`gradcheck`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import GradientError, ValidationError
from repro.tensor.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    inputs = [np.asarray(x, dtype=np.float64).copy() for x in inputs]
    target = inputs[index]
    grad = np.zeros_like(target)
    flat = target.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(fn(*[Tensor(x) for x in inputs]).data.sum())
        flat[i] = orig - eps
        lo = float(fn(*[Tensor(x) for x in inputs]).data.sum())
        flat[i] = orig
        gflat[i] = (hi - lo) / (2.0 * eps)
    return grad


def analytic_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
) -> list[np.ndarray]:
    """Gradients of ``sum(fn(*inputs))`` w.r.t. every input via autodiff."""
    tensors = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    if not isinstance(out, Tensor):
        raise ValidationError("fn must return a Tensor")
    out.sum().backward() if out.size > 1 else out.backward()
    grads = []
    for t in tensors:
        grads.append(np.zeros_like(t.data) if t.grad is None else t.grad)
    return grads


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    *,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Compare autodiff gradients of ``fn`` against finite differences.

    Raises :class:`~repro.exceptions.GradientError` with a diagnostic
    message on mismatch; returns ``True`` on success so it can be asserted
    directly in tests.
    """
    analytic = analytic_gradients(fn, inputs)
    for i in range(len(inputs)):
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic[i], numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic[i] - numeric)))
            raise GradientError(
                f"gradient mismatch for input {i}: max abs diff {worst:.3e} "
                f"(atol={atol}, rtol={rtol})"
            )
    return True
