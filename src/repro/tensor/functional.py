"""Differentiable functional operations built on :class:`~repro.tensor.Tensor`.

These mirror ``torch.nn.functional`` for the subset of operations the paper
reproduction needs: activations, (log-)softmax, and the loss kernels used by
model training and the GRNA generator objective.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, ValidationError
from repro.tensor.tensor import Tensor, concat


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU: ``x`` where positive, ``negative_slope * x`` elsewhere."""
    return x.relu() - (-x).relu() * negative_slope


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    The max-shift is treated as a constant, which leaves both the value and
    the gradient of softmax unchanged.
    """
    shifted = x - Tensor(x.max_detached(axis=axis, keepdims=True))
    ez = shifted.exp()
    return ez / ez.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.max_detached(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error over all elements.

    This is the loss GRNA back-propagates between the simulated prediction
    ``v̂`` and the observed confidence scores ``v`` (Algorithm 2, line 10).
    """
    target = target if isinstance(target, Tensor) else Tensor(target)
    if prediction.shape != target.shape:
        raise ShapeError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )
    diff = prediction - target
    return (diff * diff).mean()


def fused_mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """:func:`mse_loss` collapsed into one graph node.

    The composed expression ``((p - t) * (p - t)).mean()`` builds five
    tensor nodes and materializes each intermediate; this kernel runs the
    same numpy operations in the same order (so the value is bit-identical)
    and hand-writes the single gradient the composition produces:
    ``g = (upstream / N) * diff`` accumulated as ``g + g``, exactly the
    double accumulation of the shared ``diff`` operand.
    """
    target = target if isinstance(target, Tensor) else Tensor(target)
    if prediction.shape != target.shape:
        raise ShapeError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )
    if target.requires_grad:  # pragma: no cover - not used on the hot path
        return mse_loss(prediction, target)
    diff = prediction.data + (target.data * -1.0)
    inv_n = 1.0 / diff.size
    out_data = (diff * diff).sum() * inv_n
    requires = prediction.requires_grad

    def backward(grad: np.ndarray) -> None:
        if prediction.requires_grad:
            g = (grad * inv_n) * diff
            prediction._accumulate(g + g)

    return Tensor(out_data, requires, (prediction,), backward if requires else None, "fused_mse")


def hinged_variance_penalty(x: Tensor, threshold: float, weight: float) -> Tensor:
    """``((x.var(axis=0) - threshold).relu()).mean() * weight`` in one node.

    GRNA's variance regularizer Ω (§V-A). The composed graph spans ~12
    nodes per training step; this kernel replays the identical numpy
    operation sequence forward, and the backward reproduces the
    composition's two gradient accumulations into ``x`` — the centered
    ``(x - mean)`` term followed by the mean-path broadcast — in the same
    order with the same intermediate values, so generator training is
    bit-for-bit unchanged.
    """
    if x.ndim != 2:
        raise ShapeError(f"hinged_variance_penalty requires a 2-D tensor, got {x.shape}")
    m, d = x.shape
    inv_m = 1.0 / m
    inv_d = 1.0 / d
    mu = x.data.sum(axis=0, keepdims=True) * inv_m
    diff = x.data + (mu * -1.0)
    var = (diff * diff).sum(axis=0) * inv_m
    excess = var + (float(threshold) * -1.0)
    mask = excess > 0
    out_data = np.where(mask, excess, 0.0).sum() * inv_d * weight
    requires = x.requires_grad

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g_col = np.broadcast_to((grad * weight) * inv_d, mask.shape).copy() * mask
        g_rows = np.broadcast_to(np.expand_dims(g_col * inv_m, 0), (m, d)).copy()
        g_center = g_rows * diff
        g_center = g_center + g_center
        x._accumulate(g_center)
        g_mean = (g_center.sum(axis=(0,), keepdims=True) * -1.0) * inv_m
        x._accumulate(np.broadcast_to(g_mean, (m, d)).copy())

    return Tensor(out_data, requires, (x,), backward if requires else None, "fused_var_penalty")


def binary_cross_entropy(prediction: Tensor, target: Tensor | np.ndarray, eps: float = 1e-12) -> Tensor:
    """Mean binary cross-entropy between probabilities and 0/1 targets."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    if prediction.shape != target.shape:
        raise ShapeError(
            f"prediction shape {prediction.shape} != target shape {target.shape}"
        )
    p = prediction.clip(eps, 1.0 - eps)
    loss = -(target * p.log() + (1.0 - target) * (1.0 - p).log())
    return loss.mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of raw ``logits`` against integer ``labels``."""
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ShapeError(f"logits must be 2-D, got shape {logits.shape}")
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )
    if labels.size and (labels.min() < 0 or labels.max() >= logits.shape[1]):
        raise ValidationError("labels out of range for the given logits")
    logp = log_softmax(logits, axis=1)
    picked = logp[np.arange(labels.shape[0]), labels]
    return -picked.mean()


def soft_cross_entropy(logits: Tensor, target_probs: Tensor | np.ndarray) -> Tensor:
    """Cross-entropy against a *soft* target distribution.

    Used when distilling the random forest into a neural surrogate: the
    targets are the RF's vote-fraction confidence vectors rather than hard
    labels.
    """
    target = target_probs if isinstance(target_probs, Tensor) else Tensor(target_probs)
    if logits.shape != target.shape:
        raise ShapeError(
            f"logits shape {logits.shape} != target shape {target.shape}"
        )
    logp = log_softmax(logits, axis=1)
    return -(target * logp).sum(axis=1).mean()


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero each element w.p. ``p`` and rescale by 1/(1-p)."""
    if not 0.0 <= p < 1.0:
        raise ValidationError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "leaky_relu",
    "softmax",
    "log_softmax",
    "mse_loss",
    "binary_cross_entropy",
    "cross_entropy",
    "soft_cross_entropy",
    "dropout",
    "concat",
]
