"""Reverse-mode autodiff substrate (stands in for PyTorch autograd)."""

from repro.tensor.tensor import Tensor, concat, stack_rows, unbroadcast
from repro.tensor import functional
from repro.tensor.gradcheck import gradcheck, numerical_gradient, analytic_gradients

__all__ = [
    "Tensor",
    "concat",
    "stack_rows",
    "unbroadcast",
    "functional",
    "gradcheck",
    "numerical_gradient",
    "analytic_gradients",
]
