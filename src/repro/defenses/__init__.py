"""Countermeasures against prediction-output feature inference (§VII)."""

from repro.defenses.base import ModelWrapper, unwrap_model
from repro.defenses.rounding import RoundedModel, round_confidence_scores
from repro.defenses.noise import NoisyModel, noise_confidence_scores
from repro.defenses.screening import (
    ScreeningReport,
    drop_flagged_features,
    screen_collaboration,
)
from repro.defenses.verification import LeakageVerifier, VerificationDecision

__all__ = [
    "ModelWrapper",
    "unwrap_model",
    "RoundedModel",
    "round_confidence_scores",
    "NoisyModel",
    "noise_confidence_scores",
    "ScreeningReport",
    "screen_collaboration",
    "drop_flagged_features",
    "LeakageVerifier",
    "VerificationDecision",
]
