"""Additive-noise defense on confidence scores.

Not evaluated in the paper's figures but discussed as the natural
alternative to rounding; included so the defense benches can compare the
two perturbation families under identical attacks. Noised scores are
clipped to [0, 1] and renormalized so they remain a valid confidence
vector (an output the active party would accept).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.defenses.base import ModelWrapper
from repro.exceptions import ValidationError
from repro.models.base import BaseClassifier
from repro.utils.random import check_random_state
from repro.utils.validation import check_in_range


def noise_confidence_scores(
    v: np.ndarray,
    scale: float,
    *,
    kind: str = "laplace",
    rng: np.random.Generator | int = 0,
) -> np.ndarray:
    """Perturb confidence scores with Laplace or Gaussian noise.

    Parameters
    ----------
    scale:
        Noise scale (Laplace ``b`` or Gaussian ``σ``).
    kind:
        ``"laplace"`` or ``"gaussian"``.
    """
    check_in_range(scale, name="scale", low=0.0)
    if kind not in ("laplace", "gaussian"):
        raise ValidationError(f"kind must be 'laplace' or 'gaussian', got {kind!r}")
    v = np.asarray(v, dtype=np.float64)
    if scale == 0.0:
        return v.copy()
    rng = check_random_state(rng)
    if kind == "laplace":
        noisy = v + rng.laplace(0.0, scale, size=v.shape)
    else:
        noisy = v + rng.normal(0.0, scale, size=v.shape)
    noisy = np.clip(noisy, 0.0, 1.0)
    totals = noisy.sum(axis=-1, keepdims=True)
    # Rows wiped out by clipping fall back to uniform scores.
    uniform = np.full_like(noisy, 1.0 / noisy.shape[-1])
    return np.where(totals > 0, noisy / np.where(totals > 0, totals, 1.0), uniform)


class NoisyModel(ModelWrapper):
    """Wrap a fitted model so its confidence outputs are noised.

    .. deprecated::
        Construct the defense through :mod:`repro.api` instead —
        ``DefenseStack(["noise"])`` or
        ``ScenarioConfig(defenses=[("noise", {"scale": s})])`` — which
        also lets noise chain with other output defenses. Direct
        construction keeps working unchanged but emits a
        :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        model: BaseClassifier,
        scale: float,
        *,
        kind: str = "laplace",
        rng: np.random.Generator | int = 0,
    ) -> None:
        warnings.warn(
            "Constructing NoisyModel directly is deprecated; use the "
            "'noise' entry of repro.api's defense registry "
            "(DefenseStack or ScenarioConfig(defenses=...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._configure(model, scale, kind=kind, rng=rng)

    @classmethod
    def _wrap(
        cls,
        model: BaseClassifier,
        scale: float,
        *,
        kind: str = "laplace",
        rng: np.random.Generator | int = 0,
    ) -> "NoisyModel":
        """Internal constructor for the api layer (no deprecation warning)."""
        wrapper = cls.__new__(cls)
        wrapper._configure(model, scale, kind=kind, rng=rng)
        return wrapper

    def _configure(
        self,
        model: BaseClassifier,
        scale: float,
        *,
        kind: str = "laplace",
        rng: np.random.Generator | int = 0,
    ) -> None:
        ModelWrapper.__init__(self, model)
        self.scale = check_in_range(scale, name="scale", low=0.0)
        if kind not in ("laplace", "gaussian"):
            raise ValidationError(f"kind must be 'laplace' or 'gaussian', got {kind!r}")
        self.kind = kind
        self.rng = check_random_state(rng)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return noise_confidence_scores(
            self.model.predict_proba(X), self.scale, kind=self.kind, rng=self.rng
        )
