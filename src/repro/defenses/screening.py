"""Pre-collaboration screening (§VII "Pre-processing before collaboration").

Two checks the parties run *before* agreeing to collaborate:

1. **Class-count check**: if a party contributes ``d_i ≤ c − 1`` features,
   ESA recovers them exactly from a single LR prediction — the party
   should contribute more features or demand output protection.
2. **Correlation screening**: features of one party that are strongly
   correlated with the other party's features fuel GRNA; the parties
   compute cross-party correlations (in deployment under MPC; here in the
   clear, which is behaviour-equivalent for the decision made) and drop
   the most exposed columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.correlation import mean_abs_correlation_with_columns
from repro.utils.validation import check_in_range, check_matrix, check_positive_int


@dataclass(frozen=True)
class ScreeningReport:
    """Outcome of the pre-collaboration vulnerability screen.

    Attributes
    ----------
    esa_exact_risk:
        True when ``d_target ≤ c − 1`` — ESA can solve the target's
        features exactly from one LR prediction.
    feature_exposure:
        Mean absolute cross-party correlation per target feature (higher =
        more recoverable by GRNA).
    flagged_features:
        Target-column indices whose exposure exceeds the threshold.
    """

    esa_exact_risk: bool
    feature_exposure: np.ndarray
    flagged_features: np.ndarray
    threshold: float


def screen_collaboration(
    X_other: np.ndarray,
    X_own: np.ndarray,
    n_classes: int,
    *,
    correlation_threshold: float = 0.5,
) -> ScreeningReport:
    """Screen ``X_own`` for leakage risk against a partner holding ``X_other``.

    Parameters
    ----------
    X_other:
        The partner coalition's columns (the potential adversary).
    X_own:
        This party's columns (the potential target).
    n_classes:
        Classes of the model about to be trained.
    correlation_threshold:
        Exposure above which a feature is flagged for removal.
    """
    X_other = check_matrix(X_other, name="X_other")
    X_own = check_matrix(X_own, name="X_own")
    n_classes = check_positive_int(n_classes, name="n_classes")
    check_in_range(correlation_threshold, name="correlation_threshold", low=0.0, high=1.0)
    exposure = np.array(
        [
            mean_abs_correlation_with_columns(X_other, X_own[:, i])
            for i in range(X_own.shape[1])
        ]
    )
    flagged = np.flatnonzero(exposure > correlation_threshold)
    return ScreeningReport(
        esa_exact_risk=X_own.shape[1] <= n_classes - 1,
        feature_exposure=exposure,
        flagged_features=flagged,
        threshold=float(correlation_threshold),
    )


def drop_flagged_features(X_own: np.ndarray, report: ScreeningReport) -> np.ndarray:
    """Remove the flagged columns from a party's contribution."""
    X_own = check_matrix(X_own, name="X_own")
    keep = np.setdiff1d(np.arange(X_own.shape[1]), report.flagged_features)
    return X_own[:, keep]
