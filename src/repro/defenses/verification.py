"""Post-processing leakage verification (§VII "Post-processing for verification").

Before a prediction output is revealed, the parties mimic the attacks
"inside the secure enclaves" and withhold the output if the estimated
leakage exceeds a threshold. This module simulates that check: it runs the
cheap single-prediction attacks (ESA for LR, path restriction for trees)
against the pending output and reports whether release is safe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.esa import EqualitySolvingAttack
from repro.attacks.pra import PathRestrictionAttack
from repro.exceptions import ValidationError
from repro.federated.partition import AdversaryView
from repro.metrics.reconstruction import mse_per_feature
from repro.models.logistic import LogisticRegression
from repro.models.tree import TreeStructure
from repro.utils.validation import check_in_range


@dataclass(frozen=True)
class VerificationDecision:
    """Whether a pending prediction output may be released.

    Attributes
    ----------
    release:
        True when the simulated leakage stays above the MSE floor (for
        value-reconstruction attacks) or path restriction leaves enough
        candidates.
    estimated_leakage:
        Simulated attack MSE (LR) or surviving-path count (trees).
    """

    release: bool
    estimated_leakage: float
    reason: str


class LeakageVerifier:
    """Simulate the single-prediction attacks before releasing an output."""

    def __init__(self, view: AdversaryView) -> None:
        self.view = view

    def verify_lr_output(
        self,
        model: LogisticRegression,
        x_adv: np.ndarray,
        x_target_true: np.ndarray,
        v: np.ndarray,
        *,
        min_mse: float = 0.01,
    ) -> VerificationDecision:
        """Run ESA on the pending output; block if reconstruction is too good.

        ``x_target_true`` is available because the verification runs on the
        *data-owner* side (inside the enclave), where ground truth is known.
        """
        check_in_range(min_mse, name="min_mse", low=0.0)
        attack = EqualitySolvingAttack(model, self.view)
        result = attack.run(np.atleast_2d(x_adv), np.atleast_2d(v))
        mse = mse_per_feature(result.x_target_hat, np.atleast_2d(x_target_true))
        if attack.is_exact or mse < min_mse:
            return VerificationDecision(
                release=False,
                estimated_leakage=mse,
                reason=f"ESA reconstructs target features with MSE {mse:.2e} < {min_mse}",
            )
        return VerificationDecision(
            release=True, estimated_leakage=mse, reason="leakage within tolerance"
        )

    def verify_tree_output(
        self,
        structure: TreeStructure,
        x_adv: np.ndarray,
        predicted_class: int,
        *,
        min_candidate_paths: int = 2,
    ) -> VerificationDecision:
        """Run PRA on the pending output; block if too few paths survive."""
        if min_candidate_paths < 1:
            raise ValidationError("min_candidate_paths must be at least 1")
        attack = PathRestrictionAttack(structure, self.view)
        indicator = attack.restrict(np.asarray(x_adv, dtype=np.float64), predicted_class)
        survivors = int(indicator.sum())
        if survivors < min_candidate_paths:
            return VerificationDecision(
                release=False,
                estimated_leakage=float(survivors),
                reason=(
                    f"path restriction narrows the tree to {survivors} candidate "
                    f"path(s) (< {min_candidate_paths})"
                ),
            )
        return VerificationDecision(
            release=True,
            estimated_leakage=float(survivors),
            reason="enough prediction paths remain ambiguous",
        )
