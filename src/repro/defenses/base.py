"""Shared plumbing for output-perturbation defenses.

Every §VII output defense wraps an already-fitted model so that the
prediction protocol serves perturbed confidence scores while the released
plaintext parameters stay untouched. :class:`ModelWrapper` fixes that
shape once: the wrapper is itself a
:class:`~repro.models.base.BaseClassifier` (so it slots directly into
:class:`repro.federated.VerticalFLModel`), exposes the wrapped ``model``,
and refuses ``fit``. Wrappers compose — wrapping a wrapper chains the
perturbations — and :func:`unwrap_model` recovers the innermost model,
which is what the threat model hands to the adversary (§III-B releases
the *plaintext* θ; only the served outputs are defended).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.models.base import BaseClassifier


class ModelWrapper(BaseClassifier):
    """Base class for defenses that wrap a fitted model's outputs."""

    def __init__(self, model: BaseClassifier) -> None:
        super().__init__()
        model._check_fitted()
        self.model = model
        self.n_features_ = model.n_features_
        self.n_classes_ = model.n_classes_

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ModelWrapper":
        raise ValidationError(
            f"{type(self).__name__} wraps an already-fitted model"
        )


def unwrap_model(model: BaseClassifier) -> BaseClassifier:
    """Peel every defense wrapper off ``model``.

    Returns the innermost fitted model — the plaintext parameters the
    active party legitimately receives even when the served outputs pass
    through a defense stack.
    """
    while isinstance(model, ModelWrapper):
        model = model.model
    return model
