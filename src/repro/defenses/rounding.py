"""Confidence-score rounding defense (§VII, Fig. 11a-d).

The active party receives confidence scores rounded *down* to ``b``
floating-point digits. Rounding to one digit destroys ESA (its equations
involve ``ln v``, so coarse v perturbs the right-hand side wildly) but
barely affects GRNA, which learns coarse correlations (the paper's
conclusion from Fig. 11).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.models.base import BaseClassifier
from repro.utils.validation import check_positive_int


def round_confidence_scores(v: np.ndarray, digits: int) -> np.ndarray:
    """Round confidence scores *down* to ``digits`` decimal digits.

    Matches the paper's "round v down to b floating point digits"; the
    resulting rows may sum to slightly less than 1, exactly as a deployed
    truncation would behave.
    """
    digits = check_positive_int(digits, name="digits")
    v = np.asarray(v, dtype=np.float64)
    scale = 10.0 ** digits
    return np.floor(v * scale) / scale


class RoundedModel(BaseClassifier):
    """Wrap a fitted model so its confidence outputs are truncated.

    The wrapper is itself a :class:`BaseClassifier`, so it slots directly
    into :class:`repro.federated.VerticalFLModel` — the parties deploy the
    defense, the adversary attacks the truncated outputs.
    """

    def __init__(self, model: BaseClassifier, digits: int) -> None:
        super().__init__()
        model._check_fitted()
        self.model = model
        self.digits = check_positive_int(digits, name="digits")
        self.n_features_ = model.n_features_
        self.n_classes_ = model.n_classes_

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RoundedModel":
        raise ValidationError("RoundedModel wraps an already-fitted model")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return round_confidence_scores(self.model.predict_proba(X), self.digits)

    def predict(self, X: np.ndarray) -> np.ndarray:
        # Truncation is monotone per entry but can create argmax ties;
        # resolve them the way the untruncated model would.
        return self.model.predict(X)
