"""Confidence-score rounding defense (§VII, Fig. 11a-d).

The active party receives confidence scores rounded *down* to ``b``
floating-point digits. Rounding to one digit destroys ESA (its equations
involve ``ln v``, so coarse v perturbs the right-hand side wildly) but
barely affects GRNA, which learns coarse correlations (the paper's
conclusion from Fig. 11).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.defenses.base import ModelWrapper
from repro.models.base import BaseClassifier
from repro.utils.validation import check_positive_int


def round_confidence_scores(v: np.ndarray, digits: int) -> np.ndarray:
    """Round confidence scores *down* to ``digits`` decimal digits.

    Matches the paper's "round v down to b floating point digits"; the
    resulting rows may sum to slightly less than 1, exactly as a deployed
    truncation would behave.
    """
    digits = check_positive_int(digits, name="digits")
    v = np.asarray(v, dtype=np.float64)
    scale = 10.0 ** digits
    return np.floor(v * scale) / scale


class RoundedModel(ModelWrapper):
    """Wrap a fitted model so its confidence outputs are truncated.

    .. deprecated::
        Construct the defense through :mod:`repro.api` instead —
        ``DefenseStack(["rounding"])`` or
        ``ScenarioConfig(defenses=[("rounding", {"digits": b})])`` —
        which also lets rounding chain with other output defenses.
        Direct construction keeps working unchanged but emits a
        :class:`DeprecationWarning`.
    """

    def __init__(self, model: BaseClassifier, digits: int) -> None:
        warnings.warn(
            "Constructing RoundedModel directly is deprecated; use the "
            "'rounding' entry of repro.api's defense registry "
            "(DefenseStack or ScenarioConfig(defenses=...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._configure(model, digits)

    @classmethod
    def _wrap(cls, model: BaseClassifier, digits: int) -> "RoundedModel":
        """Internal constructor for the api layer (no deprecation warning)."""
        wrapper = cls.__new__(cls)
        wrapper._configure(model, digits)
        return wrapper

    def _configure(self, model: BaseClassifier, digits: int) -> None:
        ModelWrapper.__init__(self, model)
        self.digits = check_positive_int(digits, name="digits")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return round_confidence_scores(self.model.predict_proba(X), self.digits)

    def predict(self, X: np.ndarray) -> np.ndarray:
        # Truncation is monotone per entry but can create argmax ties;
        # resolve them the way the untruncated model would.
        return self.model.predict(X)
