"""repro — Feature Inference Attacks on Vertical Federated Learning Predictions.

A from-scratch reproduction of Luo, Wu, Xiao, Ooi, *"Feature Inference
Attack on Model Predictions in Vertical Federated Learning"* (ICDE 2021),
including every substrate the paper depends on: a reverse-mode autodiff
engine, a neural-network framework, LR/MLP/decision-tree/random-forest
models, a vertical-FL simulation layer, the three attacks (ESA, PRA,
GRNA), the §VII countermeasures, and an experiment harness regenerating
each table and figure of the evaluation.

Quickstart
----------
>>> from repro.datasets import load_dataset
>>> from repro.federated import FeaturePartition
>>> from repro.models import LogisticRegression
>>> from repro.attacks import EqualitySolvingAttack
>>> ds = load_dataset("drive", n_samples=2000)
>>> partition = FeaturePartition.adversary_target(ds.n_features, 0.2, rng=0)
>>> view = partition.adversary_view()
>>> model = LogisticRegression(epochs=20, rng=0).fit(ds.X, ds.y)
>>> x_adv, _ = view.split(ds.X)
>>> attack = EqualitySolvingAttack(model, view)
>>> result = attack.run(x_adv, model.predict_proba(ds.X))
>>> result.x_target_hat.shape == (2000, view.d_target)
True
"""

from repro import (
    analysis,
    api,
    attacks,
    datasets,
    defenses,
    experiments,
    federated,
    federation,
    metrics,
    models,
    nn,
    serving,
    tensor,
)
from repro.exceptions import ReproError

__version__ = "1.9.0"

__all__ = [
    "analysis",
    "api",
    "attacks",
    "datasets",
    "defenses",
    "experiments",
    "federated",
    "federation",
    "metrics",
    "models",
    "nn",
    "serving",
    "tensor",
    "ReproError",
    "__version__",
]
