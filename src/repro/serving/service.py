"""The metered, batched query boundary between attacks and deployed models.

Everything an adversary learns in this paper flows through **prediction
queries** against a deployed VFL model (§II-B), and every §VII defense is
an intervention on that interface — yet attacking code historically
called :meth:`repro.federated.VerticalFLModel.predict` directly, so
queries were unmetered, unbatched, and invisible to defenses.
:class:`PredictionService` is the explicit serving layer that closes that
gap. It owns four concerns:

batched execution
    ``query(sample_indices)`` splits a request into chunks of
    ``max_batch`` and serves each chunk through one vectorized protocol
    round — every round padded to the same canonical ``max_batch`` shape
    so BLAS cannot switch matmul kernels between rounds. For a given
    ``max_batch``, batched and per-sample execution are therefore
    bit-identical across all four model kinds (regression-tested); the
    unbatched default serves one round, byte-compatible with the
    historical direct protocol call.
metering
    Every *computed* response is charged to a
    :class:`~repro.serving.ledger.QueryLedger` under the caller's
    ``consumer`` name. Exhausting a budget raises
    :class:`~repro.exceptions.QueryBudgetExceededError` (or truncates the
    response, in ``exhaustion="truncate"`` mode) — per batch, so a long
    accumulation fails mid-stream exactly where the budget binds.
response cache
    With ``cache=True`` responses are memoized by *sample hash* (a
    content fingerprint of the assembled joint row, computed inside the
    protocol). A repeated query — across requests or within one chunk —
    replays the stored response — including whatever noise a defense
    drew the first time — and is recorded as a cache hit, never
    charged. Replays are still announced to the ``on_query`` hooks (as
    :attr:`QueryContext.replayed_indices`), so auditing defenses see
    duplicate traffic even though the stored bytes are not re-perturbed.
    ``cache_size`` bounds the store as a true LRU (the unbounded default
    reproduces the historical behavior bit-for-bit) with every eviction
    recorded on the ledger, and ``cache_scope="consumer"`` namespaces
    the store per tenant: a consumer only ever replays *its own* traffic,
    so no tenant can observe another tenant's queries through charging
    or timing differences — the isolation property that also makes
    sharded multi-tenant replay (:mod:`repro.workload`) bit-identical
    to serial replay regardless of the shard count.
online defense hook
    After a chunk is computed, the scenario's
    :class:`~repro.api.defenses.DefenseStack` gets an ``on_query`` pass
    over the fresh responses with a :class:`QueryContext` describing who
    asked for what. Per-query noise, rate limiting, and duplicate-query
    auditing all live behind this hook and compose with the existing
    screen/wrap/release_mask hooks.

The service is also the release point for the plaintext parameters θ the
paper grants the active party (§III-B): :meth:`release_model` peels the
output-defense wrappers, because §VII defenses perturb *served scores*,
never the released weights.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.checkpoint import (
    CheckpointPlan,
    capture_state,
    content_fingerprint,
    raw_fragment,
    restore_state,
)
from repro.defenses.base import unwrap_model
from repro.exceptions import (
    CheckpointError,
    CommBudgetExceededError,
    PartyUnavailableError,
    ProtocolError,
    ServiceUnavailableError,
    ValidationError,
)
from repro.federated.model import VerticalFLModel
from repro.models.base import BaseClassifier
from repro.resilience import BreakerPolicy, CircuitBreaker
from repro.serving.cache import ResponseCache
from repro.serving.ledger import QueryLedger
from repro.utils.validation import check_positive_int

__all__ = ["PredictionService", "QueryContext"]

#: Exhaustion policies: fail the whole request, or serve what fits.
EXHAUSTION_MODES = ("raise", "truncate")

#: Cache scopes: one shared store, or one store per consumer (tenant
#: isolation — a consumer only replays its own traffic).
CACHE_SCOPES = ("shared", "consumer")


@dataclass(frozen=True)
class QueryContext:
    """What an ``on_query`` defense hook learns about one served chunk.

    Attributes
    ----------
    consumer:
        The ledger name of whoever issued the query (for a scenario run,
        the attack's registry key).
    sample_indices:
        The sample ids of the freshly computed responses in this chunk —
        the rows of the ``V`` matrix the hook may perturb.
    service:
        The serving instance — hooks read the ledger, the protocol's
        sample hashes, and the defense rng through it.
    replayed_indices:
        Sample ids served from the response cache in this chunk. Their
        stored responses are *not* re-presented for perturbation (a
        replay is byte-stable by contract), but auditing defenses see
        them here — a duplicate query is exactly what they exist to
        catch.
    sample_hashes:
        Content fingerprints for ``sample_indices`` followed by
        ``replayed_indices``, when the service already computed them for
        its cache; ``None`` otherwise (hooks needing hashes then call
        ``service.vfl.sample_hashes`` themselves).
    """

    consumer: str
    sample_indices: np.ndarray
    service: "PredictionService"
    replayed_indices: np.ndarray = dataclasses.field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    sample_hashes: "tuple[str, ...] | None" = None


class PredictionService:
    """Metered, batched, cacheable façade over one deployed VFL model.

    Parameters
    ----------
    vfl:
        The deployment: prediction protocol plus (possibly
        output-wrapped) served model.
    defense_stack:
        Online hook point — each computed chunk passes through the
        stack's ``on_query`` before release. ``None`` serves raw.
    ledger:
        An existing ledger to share between services (e.g. one budget
        across several deployments); mutually exclusive with
        ``query_budget``.
    query_budget:
        Convenience for ``ledger=QueryLedger(budget=...)``.
    max_batch:
        Largest number of samples computed per protocol round; ``None``
        serves each request in one vectorized round.
    cache:
        Memoize responses by sample hash and replay repeats for free.
    cache_size:
        LRU bound on the response cache (requires ``cache=True``);
        ``None`` stores every response forever — the historical
        behavior. Evictions are recorded on the ledger
        (:meth:`~repro.serving.ledger.QueryLedger.record_evictions`),
        so hit counts stay exactly reconcilable.
    cache_scope:
        ``"shared"`` (default) memoizes across consumers;
        ``"consumer"`` gives each tenant its own (LRU-bounded) store,
        isolating tenants from each other's traffic. With a bound, the
        bound applies per store.
    rng:
        Defense stream for online perturbations (``query_noise`` draws
        from it when it has no stream of its own).
    exhaustion:
        ``"raise"`` fails a request that would cross the budget;
        ``"truncate"`` serves the prefix that fits and stops.
    breaker:
        Per-consumer circuit breaking: a
        :class:`~repro.resilience.BreakerPolicy`, an int failure
        threshold, a policy payload dict, or ``None`` (default, no
        breaking — identical to prior behaviour). With a policy, a
        consumer whose queries keep failing against the federation
        runtime gets :class:`~repro.exceptions.ServiceUnavailableError`
        refusals instead of spending protocol rounds, with half-open
        probes after the cooldown (see
        :class:`~repro.resilience.CircuitBreaker`).
    tracer:
        A :class:`~repro.telemetry.Tracer` to report into: one
        ``serving.query`` span per request, one ``serving.chunk`` span
        per protocol round, ``breaker.transition`` events whenever a
        consumer's breaker changes state, ``checkpoint.snapshot``
        events on checkpointed accumulation, and cache-hit/refusal
        counters. ``None`` (default) traces nothing and adds no work
        on the hot path.
    """

    def __init__(
        self,
        vfl: VerticalFLModel,
        *,
        defense_stack=None,
        ledger: "QueryLedger | None" = None,
        query_budget: "int | None" = None,
        max_batch: "int | None" = None,
        cache: bool = False,
        cache_size: "int | None" = None,
        cache_scope: str = "shared",
        rng: "np.random.Generator | None" = None,
        exhaustion: str = "raise",
        breaker: "BreakerPolicy | int | dict | None" = None,
        runtime=None,
        tracer=None,
    ) -> None:
        if ledger is not None and query_budget is not None:
            raise ValidationError(
                "pass either an existing ledger or a query_budget, not both"
            )
        if runtime is not None and runtime.vfl is not vfl:
            raise ValidationError(
                "the federation runtime serves a different deployment than "
                "the one handed to this service"
            )
        if exhaustion not in EXHAUSTION_MODES:
            raise ValidationError(
                f"exhaustion must be one of {EXHAUSTION_MODES}, got {exhaustion!r}"
            )
        if cache_scope not in CACHE_SCOPES:
            raise ValidationError(
                f"cache_scope must be one of {CACHE_SCOPES}, got {cache_scope!r}"
            )
        if cache_size is not None and not cache:
            raise ValidationError(
                "cache_size bounds the response cache and is meaningless "
                "without cache=True; enable the cache or drop the bound"
            )
        self.vfl = vfl
        self.runtime = runtime
        self.defense_stack = defense_stack
        self.ledger = ledger if ledger is not None else QueryLedger(budget=query_budget)
        self.max_batch = (
            None if max_batch is None else check_positive_int(max_batch, name="max_batch")
        )
        self.cache_size = (
            None if cache_size is None else check_positive_int(cache_size, name="cache_size")
        )
        self.cache_scope = cache_scope
        self._caches: "dict[str, ResponseCache] | None" = {} if cache else None
        self.rng = rng
        self.exhaustion = exhaustion
        self.breaker_policy = BreakerPolicy.from_spec(breaker)
        self._breakers: dict[str, CircuitBreaker] = {}
        self.tracer = tracer
        # Fingerprint chunks once, here, when any stacked defense consumes
        # hashes (e.g. query_audit) — not once per defense per chunk.
        self._wants_hashes = defense_stack is not None and any(
            getattr(defense, "wants_sample_hashes", False)
            for defense in defense_stack
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Samples in the deployment's aligned prediction dataset."""
        return self.vfl.n_samples

    @property
    def n_classes(self) -> int:
        """Width of every response row."""
        return self.vfl.n_classes

    @property
    def cache_enabled(self) -> bool:
        """Whether responses are memoized by sample hash."""
        return self._caches is not None

    @property
    def cache_entries(self) -> int:
        """Distinct sample hashes currently memoized, across every scope."""
        if self._caches is None:
            return 0
        return sum(len(cache) for cache in self._caches.values())

    @property
    def cache_evictions(self) -> int:
        """Responses dropped by the LRU bound so far, across every scope."""
        if self._caches is None:
            return 0
        return sum(cache.evictions for cache in self._caches.values())

    def _cache_for(self, consumer: str) -> ResponseCache:
        """The (scope-resolved) response store serving ``consumer``."""
        key = consumer if self.cache_scope == "consumer" else ""
        cache = self._caches.get(key)
        if cache is None:
            cache = self._caches[key] = ResponseCache(self.cache_size)
        return cache

    def release_model(self) -> BaseClassifier:
        """The plaintext released model θ (§III-B), defenses peeled off."""
        return unwrap_model(self.vfl.model)

    # ------------------------------------------------------------------
    # The query interface
    # ------------------------------------------------------------------
    def query(
        self,
        sample_indices: np.ndarray,
        *,
        consumer: str = "anonymous",
        checkpoint: "CheckpointPlan | None" = None,
    ) -> np.ndarray:
        """Confidence scores for the requested samples, ``(N, C)``.

        The only path from an attack to the deployed model: batched by
        ``max_batch``, charged to ``consumer`` on the ledger, served from
        the cache where possible, and passed through the defense stack's
        ``on_query`` hooks. In ``truncate`` mode the returned matrix may
        be a prefix of the request — compare ``len(result)`` with the
        request length to detect where the budget bound. A federation
        communication budget binds the same way: the round that cannot
        afford its wire traffic raises
        :class:`~repro.exceptions.CommBudgetExceededError` (its query
        charge refunded — the consumer received nothing), or in
        ``truncate`` mode ends the accumulation at the last affordable
        round.

        With a ``checkpoint`` plan, each served chunk (== one protocol
        round) ends with a snapshot of the accumulated rows, the query
        ledger, the response caches, the federation comm ledger (when a
        runtime is attached) and the defense rng stream — and the call
        first resumes from the plan's latest matching snapshot, skipping
        chunks already served. The resumed response is bit-identical to
        an uninterrupted one. Checkpointing refuses a non-empty defense
        stack: per-defense tallies are not snapshotted, and silently
        dropping them would break the contract.

        With a ``breaker`` policy, the request is first gated by the
        consumer's circuit breaker: an open breaker refuses with
        :class:`~repro.exceptions.ServiceUnavailableError` before any
        protocol round runs, and a runtime failure
        (:class:`~repro.exceptions.PartyUnavailableError` and
        subclasses) is recorded on the breaker and re-raised as the same
        serving-level refusal — callers see one exception type for
        "this consumer is not being served right now".
        """
        indices = np.asarray(sample_indices, dtype=np.int64).ravel()
        if indices.size == 0:
            raise ProtocolError("prediction request with no sample ids")
        if self.tracer is None:
            return self._query_gated(indices, consumer, checkpoint)
        with self.tracer.span(
            "serving.query", consumer=consumer, rows=int(indices.size)
        ) as span:
            result = self._query_gated(indices, consumer, checkpoint)
            span["served"] = int(result.shape[0])
            return result

    def _query_gated(
        self,
        indices: np.ndarray,
        consumer: str,
        checkpoint: "CheckpointPlan | None",
    ) -> np.ndarray:
        """The breaker gate in front of the query body."""
        if self.breaker_policy is None:
            return self._query_dispatch(indices, consumer, checkpoint)
        breaker = self._breaker_for(consumer)
        before = breaker.state
        allowed = breaker.allow()
        self._trace_breaker(consumer, breaker, before)
        if not allowed:
            if self.tracer is not None:
                self.tracer.count("serving.refusals")
            raise ServiceUnavailableError(
                f"circuit breaker for consumer {consumer!r} is open after "
                f"{breaker.failures} consecutive runtime failure(s); "
                f"{breaker.cooldown_left} more refusal(s) before a half-open "
                "probe is allowed"
            )
        try:
            result = self._query_dispatch(indices, consumer, checkpoint)
        except PartyUnavailableError as exc:
            before = breaker.state
            breaker.record_failure()
            self._trace_breaker(consumer, breaker, before)
            raise ServiceUnavailableError(
                f"query for consumer {consumer!r} failed against the "
                f"federation runtime ({exc}); the circuit breaker is now "
                f"{breaker.state!r}"
            ) from exc
        before = breaker.state
        breaker.record_success()
        self._trace_breaker(consumer, breaker, before)
        return result

    def _trace_breaker(
        self, consumer: str, breaker: CircuitBreaker, before: str
    ) -> None:
        """Emit a ``breaker.transition`` event when the state moved.

        The breaker lives one DAG rank below telemetry, so the serving
        layer observes transitions from outside rather than having the
        breaker report upward.
        """
        if self.tracer is not None and breaker.state != before:
            self.tracer.event(
                "breaker.transition",
                consumer=consumer,
                from_state=before,
                to_state=breaker.state,
                failures=breaker.failures,
            )

    def _breaker_for(self, consumer: str) -> CircuitBreaker:
        """The (lazily created) breaker gating ``consumer``'s queries."""
        breaker = self._breakers.get(consumer)
        if breaker is None:
            breaker = self._breakers[consumer] = CircuitBreaker(self.breaker_policy)
        return breaker

    def _query_dispatch(
        self,
        indices: np.ndarray,
        consumer: str,
        checkpoint: "CheckpointPlan | None",
    ) -> np.ndarray:
        """The pre-breaker query body: batching, metering, caching."""
        if checkpoint is not None:
            return self._query_checkpointed(indices, consumer, checkpoint)
        blocks: list[np.ndarray] = []
        step = self.max_batch or indices.size
        for start in range(0, indices.size, step):
            try:
                block, exhausted = self._serve_chunk(
                    indices[start : start + step], consumer
                )
            except CommBudgetExceededError:
                if self.exhaustion == "truncate":
                    # The refused round's query charge was refunded by
                    # _serve_chunk; bytes already moved stay on the comm
                    # ledger — partial traffic is genuinely spent.
                    break
                raise
            if block.size:
                blocks.append(block)
            if exhausted:
                break
        if not blocks:
            return np.empty((0, self.n_classes))
        return np.vstack(blocks)

    # ------------------------------------------------------------------
    # Checkpointed accumulation
    # ------------------------------------------------------------------
    def _query_fingerprint(self, indices: np.ndarray, consumer: str) -> str:
        """Bind snapshots to this exact request against this deployment."""
        serving = {
            "n_samples": self.n_samples,
            "n_classes": self.n_classes,
            "max_batch": self.max_batch,
            "cache": self.cache_enabled,
            "cache_size": self.cache_size,
            "cache_scope": self.cache_scope,
            "exhaustion": self.exhaustion,
            "budget": self.ledger.budget,
            "consumer_budgets": dict(self.ledger.consumer_budgets),
        }
        # Only when enabled, so breaker-free fingerprints stay byte-
        # identical to snapshots written before the resilience layer.
        if self.breaker_policy is not None:
            serving["breaker"] = self.breaker_policy.to_payload()
        # Same rule for telemetry: traced and untraced runs may not
        # share snapshots (the trace would silently lose records).
        if self.tracer is not None:
            serving["telemetry"] = True
        return content_fingerprint(
            {
                "serving": serving,
                "consumer": consumer,
                "indices": indices,
            }
        )

    def serving_fragments(self) -> dict:
        """Checkpoint fragments for this service's mutable serving state.

        Query ledger, every response-cache store, the federation comm
        ledger (when a runtime is attached), and the defense rng stream
        (when one exists). The workload layer snapshots whole shard
        fleets through this same method, so serving state has exactly
        one checkpoint shape.
        """
        fragments = {"ledger": capture_state(self.ledger)}
        if self._caches is not None:
            for key, cache in self._caches.items():
                fragments[f"cache:{key}"] = capture_state(cache)
        if self.runtime is not None:
            fragments["comm"] = capture_state(self.runtime.ledger)
            if self.runtime.resilience is not None:
                fragments["resilience"] = capture_state(self.runtime.resilience)
        if self.rng is not None:
            fragments["rng"] = capture_state(self.rng)
        if self.breaker_policy is not None:
            for name, breaker in self._breakers.items():
                fragments[f"breaker:{name}"] = capture_state(breaker)
        if self.tracer is not None:
            fragments["telemetry"] = capture_state(self.tracer)
        return fragments

    def restore_serving_fragments(self, fragments: dict) -> None:
        """Reinstate :meth:`serving_fragments` output onto this service.

        Unknown fragment names are ignored (callers may bundle their own
        alongside); state present in the snapshot but impossible on this
        service — cache rows with caching disabled, comm bytes with no
        runtime — raises :class:`~repro.exceptions.CheckpointError`
        rather than silently dropping bookkeeping.
        """
        restore_state(self.ledger, fragments["ledger"])
        for name, fragment in fragments.items():
            if name.startswith("cache:"):
                if self._caches is None:
                    raise CheckpointError(
                        "snapshot holds response-cache state but this service "
                        "has caching disabled"
                    )
                cache = ResponseCache(self.cache_size)
                restore_state(cache, fragment)
                self._caches[name[len("cache:"):]] = cache
        if "comm" in fragments:
            if self.runtime is None:
                raise CheckpointError(
                    "snapshot holds federation comm state but this service "
                    "has no runtime attached"
                )
            restore_state(self.runtime.ledger, fragments["comm"])
        if "resilience" in fragments:
            if self.runtime is None or self.runtime.resilience is None:
                raise CheckpointError(
                    "snapshot holds resilience state (clock/availability/"
                    "reply cache) but this service's runtime has no "
                    "resilient exchange engaged"
                )
            restore_state(self.runtime.resilience, fragments["resilience"])
        for name, fragment in fragments.items():
            if name.startswith("breaker:"):
                if self.breaker_policy is None:
                    raise CheckpointError(
                        "snapshot holds circuit-breaker state but this "
                        "service has no breaker policy"
                    )
                breaker = CircuitBreaker(self.breaker_policy)
                restore_state(breaker, fragment)
                self._breakers[name[len("breaker:"):]] = breaker
        if "rng" in fragments:
            if self.rng is None:
                raise CheckpointError(
                    "snapshot holds a defense rng stream but this service "
                    "has none"
                )
            restore_state(self.rng, fragments["rng"])
        if "telemetry" in fragments:
            if self.tracer is None:
                raise CheckpointError(
                    "snapshot holds tracer state but this service has no "
                    "tracer attached; rerun with the same telemetry knob "
                    "the snapshot was written under"
                )
            restore_state(self.tracer, fragments["telemetry"])

    def _query_fragments(self, blocks: "list[np.ndarray]") -> dict:
        """Snapshot fragments for one chunk boundary of an accumulation."""
        rows = (
            np.vstack(blocks) if blocks else np.empty((0, self.n_classes))
        )
        return {
            **self.serving_fragments(),
            "rows": raw_fragment(arrays={"rows": rows}),
        }

    def _restore_query_snapshot(self, snapshot) -> "tuple[list[np.ndarray], int, bool]":
        """Reinstate a mid-accumulation snapshot onto this service."""
        self.restore_serving_fragments(snapshot.fragments)
        rows = snapshot.fragment("rows")["arrays"]["rows"]
        blocks = [rows] if rows.size else []
        return blocks, int(snapshot.meta["next_start"]), bool(snapshot.meta["done"])

    def _query_checkpointed(
        self, indices: np.ndarray, consumer: str, checkpoint: CheckpointPlan
    ) -> np.ndarray:
        if self.defense_stack is not None and len(self.defense_stack):
            raise CheckpointError(
                "checkpointed accumulation refuses a non-empty defense "
                "stack: per-defense tallies are not snapshotted, so a "
                "resumed run could diverge silently"
            )
        checkpoint.bind_fingerprint(self._query_fingerprint(indices, consumer))
        snapshot = checkpoint.latest()
        blocks: list[np.ndarray] = []
        start_pos, done = 0, False
        if snapshot is not None:
            blocks, start_pos, done = self._restore_query_snapshot(snapshot)
        step = self.max_batch or indices.size
        for chunk_index, start in enumerate(range(0, indices.size, step)):
            if done or start < start_pos:
                continue
            exhausted = False
            try:
                block, exhausted = self._serve_chunk(
                    indices[start : start + step], consumer
                )
            except CommBudgetExceededError:
                if self.exhaustion != "truncate":
                    raise
                block = np.empty((0, self.n_classes))
                exhausted = True
            if block.size:
                blocks.append(block)
            done = exhausted

            def fragments(chunk_index: int = chunk_index) -> dict:
                # The snapshot event precedes the tracer capture inside
                # _query_fragments, so the captured seq counts it and a
                # resumed trace lines up record for record.
                if self.tracer is not None:
                    self.tracer.event(
                        "checkpoint.snapshot", scope="serving", chunk=chunk_index
                    )
                return self._query_fragments(blocks)

            checkpoint.maybe_emit(
                chunk_index,
                fragments,
                meta={"next_start": start + step, "done": done},
            )
        if not blocks:
            return np.empty((0, self.n_classes))
        return np.vstack(blocks)

    def query_all(self, *, consumer: str = "anonymous") -> np.ndarray:
        """Query every sample of the prediction dataset."""
        return self.query(np.arange(self.n_samples), consumer=consumer)

    def _serve_chunk(
        self, chunk: np.ndarray, consumer: str
    ) -> tuple[np.ndarray, bool]:
        """Serve one ``max_batch``-sized chunk; True means budget exhausted."""
        if self.tracer is None:
            return self._serve_chunk_inner(chunk, consumer)
        with self.tracer.span(
            "serving.chunk", consumer=consumer, rows=int(chunk.size)
        ) as span:
            block, exhausted = self._serve_chunk_inner(chunk, consumer)
            span["served"] = int(block.shape[0])
            span["exhausted"] = bool(exhausted)
            return block, exhausted

    def _serve_chunk_inner(
        self, chunk: np.ndarray, consumer: str
    ) -> tuple[np.ndarray, bool]:
        hashes = (
            self.vfl.sample_hashes(chunk)
            if self._caches is not None or self._wants_hashes
            else None
        )
        cache = None if self._caches is None else self._cache_for(consumer)
        if cache is not None:
            # A repeated sample id (or repeated content) within one chunk
            # is a single chargeable computation; later occurrences replay.
            miss_pos: list[int] = []
            pending: set[str] = set()
            for i, digest in enumerate(hashes):
                if digest in cache or digest in pending:
                    continue
                miss_pos.append(i)
                pending.add(digest)
        else:
            miss_pos = list(range(chunk.size))

        granted = 0
        if miss_pos:
            if self.exhaustion == "raise":
                granted = self.ledger.charge(len(miss_pos), consumer)
            else:
                granted = self.ledger.grant(len(miss_pos), consumer)

        # Positions past the first unserved miss are withheld (truncation).
        cutoff = chunk.size if granted == len(miss_pos) else miss_pos[granted]
        served_miss = miss_pos[:granted]
        hit_pos = (
            []
            if cache is None
            else sorted(set(range(cutoff)) - set(served_miss))
        )

        computed = np.empty((0, self.n_classes))
        if granted or hit_pos:
            released = False
            try:
                if granted:
                    computed = self._protocol_predict(chunk[served_miss])
                computed = self._apply_on_query(
                    computed, chunk, served_miss, hit_pos, hashes, consumer
                )
                released = True
            finally:
                # A refused batch released nothing; un-charge it so the
                # ledger keeps meaning "responses the consumer received".
                # try/finally instead of a broad except: the defense's
                # refusal (or any genuine bug) propagates untouched.
                if not released:
                    self.ledger.refund(granted, consumer)

        if cache is None:
            # No cache: the computed block is the response (hot path).
            return computed, granted < chunk.size

        # Stage every row this chunk releases before any insert: with an
        # LRU bound, writing the computed rows could evict an entry a
        # later position of this very chunk still replays.
        staged: dict[str, np.ndarray] = {}
        for position in hit_pos:
            digest = hashes[position]
            if digest not in staged and digest in cache:
                staged[digest] = cache.get(digest)
        rows = np.empty((cutoff, self.n_classes))
        evicted = 0
        next_miss = 0
        for position in range(cutoff):
            digest = hashes[position]
            if next_miss < granted and position == served_miss[next_miss]:
                row = computed[next_miss].copy()
                staged[digest] = row
                evicted += cache.put(digest, row)
                next_miss += 1
            # A non-miss position replays a stored row — or, for an
            # intra-chunk duplicate, the row its first occurrence staged.
            rows[position] = staged[digest]
        if evicted:
            self.ledger.record_evictions(evicted, consumer)
        if hit_pos:
            self.ledger.record_cache_hits(len(hit_pos), consumer)
            if self.tracer is not None:
                self.tracer.count("serving.cache_hits", len(hit_pos))
        return rows, cutoff < chunk.size

    def _protocol_predict(self, indices: np.ndarray) -> np.ndarray:
        """Execute one protocol round at the service's canonical shape.

        BLAS picks its matmul kernel by matrix shape, and different
        kernels may reassociate sums differently — a one-ulp drift that
        would break the bitwise batched-vs-serial contract for LR/NN
        deployments. With ``max_batch`` set, every round is therefore
        padded (by repeating the last sample id) to exactly ``max_batch``
        rows and the pad rows dropped: all rounds share one kernel
        shape, and a matmul's row results are independent of the other
        rows, so any request partition yields identical bytes. With
        ``max_batch=None`` the request is served as a single round,
        byte-compatible with the historical direct protocol call. (Pad
        rows cost duplicate entries in the protocol's prediction log;
        the ledger, which meters the adversary, never sees them.)

        With a :class:`~repro.federation.FederationRuntime` attached,
        the round executes as metered message-passing — byte-identical
        output, every cross-party block charged to the runtime's
        :class:`~repro.federation.CommLedger` — so one service chunk is
        exactly one protocol round in the communication accounting.
        """
        predict = self.vfl.predict if self.runtime is None else self.runtime.predict
        if self.max_batch is None or indices.size == self.max_batch:
            return predict(indices)
        pad = np.full(self.max_batch - indices.size, indices[-1], dtype=np.int64)
        return predict(np.concatenate([indices, pad]))[: indices.size]

    def _apply_on_query(
        self,
        responses: np.ndarray,
        chunk: np.ndarray,
        served_miss: list[int],
        hit_pos: list[int],
        hashes: "list[str] | None",
        consumer: str,
    ) -> np.ndarray:
        stack = self.defense_stack
        if stack is None or not len(stack):
            return responses
        context = QueryContext(
            consumer=consumer,
            sample_indices=chunk[served_miss] if served_miss else chunk[:0],
            service=self,
            replayed_indices=chunk[hit_pos] if hit_pos else chunk[:0],
            sample_hashes=(
                None
                if hashes is None
                else tuple(hashes[i] for i in [*served_miss, *hit_pos])
            ),
        )
        return stack.on_query(responses, context)

    def __repr__(self) -> str:
        spans = 0 if self.tracer is None else self.tracer.records_emitted
        breakers = (
            "off"
            if self.breaker_policy is None
            else {name: b.state for name, b in sorted(self._breakers.items())}
        )
        return (
            f"PredictionService(n_samples={self.n_samples}, "
            f"max_batch={self.max_batch}, cache={self.cache_enabled}, "
            f"queries_used={self.ledger.queries_used}, "
            f"spans={spans}, breakers={breakers})"
        )
