"""Serving layer: the metered query boundary between attacks and models.

The deployment side of the paper's threat model. A
:class:`PredictionService` is the **only** way attacking code reaches a
deployed :class:`~repro.federated.VerticalFLModel`: it batches prediction
rounds, charges every computed response to a :class:`QueryLedger` (budget
exhaustion raises
:class:`~repro.exceptions.QueryBudgetExceededError`), optionally memoizes
responses by sample hash, and gives online defenses an ``on_query`` hook
over everything it releases::

    from repro.serving import PredictionService

    service = PredictionService(vfl, query_budget=500, max_batch=64)
    v = service.query(sample_ids, consumer="grna")
    theta = service.release_model()          # plaintext θ, §III-B

The scenario facade (:func:`repro.api.run_scenario`) builds one service
per deployment and accumulates the prediction pool through it under the
attack's consumer name, so every
:class:`~repro.api.ScenarioReport` can state exactly how many queries the
attack cost.
"""

from repro.exceptions import QueryBudgetExceededError
from repro.serving.cache import ResponseCache
from repro.serving.ledger import QueryLedger
from repro.serving.service import PredictionService, QueryContext

# Register this layer's checkpoint codecs (ledger, cache) on import.
from repro.serving import state as _state  # noqa: F401

__all__ = [
    "PredictionService",
    "QueryContext",
    "QueryLedger",
    "ResponseCache",
    "QueryBudgetExceededError",
]
