"""Response cache with an optional LRU bound and exact eviction accounting.

The PR-3 response cache memoized by sample hash into a bare dict — fine
for a single attack consumer accumulating a few hundred predictions,
fatal for a deployment replaying millions of multi-tenant requests: the
dict grows without bound, and a "cache hit count" stops being auditable
the moment anyone manually prunes it. :class:`ResponseCache` closes both
holes:

- ``max_entries=None`` (the default) is byte-for-byte the old unbounded
  dict — insertion order is preserved and nothing is ever dropped, so
  every pre-existing cache-hit count reproduces exactly;
- a finite ``max_entries`` turns the store into a true LRU: every hit
  refreshes recency, every insert past the bound evicts the least
  recently used entry, and :attr:`evictions` counts exactly how many
  responses were dropped — the number the
  :class:`~repro.serving.ledger.QueryLedger` records so a lower hit
  count is always explainable as "evicted, recomputed, recharged"
  rather than silent bookkeeping drift.

The cache is deliberately not thread-safe: the serving layer's
concurrency model is share-nothing shards (see
:mod:`repro.workload.sharded`), each owning its caches outright, which
is also what makes sharded replay bit-identical to serial replay.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["ResponseCache"]


class ResponseCache:
    """Sample-hash → response-row store, optionally LRU-bounded.

    Parameters
    ----------
    max_entries:
        ``None`` stores every response forever (the historical unbounded
        behavior); a positive int bounds the store, evicting the least
        recently used entry on overflow and counting the eviction.
    """

    def __init__(self, max_entries: "int | None" = None) -> None:
        self.max_entries = (
            None
            if max_entries is None
            else check_positive_int(max_entries, name="max_entries")
        )
        self._rows: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, digest: str) -> bool:
        return digest in self._rows

    def get(self, digest: str) -> np.ndarray:
        """The stored row for ``digest``; a hit refreshes its recency."""
        row = self._rows[digest]
        if self.max_entries is not None:
            self._rows.move_to_end(digest)
        return row

    def put(self, digest: str, row: np.ndarray) -> int:
        """Store ``row``; returns how many entries were evicted (0 or 1).

        Re-inserting an existing digest refreshes recency but never
        evicts — the store's size did not grow.
        """
        existed = digest in self._rows
        self._rows[digest] = row
        if self.max_entries is None:
            return 0
        if existed:
            self._rows.move_to_end(digest)
            return 0
        evicted = 0
        while len(self._rows) > self.max_entries:
            self._rows.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ResponseCache(entries={len(self)}, max_entries={self.max_entries}, "
            f"evictions={self.evictions})"
        )
