"""Checkpoint codecs for serving state: query ledger and response cache.

Registered in :data:`repro.checkpoint.CHECKPOINTS` on serving-package
import. Both codecs restore *exact* bookkeeping — per-consumer dict
insertion order included, because :meth:`QueryLedger.consumers` reports
first-charge order and :class:`ResponseCache` eviction behaviour is a
function of recency order — so a resumed serving run replays cache hits
and budget exhaustion byte-for-byte.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

import numpy as np

from repro.checkpoint.codec import CHECKPOINTS, StateCodec
from repro.serving.cache import ResponseCache
from repro.serving.ledger import QueryLedger

__all__ = ["QueryLedgerCodec", "ResponseCacheCodec"]


@CHECKPOINTS.register("serving/ledger")
class QueryLedgerCodec(StateCodec):
    """Snapshot a :class:`QueryLedger`: budgets plus per-consumer tallies."""

    kind = "serving/ledger"
    target = QueryLedger
    state_fields = (
        "budget",
        "consumer_budgets",
        "_counts",
        "_cache_hits",
        "_evictions",
    )

    def capture(self, obj: Any) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        meta = {
            "budget": obj.budget,
            "consumer_budgets": dict(obj.consumer_budgets),
            "counts": dict(obj._counts),
            "cache_hits": dict(obj._cache_hits),
            "evictions": dict(obj._evictions),
        }
        return meta, {}

    def restore(
        self, obj: Any, meta: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> None:
        obj.budget = meta["budget"]
        obj.consumer_budgets = dict(meta["consumer_budgets"])
        # JSON objects preserve key order, so first-charge order survives
        # the round trip into these insertion-ordered dicts.
        obj._counts = {name: int(n) for name, n in meta["counts"].items()}
        obj._cache_hits = {name: int(n) for name, n in meta["cache_hits"].items()}
        obj._evictions = {name: int(n) for name, n in meta["evictions"].items()}


@CHECKPOINTS.register("serving/cache")
class ResponseCacheCodec(StateCodec):
    """Snapshot a :class:`ResponseCache`: rows, recency order, evictions."""

    kind = "serving/cache"
    target = ResponseCache
    state_fields = ("max_entries", "_rows", "evictions")

    def capture(self, obj: Any) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        meta = {
            "max_entries": obj.max_entries,
            "evictions": obj.evictions,
            # Explicit order: the LRU contract lives in _rows' ordering.
            "order": list(obj._rows),
        }
        # Copies, so an in-memory fragment stays valid while the live
        # cache keeps serving.
        arrays = {digest: row.copy() for digest, row in obj._rows.items()}
        return meta, arrays

    def restore(
        self, obj: Any, meta: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> None:
        obj.max_entries = meta["max_entries"]
        obj.evictions = int(meta["evictions"])
        obj._rows = OrderedDict((digest, arrays[digest]) for digest in meta["order"])
