"""Query ledger: metering and budgets for the prediction boundary.

Every feature-inference attack in the paper is powered by prediction
queries — one per sample for ESA/PRA, an accumulated pool for GRNA — so
the *number of queries an adversary can afford* is the natural knob for
the §VII defense family the paper only gestures at. :class:`QueryLedger`
is the bookkeeping half of that knob: it counts queries per consumer
(attack name, tenant, ...), enforces an optional global budget and
optional per-consumer budgets, and records cache hits separately because
a replayed response costs the protocol nothing.

Charging is atomic per request: a request that would cross the budget
either raises :class:`~repro.exceptions.QueryBudgetExceededError`
(``charge``) or is truncated to whatever remains (``grant``) — partial
silent fulfilment is never the default, because a half-filled score
matrix is the kind of bug that looks like a weak attack.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.exceptions import QueryBudgetExceededError, ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["QueryLedger"]


def _check_budget(value: "int | None", name: str) -> "int | None":
    if value is None:
        return None
    return check_positive_int(value, name=name)


class QueryLedger:
    """Per-consumer query accounting with optional budgets.

    Parameters
    ----------
    budget:
        Global cap on chargeable queries across every consumer;
        ``None`` (the default) meters without limiting.
    consumer_budgets:
        Optional per-consumer caps, e.g. ``{"grna": 500, "esa": 100}``
        for a deployment serving several attack sessions.
    """

    def __init__(
        self,
        budget: "int | None" = None,
        *,
        consumer_budgets: "Mapping[str, int] | None" = None,
    ) -> None:
        self.budget = _check_budget(budget, "budget")
        self.consumer_budgets = {
            name: _check_budget(cap, f"consumer budget {name!r}")
            for name, cap in dict(consumer_budgets or {}).items()
        }
        self._counts: dict[str, int] = {}
        self._cache_hits: dict[str, int] = {}
        self._evictions: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Metering
    # ------------------------------------------------------------------
    @property
    def queries_used(self) -> int:
        """Total chargeable queries served, across every consumer."""
        return sum(self._counts.values())

    @property
    def cache_hits(self) -> int:
        """Total responses replayed from cache (never charged)."""
        return sum(self._cache_hits.values())

    @property
    def evictions(self) -> int:
        """Total cached responses dropped by an LRU bound, every consumer.

        An evicted entry that is queried again is a fresh computation and
        a fresh charge, so cache-hit counts stay exact: ``hits`` only
        ever means "replayed from a live entry", and this counter is the
        audit trail for why a bounded cache hits less than an unbounded
        one would.
        """
        return sum(self._evictions.values())

    def count(self, consumer: str) -> int:
        """Chargeable queries served to one consumer."""
        return self._counts.get(consumer, 0)

    def cache_hit_count(self, consumer: str) -> int:
        """Cache hits served to one consumer."""
        return self._cache_hits.get(consumer, 0)

    def eviction_count(self, consumer: str) -> int:
        """Evictions attributed to one consumer (whose insert overflowed)."""
        return self._evictions.get(consumer, 0)

    def consumers(self) -> list[str]:
        """Every consumer the ledger has seen, in first-charge order."""
        seen = dict.fromkeys(self._counts)
        seen.update(dict.fromkeys(self._cache_hits))
        seen.update(dict.fromkeys(self._evictions))
        return list(seen)

    def remaining(self, consumer: "str | None" = None) -> "int | None":
        """Queries left before a budget binds; ``None`` when unlimited.

        With ``consumer`` given, the tighter of the global and that
        consumer's budget; without, the global one.
        """
        remains: "int | None" = None
        if self.budget is not None:
            remains = max(0, self.budget - self.queries_used)
        if consumer is not None and consumer in self.consumer_budgets:
            consumer_left = max(
                0, self.consumer_budgets[consumer] - self.count(consumer)
            )
            remains = consumer_left if remains is None else min(remains, consumer_left)
        return remains

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge(self, n: int, consumer: str = "anonymous") -> int:
        """Charge ``n`` queries to ``consumer`` or raise without charging.

        Atomic: either the whole request fits in every applicable budget
        and ``n`` is recorded, or :class:`QueryBudgetExceededError` is
        raised and the ledger is untouched.
        """
        n = self._check_request(n)
        remains = self.remaining(consumer)
        if remains is not None and n > remains:
            raise QueryBudgetExceededError(
                f"query budget exceeded for consumer {consumer!r}: requested "
                f"{n} predictions with {remains} remaining (used "
                f"{self.count(consumer)} of a budget of "
                f"{self._binding_budget(consumer)})"
            )
        self._counts[consumer] = self.count(consumer) + n
        return n

    def grant(self, n: int, consumer: str = "anonymous") -> int:
        """Charge up to ``n`` queries, truncating at the budget.

        Returns how many were actually granted (possibly 0). The
        truncating sibling of :meth:`charge`, for callers that prefer a
        shorter response over an exception.
        """
        n = self._check_request(n)
        remains = self.remaining(consumer)
        granted = n if remains is None else min(n, remains)
        if granted:
            self._counts[consumer] = self.count(consumer) + granted
        return granted

    def refund(self, n: int, consumer: str = "anonymous") -> None:
        """Return queries charged for responses that were never released.

        Used by the serving layer when an ``on_query`` defense refuses a
        batch after it was charged and computed: the adversary received
        nothing, so the ledger must not say otherwise.
        """
        if n < 0:
            raise ValidationError(f"refund count must be >= 0, got {n}")
        if n == 0:
            return
        current = self.count(consumer)
        if n > current:
            raise ValidationError(
                f"cannot refund {n} queries; consumer {consumer!r} was only "
                f"charged {current}"
            )
        self._counts[consumer] = current - n

    def record_cache_hits(self, n: int, consumer: str = "anonymous") -> None:
        """Record ``n`` replayed responses; cache hits are never charged."""
        if n < 0:
            raise ValidationError(f"cache hit count must be >= 0, got {n}")
        if n:
            self._cache_hits[consumer] = self.cache_hit_count(consumer) + n

    def record_evictions(self, n: int, consumer: str = "anonymous") -> None:
        """Record ``n`` cached responses dropped by an LRU bound.

        Attributed to the consumer whose insert overflowed the cache (for
        consumer-scoped caches that is also the entries' owner). Never
        affects budgets — eviction costs the *cache*, not the consumer.
        """
        if n < 0:
            raise ValidationError(f"eviction count must be >= 0, got {n}")
        if n:
            self._evictions[consumer] = self.eviction_count(consumer) + n

    def _check_request(self, n: int) -> int:
        if n <= 0:
            raise ValidationError(f"query count must be positive, got {n}")
        return int(n)

    def _binding_budget(self, consumer: str) -> "int | None":
        caps = [
            cap
            for cap in (self.budget, self.consumer_budgets.get(consumer))
            if cap is not None
        ]
        return min(caps) if caps else None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot (used by reports and the audit trail)."""
        return {
            "budget": self.budget,
            "consumer_budgets": dict(self.consumer_budgets),
            "queries_used": self.queries_used,
            "cache_hits": self.cache_hits,
            "evictions": self.evictions,
            "counts": dict(self._counts),
            "cache_hit_counts": dict(self._cache_hits),
            "eviction_counts": dict(self._evictions),
        }

    @classmethod
    def merged(cls, ledgers: "Iterable[QueryLedger]") -> "QueryLedger":
        """Fold several shard ledgers into one deployment-wide view.

        Per-consumer counts, cache hits, and evictions are summed;
        per-consumer budgets are unioned (a consumer is pinned to one
        shard, so its budget appears on exactly one ledger and the union
        is conflict-free — a genuine conflict raises). Global budgets do
        not merge: a deployment-wide cap would need cross-shard
        coordination, which the share-nothing shard design deliberately
        rejects, so the merged ledger is reporting-only and unbudgeted.
        """
        merged = cls()
        for ledger in ledgers:
            for name, cap in ledger.consumer_budgets.items():
                existing = merged.consumer_budgets.get(name)
                if existing is not None and existing != cap:
                    raise ValidationError(
                        f"conflicting budgets for consumer {name!r} while "
                        f"merging ledgers: {existing} vs {cap}"
                    )
                merged.consumer_budgets[name] = cap
            for name, n in ledger._counts.items():
                merged._counts[name] = merged._counts.get(name, 0) + n
            for name, n in ledger._cache_hits.items():
                merged._cache_hits[name] = merged._cache_hits.get(name, 0) + n
            for name, n in ledger._evictions.items():
                merged._evictions[name] = merged._evictions.get(name, 0) + n
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"QueryLedger(budget={self.budget}, used={self.queries_used}, "
            f"cache_hits={self.cache_hits})"
        )
