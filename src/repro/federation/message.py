"""Wire codec for federation protocol messages.

Every value that crosses a party boundary in the federation runtime is a
:class:`Message` serialized through this codec — there is no "just hand
over the numpy array" path. That discipline is what makes communication
*measurable*: the :class:`~repro.federation.ledger.CommLedger` charges
exactly ``len(encode(message))`` bytes per send, and
:func:`encoded_size` computes the same number analytically, so
communication budgets can be planned without executing a protocol.

The wire format is deliberately simple and versioned::

    magic(4s) version(u16) sender(i16) receiver(i16) round(u32)
    kind_len(u8) dtype_len(u8) ndim(u8) crc32(u32)
    kind(utf-8) dtype(numpy dtype str) shape(ndim × i64) payload bytes

Decoding rejects bad magic, truncated frames, unknown header versions,
and checksum mismatches with :class:`~repro.exceptions.WireFormatError`
— a replayed frame from an incompatible build fails with a diagnosis
rather than a garbled array. Version 2 added the ``crc32`` field
(computed over every other byte of the frame): an in-flight bit flip —
the ``corrupt`` fault kind injects exactly that — is *always detected*,
because a flip the structural checks happen to tolerate (e.g. inside
the payload bytes) would otherwise decode into silently different
floats and break the bit-identity contract downstream. Numeric payloads round-trip bit-exactly (``tobytes`` /
``frombuffer`` of the same dtype), which is what lets the runtime's
protocol outputs stay byte-identical to the in-process
:meth:`~repro.federated.model.VerticalFLModel.predict` path.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import WireFormatError

__all__ = ["Message", "WIRE_VERSION", "decode_message", "encode_message", "encoded_size"]

#: Frame magic: any payload not starting with this is not ours.
MAGIC = b"RFED"

#: Current header version; :func:`decode_message` rejects all others.
#: Version 2 added the crc32 integrity field after the fixed header.
WIRE_VERSION = 2

#: Fixed-width header prefix (little-endian, see module docstring).
_HEADER = struct.Struct("<4sHhhIBBB")

#: Frame checksum (crc32 of every byte except these four), right after
#: the fixed header — any in-flight bit flip fails decode loudly.
_CRC = struct.Struct("<I")

#: Per-dimension shape entry appended after the variable-length strings.
_DIM = struct.Struct("<q")


@dataclass(frozen=True)
class Message:
    """One protocol message: who, what round, which kind, which array.

    Attributes
    ----------
    sender, receiver:
        Party ids of the two endpoints (``-1`` conventionally addresses
        the coordinator in broadcast-style extensions; the current
        protocol always uses concrete party ids).
    kind:
        Protocol message kind (``"feature_request"``,
        ``"feature_block"``, ``"train_request"``, ``"train_block"``).
        Free-form at the codec layer; the nodes dispatch on it.
    payload:
        The transferred array. Always copied through bytes on the wire —
        a received payload never aliases the sender's memory.
    round_id:
        The protocol round this message belongs to (ledger bookkeeping).
    """

    sender: int
    receiver: int
    kind: str
    payload: np.ndarray = field(repr=False)
    round_id: int = 0

    def __post_init__(self) -> None:
        # Normalize once so nbytes/encode agree on dtype and shape.
        object.__setattr__(self, "payload", np.asarray(self.payload))

    @property
    def nbytes(self) -> int:
        """Exact encoded frame size in bytes (what the ledger charges)."""
        return encoded_size(self.kind, self.payload.dtype, self.payload.shape)

    def encode(self) -> bytes:
        """Serialize to wire bytes (see :func:`encode_message`)."""
        return encode_message(self)

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        """Parse wire bytes back into a message (see :func:`decode_message`)."""
        return decode_message(data)


def _check_payload(payload: np.ndarray) -> np.ndarray:
    payload = np.asarray(payload)
    if payload.dtype.hasobject:
        raise WireFormatError(
            f"cannot encode payload dtype {payload.dtype}: the wire format "
            "carries flat numeric/boolean buffers only"
        )
    if not payload.flags.c_contiguous:
        # ascontiguousarray would also promote 0-d payloads to 1-d, so
        # only copy when the buffer layout actually requires it.
        payload = np.ascontiguousarray(payload)
    return payload


def encoded_size(kind: str, dtype, shape: tuple[int, ...]) -> int:
    """Exact frame size for a payload of the given dtype/shape.

    The analytic twin of ``len(encode_message(m))`` — used by
    :meth:`~repro.federation.runtime.FederationRuntime.estimate_predict_bytes`
    to price a protocol run without executing it (regression-tested to
    match the measured ledger bytes exactly).
    """
    dtype = np.dtype(dtype)
    kind_bytes = kind.encode("utf-8")
    dtype_bytes = dtype.str.encode("ascii")
    n_items = 1
    for dim in shape:
        n_items *= int(dim)
    return (
        _HEADER.size
        + _CRC.size
        + len(kind_bytes)
        + len(dtype_bytes)
        + _DIM.size * len(shape)
        + n_items * dtype.itemsize
    )


def encode_message(message: Message) -> bytes:
    """Serialize a :class:`Message` into one self-describing frame."""
    payload = _check_payload(message.payload)
    kind_bytes = message.kind.encode("utf-8")
    dtype_bytes = payload.dtype.str.encode("ascii")
    if len(kind_bytes) > 255:
        raise WireFormatError(f"message kind too long to encode: {message.kind!r}")
    if payload.ndim > 255:
        raise WireFormatError(f"payload rank {payload.ndim} exceeds the wire limit")
    header = _HEADER.pack(
        MAGIC,
        WIRE_VERSION,
        int(message.sender),
        int(message.receiver),
        int(message.round_id),
        len(kind_bytes),
        len(dtype_bytes),
        payload.ndim,
    )
    dims = b"".join(_DIM.pack(dim) for dim in payload.shape)
    body = kind_bytes + dtype_bytes + dims + payload.tobytes()
    crc = zlib.crc32(body, zlib.crc32(header))
    return header + _CRC.pack(crc) + body


def decode_message(data: bytes) -> Message:
    """Parse one frame, validating magic, version, and length."""
    if len(data) < _HEADER.size:
        raise WireFormatError(
            f"truncated frame: {len(data)} bytes, header needs {_HEADER.size}"
        )
    magic, version, sender, receiver, round_id, kind_len, dtype_len, ndim = (
        _HEADER.unpack_from(data)
    )
    if magic != MAGIC:
        raise WireFormatError(
            f"bad magic {magic!r}: not a repro federation frame"
        )
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version}; this build speaks only "
            f"version {WIRE_VERSION}"
        )
    meta_end = _HEADER.size + _CRC.size + kind_len + dtype_len + ndim * _DIM.size
    if len(data) < meta_end:
        raise WireFormatError(
            f"truncated frame: {len(data)} bytes, the header metadata "
            f"declares {meta_end}"
        )
    (declared_crc,) = _CRC.unpack_from(data, _HEADER.size)
    offset = _HEADER.size + _CRC.size
    try:
        kind = data[offset : offset + kind_len].decode("utf-8")
        offset += kind_len
        dtype_str = data[offset : offset + dtype_len].decode("ascii")
    except UnicodeDecodeError as exc:
        raise WireFormatError(
            f"corrupted frame: undecodable kind/dtype strings ({exc})"
        ) from exc
    try:
        # np.dtype raises TypeError for unknown codes but also
        # ValueError/SyntaxError for corrupted spec strings.
        dtype = np.dtype(dtype_str)
    except (TypeError, ValueError, SyntaxError) as exc:
        raise WireFormatError(f"undecodable payload dtype {dtype_str!r}") from exc
    if dtype.hasobject:
        raise WireFormatError(
            f"frame declares payload dtype {dtype_str!r}; the wire format "
            "carries flat numeric/boolean buffers only"
        )
    offset += dtype_len
    shape = tuple(
        _DIM.unpack_from(data, offset + i * _DIM.size)[0] for i in range(ndim)
    )
    offset += ndim * _DIM.size
    if any(dim < 0 for dim in shape):
        raise WireFormatError(f"frame declares a negative dimension: {shape}")
    n_items = 1
    for dim in shape:
        n_items *= dim
    expected = offset + n_items * dtype.itemsize
    if len(data) != expected:
        raise WireFormatError(
            f"frame length {len(data)} != {expected} declared by the header "
            f"(kind={kind!r}, dtype={dtype.str}, shape={shape})"
        )
    # Integrity last: structural diagnoses above are more precise, and
    # a flip they tolerate (payload bytes, shape that still fits) lands
    # here rather than decoding into silently different values.
    actual_crc = zlib.crc32(
        data[_HEADER.size + _CRC.size :], zlib.crc32(data[: _HEADER.size])
    )
    if actual_crc != declared_crc:
        raise WireFormatError(
            f"corrupted frame: checksum mismatch (declared {declared_crc:#010x}, "
            f"computed {actual_crc:#010x}); the frame was altered in flight"
        )
    payload = np.frombuffer(data, dtype=dtype, count=n_items, offset=offset)
    return Message(
        sender=sender,
        receiver=receiver,
        kind=kind,
        payload=payload.reshape(shape).copy(),
        round_id=round_id,
    )
