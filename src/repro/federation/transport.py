"""Metered message transport between party nodes.

A :class:`Transport` owns one inbox per party and a
:class:`~repro.federation.ledger.CommLedger`. :meth:`Transport.send`
*encodes* the message, charges its exact frame size to the ledger, and
only then delivers the raw bytes; :meth:`Transport.receive` decodes on
the way out. Storing encoded bytes (not array references) in the inboxes
is deliberate: every cross-party value demonstrably passes through the
wire codec, so "ledger bytes == sum of encoded frame sizes" holds by
construction, and a received payload can never alias the sender's
buffers.

The transport also keeps a delivery log of ``(sender, receiver, kind,
nbytes, round_id)`` tuples — sizes and routing only, never values — which
the tests use to assert zero unmetered transfers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.exceptions import ProtocolError
from repro.federation.ledger import CommLedger
from repro.federation.message import Message, decode_message

__all__ = ["DeliveryRecord", "Transport"]


@dataclass(frozen=True)
class DeliveryRecord:
    """Audit-log entry for one delivered frame (routing + size, no values)."""

    sender: int
    receiver: int
    kind: str
    nbytes: int
    round_id: int


class Transport:
    """Point-to-point channels between parties, metered by a ledger.

    Parameters
    ----------
    ledger:
        The :class:`CommLedger` every send is charged to; a fresh
        unbudgeted ledger when omitted.
    """

    def __init__(self, ledger: "CommLedger | None" = None) -> None:
        self.ledger = ledger if ledger is not None else CommLedger()
        self._inboxes: dict[int, deque[bytes]] = {}
        self.delivery_log: list[DeliveryRecord] = []

    def send(self, message: Message) -> int:
        """Encode, meter, and deliver one message; returns its frame size.

        Raises :class:`~repro.exceptions.CommBudgetExceededError` (from
        the ledger) *before* delivery when the frame does not fit — an
        over-budget message never reaches its receiver.
        """
        if message.sender == message.receiver:
            raise ProtocolError(
                f"party {message.sender} attempted to send itself a message; "
                "local values do not cross the transport"
            )
        data = message.encode()
        self.ledger.charge(message.sender, message.receiver, len(data))
        self._inboxes.setdefault(int(message.receiver), deque()).append(data)
        self.delivery_log.append(
            DeliveryRecord(
                sender=int(message.sender),
                receiver=int(message.receiver),
                kind=message.kind,
                nbytes=len(data),
                round_id=int(message.round_id),
            )
        )
        return len(data)

    def send_raw(
        self, data: bytes, *, sender: int, receiver: int, kind: str, round_id: int
    ) -> int:
        """Meter and deliver pre-encoded (possibly corrupted) frame bytes.

        The ``corrupt`` fault kind flips a bit *after* encoding; the
        damaged frame still crosses the wire, so it is charged and
        audit-logged exactly like a healthy send — the receiver's decode
        is where the corruption surfaces (as a
        :class:`~repro.exceptions.WireFormatError` checksum failure).
        """
        if int(sender) == int(receiver):
            raise ProtocolError(
                f"party {sender} attempted to send itself a message; "
                "local values do not cross the transport"
            )
        self.ledger.charge(int(sender), int(receiver), len(data))
        self._inboxes.setdefault(int(receiver), deque()).append(bytes(data))
        self.delivery_log.append(
            DeliveryRecord(
                sender=int(sender),
                receiver=int(receiver),
                kind=kind,
                nbytes=len(data),
                round_id=int(round_id),
            )
        )
        return len(data)

    def receive(self, party_id: int) -> Message:
        """Pop and decode the oldest frame addressed to ``party_id``."""
        inbox = self._inboxes.get(int(party_id))
        if not inbox:
            raise ProtocolError(f"party {party_id} has no pending messages")
        return decode_message(inbox.popleft())

    def pending(self, party_id: int) -> int:
        """Frames queued for ``party_id`` (0 for unknown parties)."""
        inbox = self._inboxes.get(int(party_id))
        return len(inbox) if inbox else 0

    def clear(self) -> int:
        """Drop every undelivered frame; returns how many were dropped.

        Called by the runtime when a protocol round aborts (budget
        exhaustion, dropped party): frames already delivered to inboxes
        but never consumed must not leak into the next round, where a
        responder would answer a stale request with the wrong rows. The
        dropped frames stay charged on the ledger — they did cross the
        wire.
        """
        dropped = sum(len(inbox) for inbox in self._inboxes.values())
        for inbox in self._inboxes.values():
            inbox.clear()
        return dropped

    @property
    def delivered_bytes(self) -> int:
        """Sum of delivered frame sizes (== ledger bytes by construction)."""
        return sum(record.nbytes for record in self.delivery_log)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"Transport(delivered={len(self.delivery_log)} frames, "
            f"{self.delivered_bytes} bytes, ledger={self.ledger!r})"
        )
