"""Fault injection for federation protocol rounds.

Real multi-party deployments lose parties and wait on stragglers; the
in-process simulation can now express both. A :class:`FaultPlan` is
built from ``(kind, params)`` specs — the same shape as defense specs,
so scenario configs serialize them — and handed to the
:class:`~repro.federation.runtime.FederationRuntime`, whose party nodes
consult it at response time:

``("drop", {"party": p})``
    Party ``p`` never answers; the round fails with
    :class:`~repro.exceptions.PartyUnavailableError` naming the party
    and round.
``("straggler", {"party": p, "delay": seconds})``
    Party ``p`` sleeps before responding. Under the threaded scheduler
    the other parties proceed concurrently and the deterministic round
    barrier still merges replies in party order, so a straggler costs
    wall-clock time but never changes bytes or results.

Unknown kinds fail with an error listing the registered choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.utils.validation import check_in_range

__all__ = ["FAULT_KINDS", "FaultPlan"]

#: Registered fault kinds and the params each spec accepts.
FAULT_KINDS = ("drop", "straggler")


@dataclass(frozen=True)
class FaultPlan:
    """Resolved fault injection: which parties drop, which ones lag."""

    dropped: frozenset = frozenset()
    delays: dict = field(default_factory=dict)

    @classmethod
    def from_specs(cls, specs) -> "FaultPlan":
        """Build a plan from ``(kind, params)`` spec pairs.

        Every kind needs at least a ``party`` parameter, so — unlike
        defense specs — there is no bare-kind shorthand.
        """
        dropped: set[int] = set()
        delays: dict[int, float] = {}
        for spec in specs:
            if isinstance(spec, (tuple, list)) and len(spec) == 2:
                kind, params = spec[0], dict(spec[1])
            else:
                raise ValidationError(
                    f"fault spec {spec!r} must be a (kind, params) pair, "
                    f"e.g. ('drop', {{'party': 2}})"
                )
            if kind not in FAULT_KINDS:
                raise ValidationError(
                    f"unknown fault kind {kind!r}; choose from {list(FAULT_KINDS)}"
                )
            if "party" not in params:
                raise ValidationError(
                    f"fault spec {kind!r} needs a 'party' id to inject into"
                )
            party = int(params["party"])
            if kind == "drop":
                dropped.add(party)
            else:
                delay = check_in_range(
                    float(params.get("delay", 0.001)), name="straggler delay", low=0.0
                )
                delays[party] = delay
        return cls(dropped=frozenset(dropped), delays=delays)

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing."""
        return not self.dropped and not self.delays

    def validate_parties(self, n_parties: int) -> None:
        """Check every referenced party id names a *passive* party.

        Party 0 initiates rounds, so dropping or delaying it is a
        mis-specification, not a simulable fault.
        """
        for party in sorted({*self.dropped, *self.delays}):
            if party == 0:
                raise ValidationError(
                    "cannot inject faults into party 0: the active party "
                    "initiates every protocol round"
                )
            if not 0 < party < n_parties:
                raise ValidationError(
                    f"fault references party {party}, but the topology has "
                    f"parties 0..{n_parties - 1}"
                )
