"""Fault injection for federation protocol rounds.

Real multi-party deployments lose parties and wait on stragglers; the
in-process simulation can now express both — plus the *stochastic*
storm kinds the resilience layer retries against. A :class:`FaultPlan`
is built from ``(kind, params)`` specs — the same shape as defense
specs, so scenario configs serialize them — and handed to the
:class:`~repro.federation.runtime.FederationRuntime`, whose party nodes
consult it at response time:

``("drop", {"party": p})``
    Party ``p`` never answers; the round fails with
    :class:`~repro.exceptions.PartyUnavailableError` naming the party
    and round (or degrades, under a quorum policy).
``("straggler", {"party": p, "delay": seconds})``
    Party ``p`` sleeps before responding. Under the threaded scheduler
    the other parties proceed concurrently and the deterministic round
    barrier still merges replies in party order, so a straggler costs
    wall-clock time but never changes bytes or results.
``("flaky", {"party": p, "p": prob, "seed": s})``
    Each attempt by party ``p`` fails independently with probability
    ``prob``; a retry may succeed. Decisions come from the chaos
    engine's pure per-cell streams, so they are scheduler-independent.
``("crash_after", {"party": p, "round": r})``
    Party ``p`` answers rounds ``0..r-1`` then permanently crashes —
    retrying is pointless and the resilient exchange knows it.
``("corrupt", {"party": p, "p": prob, "seed": s})``
    With probability ``prob`` the reply frame is bit-flipped in flight;
    the wire codec's crc32 catches it and the attempt counts as failed.
``("timeout", {"party": p, "delay": seconds, "p": prob, "seed": s})``
    With probability ``prob`` (default 1) the reply takes ``delay``
    *simulated* seconds; against a retry policy's per-attempt timeout
    that becomes a metered timeout failure.

Unknown kinds fail with an error listing the registered choices, and a
party may carry at most one spec — two specs for the same party would
silently shadow each other, so :meth:`FaultPlan.from_specs` rejects the
duplicate naming both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.resilience.chaos import OK, FaultOutcome, decision_rng
from repro.utils.validation import check_in_range

__all__ = ["FAULT_KINDS", "FaultPlan"]

#: Registered fault kinds and the params each spec accepts.
FAULT_KINDS = ("drop", "straggler", "flaky", "crash_after", "corrupt", "timeout")

#: Kinds whose per-attempt behaviour the chaos engine decides.
STOCHASTIC_KINDS = ("flaky", "crash_after", "corrupt", "timeout")


def _check_probability(params: dict, kind: str, default: "float | None" = None) -> float:
    if "p" not in params and default is not None:
        return float(default)
    if "p" not in params:
        raise ValidationError(f"fault spec {kind!r} needs a probability 'p'")
    p = float(params["p"])
    if not 0.0 <= p <= 1.0:
        raise ValidationError(
            f"fault {kind!r} probability must lie in [0, 1], got {p}"
        )
    return p


def _check_seed(params: dict, kind: str) -> int:
    seed = params.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise ValidationError(
            f"fault {kind!r} seed must be a non-negative int, got {seed!r}"
        )
    return seed


@dataclass(frozen=True)
class FaultPlan:
    """Resolved fault injection: drops, stragglers, and stochastic storms.

    Attributes
    ----------
    dropped:
        Parties that never answer (deterministic, permanent).
    delays:
        Per-party straggler sleep in wall-clock seconds.
    stochastic:
        Per-party ``(kind, normalized_params)`` for the chaos-driven
        kinds; :meth:`outcome` turns an entry into the
        :class:`~repro.resilience.FaultOutcome` for one attempt.
    """

    dropped: frozenset = frozenset()
    delays: dict = field(default_factory=dict)
    stochastic: dict = field(default_factory=dict)

    @classmethod
    def from_specs(cls, specs) -> "FaultPlan":
        """Build a plan from ``(kind, params)`` spec pairs.

        Every kind needs at least a ``party`` parameter, so — unlike
        defense specs — there is no bare-kind shorthand. Each party may
        carry at most one spec; a duplicate is rejected naming both
        specs rather than silently overwriting the first.
        """
        dropped: set[int] = set()
        delays: dict[int, float] = {}
        stochastic: dict[int, tuple[str, dict]] = {}
        claimed: dict[int, tuple] = {}
        for spec in specs:
            if isinstance(spec, (tuple, list)) and len(spec) == 2:
                kind, params = spec[0], dict(spec[1])
            else:
                raise ValidationError(
                    f"fault spec {spec!r} must be a (kind, params) pair, "
                    f"e.g. ('drop', {{'party': 2}})"
                )
            if kind not in FAULT_KINDS:
                raise ValidationError(
                    f"unknown fault kind {kind!r}; choose from {list(FAULT_KINDS)}"
                )
            if "party" not in params:
                raise ValidationError(
                    f"fault spec {kind!r} needs a 'party' id to inject into"
                )
            party = int(params["party"])
            if party in claimed:
                raise ValidationError(
                    f"party {party} already carries fault spec "
                    f"{claimed[party]!r}; duplicate spec {(kind, params)!r} "
                    "would silently shadow it — give each party one fault"
                )
            claimed[party] = (kind, params)
            if kind == "drop":
                dropped.add(party)
            elif kind == "straggler":
                delay = check_in_range(
                    float(params.get("delay", 0.001)), name="straggler delay", low=0.0
                )
                delays[party] = delay
            elif kind == "flaky":
                stochastic[party] = (
                    "flaky",
                    {"p": _check_probability(params, kind),
                     "seed": _check_seed(params, kind)},
                )
            elif kind == "crash_after":
                if "round" not in params:
                    raise ValidationError(
                        "fault spec 'crash_after' needs the 'round' the party "
                        "crashes at"
                    )
                round_at = int(params["round"])
                if round_at < 0:
                    raise ValidationError(
                        f"crash_after round must be >= 0, got {round_at}"
                    )
                stochastic[party] = ("crash_after", {"round": round_at})
            elif kind == "corrupt":
                stochastic[party] = (
                    "corrupt",
                    {"p": _check_probability(params, kind),
                     "seed": _check_seed(params, kind)},
                )
            else:  # timeout
                delay = float(params.get("delay", 0.0))
                if delay <= 0.0:
                    raise ValidationError(
                        "fault spec 'timeout' needs a positive simulated "
                        f"'delay' in seconds, got {delay}"
                    )
                stochastic[party] = (
                    "timeout",
                    {"p": _check_probability(params, kind, default=1.0),
                     "delay": delay,
                     "seed": _check_seed(params, kind)},
                )
        return cls(dropped=frozenset(dropped), delays=delays, stochastic=stochastic)

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing."""
        return not self.dropped and not self.delays and not self.stochastic

    @property
    def has_stochastic(self) -> bool:
        """True when any party carries a chaos-driven fault kind."""
        return bool(self.stochastic)

    def outcome(self, party: int, round_id: int, attempt: int) -> FaultOutcome:
        """The chaos decision for one ``(party, round, attempt)`` cell.

        Pure in its arguments (see :mod:`repro.resilience.chaos`): the
        runtime and the party node can both evaluate it and agree, and
        an offline auditor can recompute an entire storm analytically —
        which is exactly what ``benchmarks/bench_resilience.py`` gates.
        """
        if party in self.dropped:
            return FaultOutcome(kind="drop")
        entry = self.stochastic.get(party)
        if entry is None:
            return OK
        kind, params = entry
        if kind == "crash_after":
            return FaultOutcome(kind="crash") if round_id >= params["round"] else OK
        rng = decision_rng(params["seed"], party, round_id, attempt)
        if kind == "flaky":
            return FaultOutcome(kind="flaky") if rng.random() < params["p"] else OK
        if kind == "corrupt":
            if rng.random() < params["p"]:
                return FaultOutcome(
                    kind="corrupt", token=int(rng.integers(0, 2**63 - 1))
                )
            return OK
        # timeout: the reply arrives, just late; whether late is *too*
        # late belongs to the retry policy, so the outcome only carries
        # the latency.
        if rng.random() < params["p"]:
            return FaultOutcome(kind="timeout", latency=params["delay"])
        return OK

    def validate_parties(self, n_parties: int) -> None:
        """Check every referenced party id names a *passive* party.

        Party 0 initiates rounds, so dropping or delaying it is a
        mis-specification, not a simulable fault.
        """
        for party in sorted({*self.dropped, *self.delays, *self.stochastic}):
            if party == 0:
                raise ValidationError(
                    "cannot inject faults into party 0: the active party "
                    "initiates every protocol round"
                )
            if not 0 < party < n_parties:
                raise ValidationError(
                    f"fault references party {party}, but the topology has "
                    f"parties 0..{n_parties - 1}"
                )
