"""Party actors: protocol-round behaviour bound to a data-holding party.

The :mod:`repro.federated.party` classes hold *data*; these nodes hold
*behaviour*: how a party turns an incoming protocol message into its
reply. A :class:`PassivePartyNode` answers ``feature_request`` /
``train_request`` messages with its column block for the named rows; an
:class:`ActivePartyNode` builds those requests and assembles the replies
back into the joint matrix — the only place the blocks ever meet.

Nodes never touch another node's state: everything they learn arrives
through :meth:`~repro.federation.transport.Transport.receive` and
everything they reveal leaves through a returned
:class:`~repro.federation.message.Message` that the runtime sends (and
the ledger meters). Fault injection hooks in here — a dropped party
raises :class:`~repro.exceptions.PartyUnavailableError` instead of
replying, a straggler sleeps first — so both schedulers exercise the
identical failure surface.
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import PartyUnavailableError, ProtocolError
from repro.federated.party import ActiveParty, Party
from repro.federation.faults import FaultPlan
from repro.federation.message import Message
from repro.federation.transport import Transport

__all__ = ["ActivePartyNode", "PartyNode", "PassivePartyNode"]

#: Message kinds of the prediction round.
FEATURE_REQUEST = "feature_request"
FEATURE_BLOCK = "feature_block"

#: Message kinds of the training round.
TRAIN_REQUEST = "train_request"
TRAIN_BLOCK = "train_block"

_REQUEST_TO_REPLY = {FEATURE_REQUEST: FEATURE_BLOCK, TRAIN_REQUEST: TRAIN_BLOCK}


class PartyNode:
    """Behaviour wrapper around one data-holding :class:`Party`."""

    def __init__(
        self,
        party: Party,
        transport: Transport,
        faults: "FaultPlan | None" = None,
    ) -> None:
        self.party = party
        self.transport = transport
        self.faults = faults if faults is not None else FaultPlan()

    @property
    def party_id(self) -> int:
        """The wrapped party's id."""
        return self.party.party_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(party={self.party_id})"


class PassivePartyNode(PartyNode):
    """A feature-contributing party's protocol behaviour."""

    def respond(self, attempt: int = 0) -> Message:
        """Answer the oldest pending request with this party's block.

        The unit of work a scheduler runs on its own thread: pop the
        request from this node's inbox, honour any injected fault, gather
        the local columns, and return the reply message for the runtime
        to send. Only this node's own state is touched — the stochastic
        fault decision for ``(party, round, attempt)`` is a pure chaos
        function — which is what makes the threaded scheduler race-free.
        """
        request = self.transport.receive(self.party_id)
        if request.kind not in _REQUEST_TO_REPLY:
            raise ProtocolError(
                f"party {self.party_id} cannot answer message kind "
                f"{request.kind!r}"
            )
        if self.party_id in self.faults.dropped:
            raise PartyUnavailableError(
                f"party {self.party_id} dropped out of round "
                f"{request.round_id}; the {request.kind!r} request has no "
                "responder"
            )
        outcome = self.faults.outcome(self.party_id, request.round_id, attempt)
        if outcome.kind == "crash":
            raise PartyUnavailableError(
                f"party {self.party_id} crashed before round "
                f"{request.round_id}; it will not answer this or any later "
                "round"
            )
        if outcome.kind == "flaky":
            raise PartyUnavailableError(
                f"party {self.party_id} failed attempt {attempt} of round "
                f"{request.round_id} (flaky); a retry may succeed"
            )
        # "corrupt" and "timeout" outcomes still produce the reply: the
        # runtime (which recomputes the same pure outcome) flips the
        # frame in flight / accounts the simulated latency.
        delay = self.faults.delays.get(self.party_id)
        if delay:
            time.sleep(delay)
        rows = np.asarray(request.payload, dtype=np.int64).ravel()
        return Message(
            sender=self.party_id,
            receiver=request.sender,
            kind=_REQUEST_TO_REPLY[request.kind],
            payload=self.party.local_features(rows),
            round_id=request.round_id,
        )


class ActivePartyNode(PartyNode):
    """The coordinating (label-owning) party's protocol behaviour."""

    def __init__(
        self,
        party: ActiveParty,
        transport: Transport,
        faults: "FaultPlan | None" = None,
    ) -> None:
        if not isinstance(party, ActiveParty):
            raise ProtocolError("the coordinating node must wrap the active party")
        super().__init__(party, transport, faults)

    def make_request(
        self, receiver: int, sample_indices: np.ndarray, round_id: int, *, kind: str = FEATURE_REQUEST
    ) -> Message:
        """A request naming the rows ``receiver`` must contribute."""
        return Message(
            sender=self.party_id,
            receiver=receiver,
            kind=kind,
            payload=np.asarray(sample_indices, dtype=np.int64).ravel(),
            round_id=round_id,
        )

    def collect_blocks(
        self, n_expected: int, round_id: "int | None" = None
    ) -> dict[int, np.ndarray]:
        """Drain ``n_expected`` reply blocks from this node's inbox.

        Replies were sent in party order by the runtime, so the drain is
        deterministic; keyed by sender id for the assembly scatter. With
        ``round_id`` given, a reply from any other round is rejected —
        the belt to the runtime's braces of clearing the transport when
        a round aborts.
        """
        blocks: dict[int, np.ndarray] = {}
        for _ in range(n_expected):
            reply = self.transport.receive(self.party_id)
            if reply.kind not in (FEATURE_BLOCK, TRAIN_BLOCK):
                raise ProtocolError(
                    f"active party expected a block reply, got {reply.kind!r} "
                    f"from party {reply.sender}"
                )
            if round_id is not None and reply.round_id != round_id:
                raise ProtocolError(
                    f"active party received a round-{reply.round_id} block "
                    f"from party {reply.sender} while collecting round "
                    f"{round_id}; a previous round leaked state"
                )
            blocks[int(reply.sender)] = reply.payload
        return blocks

    def assemble(
        self,
        sample_indices: np.ndarray,
        blocks: dict[int, np.ndarray],
        parties: list[Party],
        n_features: int,
    ) -> np.ndarray:
        """Scatter the blocks into the joint matrix, own columns local.

        Column-for-column the same construction as
        :meth:`VerticalFLModel._assemble`, with the sole difference that
        every non-local block arrived through the wire codec — which is
        lossless for float64, so the result is byte-identical.
        """
        rows = np.asarray(sample_indices, dtype=np.int64).ravel()
        joint = np.empty((rows.size, n_features))
        for party in parties:
            if party.party_id == self.party_id:
                joint[:, party.feature_indices] = party.local_features(rows)
            else:
                joint[:, party.feature_indices] = blocks[party.party_id]
        return joint
