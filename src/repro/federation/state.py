"""Checkpoint codec for federation state: the communication ledger.

Registered in :data:`repro.checkpoint.CHECKPOINTS` on federation-package
import. Snapshots are taken at round boundaries — the scheduler never
suspends mid-round — so the resumable protocol state is exactly the
ledger: budgets, per-edge message/byte tallies, and the round counter.
Edge keys are ``(sender, receiver)`` int tuples, which JSON cannot key;
they travel as an ordered list of ``[sender, receiver, messages, bytes]``
rows instead.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.checkpoint.codec import CHECKPOINTS, StateCodec
from repro.federation.ledger import CommLedger

__all__ = ["CommLedgerCodec"]


@CHECKPOINTS.register("federation/ledger")
class CommLedgerCodec(StateCodec):
    """Snapshot a :class:`CommLedger`: budgets, edges, round counter."""

    kind = "federation/ledger"
    target = CommLedger
    state_fields = (
        "byte_budget",
        "message_budget",
        "_edges",
        "_rounds",
        "_retries",
        "_timeouts",
    )

    def capture(self, obj: Any) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        meta = {
            "byte_budget": obj.byte_budget,
            "message_budget": obj.message_budget,
            "rounds": obj._rounds,
            "retries": obj._retries,
            "timeouts": obj._timeouts,
            "edges": [
                [sender, receiver, stats["messages"], stats["bytes"]]
                for (sender, receiver), stats in obj._edges.items()
            ],
        }
        return meta, {}

    def restore(
        self, obj: Any, meta: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> None:
        obj.byte_budget = meta["byte_budget"]
        obj.message_budget = meta["message_budget"]
        obj._rounds = int(meta["rounds"])
        # .get: snapshots written before the resilience layer lack the
        # retry/timeout counters — they resume with zero of each.
        obj._retries = int(meta.get("retries", 0))
        obj._timeouts = int(meta.get("timeouts", 0))
        obj._edges = {
            (int(sender), int(receiver)): {"messages": int(m), "bytes": int(b)}
            for sender, receiver, m, b in meta["edges"]
        }
