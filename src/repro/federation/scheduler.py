"""Round schedulers: how party work inside one protocol round executes.

A scheduler runs the per-party tasks of one round and returns their
results **in task order** — that ordering is the determinism contract.
The runtime builds one task per responding party, the scheduler executes
them (serially or on threads), and the runtime then delivers the
returned messages in party order. Because merge order is fixed by the
caller and each task touches only its own party's state, the sequential
and threaded schedulers are *bit-identical* end to end (regression
tested across all four model kinds); threading buys wall-clock overlap
when parties straggle, never a different answer.

``make_scheduler`` resolves string keys (``"sequential"``,
``"threaded"``) with a choices-listing error, mirroring the scenario
registries.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, wait as wait_futures
from typing import Callable, Sequence

from repro.exceptions import ValidationError

__all__ = ["SCHEDULERS", "RoundScheduler", "SequentialScheduler", "ThreadedScheduler", "make_scheduler"]


class RoundScheduler:
    """Executes one round's party tasks; results come back in task order."""

    name = "abstract"

    def run_round(self, tasks: Sequence[Callable[[], object]]) -> list:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}()"


class SequentialScheduler(RoundScheduler):
    """In-process, party-order execution — the reference schedule."""

    name = "sequential"

    def run_round(self, tasks: Sequence[Callable[[], object]]) -> list:
        return [task() for task in tasks]


class ThreadedScheduler(RoundScheduler):
    """One worker thread per party task, joined at a deterministic barrier.

    Futures are collected in submission (party) order, so results — and
    any raised fault, e.g. a dropped party — surface exactly as they
    would sequentially. The pool is created lazily and reused across
    rounds; :meth:`close` shuts it down.
    """

    name = "threaded"

    def __init__(self, max_workers: "int | None" = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: "ThreadPoolExecutor | None" = None

    def run_round(self, tasks: Sequence[Callable[[], object]]) -> list:
        if len(tasks) <= 1:
            return [task() for task in tasks]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers or len(tasks),
                thread_name_prefix="repro-federation",
            )
        futures = [self._pool.submit(task) for task in tasks]
        # The barrier: every future joins before any result is used, in
        # party order, so completion order never leaks into the protocol.
        # If an early future raises (a dropped party), the later ones must
        # not leak: cancel what has not started and join what has, or a
        # straggler task could outlive the round — and the pool's
        # shutdown(wait=True) would block on it.
        results = []
        try:
            for future in futures:
                results.append(future.result())
        except BaseException:
            for future in futures:
                future.cancel()
            wait_futures(futures)
            raise
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: Scheduler registry keyed like the scenario registries.
SCHEDULERS: dict[str, type[RoundScheduler]] = {
    "sequential": SequentialScheduler,
    "threaded": ThreadedScheduler,
}


def make_scheduler(spec: "str | RoundScheduler") -> RoundScheduler:
    """Resolve a scheduler key or pass an instance through."""
    if isinstance(spec, RoundScheduler):
        return spec
    if spec not in SCHEDULERS:
        raise ValidationError(
            f"unknown scheduler {spec!r}; choose from {sorted(SCHEDULERS)}"
        )
    return SCHEDULERS[spec]()
