"""Declarative party topologies for scenario configs.

The paper evaluates a two-block world — the adversary coalition versus
one target — and :class:`TopologyConfig`'s defaults reproduce exactly
that (bit-identically, including the partition's random stream). The
knobs open the N-party axis: how many parties, which passive parties
collude with the active one, how the feature columns are apportioned
(``"uniform"`` equal-width or ``"dirichlet"`` skewed — see
:data:`repro.federated.partition.PARTITION_STRATEGIES`), and which
faults to inject into protocol rounds. A topology is plain data and JSON
round-trips inside :class:`~repro.api.ScenarioConfig` payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ValidationError
from repro.federated.partition import PARTITION_STRATEGIES
from repro.federation.faults import FaultPlan

__all__ = ["TopologyConfig"]


def _encode_fault_spec(spec) -> list:
    """JSON shape of one fault spec; rejects what FaultPlan would reject.

    Faults have no bare-kind shorthand (every kind needs a party), so
    the payload always carries ``[kind, params]`` pairs — the wire shape
    and the validation surface agree.
    """
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        return [spec[0], dict(spec[1])]
    raise ValidationError(
        f"fault spec {spec!r} must be a (kind, params) pair, "
        f"e.g. ('drop', {{'party': 2}})"
    )


@dataclass
class TopologyConfig:
    """How parties, columns, colluders, and faults are laid out.

    Attributes
    ----------
    n_parties:
        Total party count ``m`` (party 0 is always the active party).
    colluders:
        Passive party ids conspiring with the active party; their columns
        join the adversary view. At least one passive party must remain
        outside the coalition (the attack target).
    partition:
        Column-apportionment strategy key (``"uniform"``/``"dirichlet"``).
    partition_params:
        Extra strategy parameters (e.g. ``{"alpha": 0.3}`` for a more
        skewed Dirichlet draw).
    faults:
        Fault specs, same shape as defense specs: ``("drop", {"party":
        2})`` or ``("straggler", {"party": 1, "delay": 0.001})``.
    """

    n_parties: int = 2
    colluders: tuple = ()
    partition: str = "uniform"
    partition_params: dict = field(default_factory=dict)
    faults: tuple = ()

    @property
    def is_default_partition(self) -> bool:
        """True when the column layout is the paper's two-block draw.

        Faults are deliberately excluded: a straggling party changes
        round timing, never the partition.
        """
        return (
            self.n_parties == 2
            and not self.colluders
            and self.partition == "uniform"
            and not self.partition_params
        )

    @property
    def is_default(self) -> bool:
        """True for the paper's two-block setting with nothing injected."""
        return self.is_default_partition and not self.faults

    def validate(self) -> None:
        """Reject malformed topologies with choice-listing messages."""
        if not isinstance(self.n_parties, int) or self.n_parties < 2:
            raise ValidationError(
                f"topology needs at least 2 parties, got {self.n_parties!r}"
            )
        seen = set()
        for party in self.colluders:
            if not isinstance(party, int) or not 0 < party < self.n_parties:
                raise ValidationError(
                    f"colluder id {party!r} must be a passive party id in "
                    f"[1, {self.n_parties})"
                )
            if party in seen:
                raise ValidationError(f"colluder id {party} listed twice")
            seen.add(party)
        if len(seen) >= self.n_parties - 1:
            raise ValidationError(
                "the coalition covers every passive party; no attack target left"
            )
        if self.partition not in PARTITION_STRATEGIES:
            raise ValidationError(
                f"unknown partition strategy {self.partition!r}; choose from "
                f"{sorted(PARTITION_STRATEGIES)}"
            )
        self.fault_plan().validate_parties(self.n_parties)

    def fault_plan(self) -> FaultPlan:
        """Resolve the fault specs into a :class:`FaultPlan`."""
        return FaultPlan.from_specs(self.faults)

    # ------------------------------------------------------------------
    # Persistence (JSON round-trip inside ScenarioConfig payloads)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """JSON-ready dict mirroring the field layout."""
        return {
            "n_parties": self.n_parties,
            "colluders": list(self.colluders),
            "partition": self.partition,
            "partition_params": dict(self.partition_params),
            "faults": [_encode_fault_spec(spec) for spec in self.faults],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "TopologyConfig":
        """Rebuild from :meth:`to_payload` output (lists back to tuples)."""
        return cls(
            n_parties=int(payload["n_parties"]),
            colluders=tuple(int(p) for p in payload["colluders"]),
            partition=payload["partition"],
            partition_params=dict(payload["partition_params"]),
            faults=tuple(
                (kind, dict(params)) for kind, params in payload["faults"]
            ),
        )
