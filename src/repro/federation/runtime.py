"""The federation runtime: protocol rounds over a metered transport.

Where :class:`~repro.federated.model.VerticalFLModel` collapses the
"simulated secure protocol" into one in-process concatenation, the
runtime executes it as explicit message-passing rounds: the active party
node requests rows, passive party nodes reply with their encoded column
blocks, and the active node assembles and evaluates — every cross-party
value a serialized :class:`~repro.federation.message.Message` charged to
the :class:`~repro.federation.ledger.CommLedger`. The in-process
concatenation survives as the *oracle*: for any scheduler,
:meth:`FederationRuntime.predict` is byte-identical to
:meth:`VerticalFLModel.predict` (the wire codec is lossless for float64
blocks and the assembly scatter is column-for-column the same).

One prediction round = one request/reply exchange serving a whole index
batch; the serving layer maps each of its protocol rounds onto one
runtime round, so ``bytes/round`` is well-defined for any batching.
Training can run as a round too (:func:`train_vertical_runtime`): the
passive training blocks cross the metered wire once and the fit itself
stays central, matching the paper's perfectly-protected training phase.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import (
    PartyTimeoutError,
    PartyUnavailableError,
    ProtocolError,
    QuorumLostError,
    ValidationError,
    WireFormatError,
)
from repro.federated.model import VerticalFLModel, build_parties
from repro.federated.partition import FeaturePartition
from repro.federation.faults import FaultPlan
from repro.federation.ledger import CommLedger
from repro.federation.message import encoded_size
from repro.federation.nodes import (
    FEATURE_BLOCK,
    FEATURE_REQUEST,
    TRAIN_BLOCK,
    TRAIN_REQUEST,
    ActivePartyNode,
    PassivePartyNode,
)
from repro.federation.scheduler import RoundScheduler, make_scheduler
from repro.federation.transport import Transport
from repro.models.base import BaseClassifier
from repro.resilience import DEGRADATIONS, ResilienceState, RetryPolicy

__all__ = ["FederationRuntime", "train_vertical_runtime"]


def _guarded_respond(node: PassivePartyNode, attempt: int):
    """Wrap one responder so a failing party returns its error.

    The resilient exchange needs *every* party's outcome for the wave —
    a raised :class:`PartyUnavailableError` would make the scheduler
    cancel the sibling tasks — so failures travel back as values and the
    runtime sorts survivors from casualties afterwards.
    """

    def task() -> object:
        try:
            return node.respond(attempt)
        except PartyUnavailableError as exc:
            return exc

    return task


def _exchange_round(
    transport: Transport,
    scheduler: RoundScheduler,
    active: ActivePartyNode,
    passives: "list[PassivePartyNode]",
    rows: np.ndarray,
    kind: str,
) -> dict[int, np.ndarray]:
    """One request/reply exchange: blocks from every passive party.

    The single definition of a protocol round, shared by prediction and
    training: requests go out in party order, the scheduler runs the
    passive responders (serially or on threads), and replies are sent
    and drained in party order — the deterministic barrier that keeps
    both schedulers bit-identical. On any failure (budget, dropped
    party) the transport is cleared so delivered-but-unconsumed frames
    cannot poison a later round.
    """
    round_id = transport.ledger.begin_round()
    completed = False
    try:
        for node in passives:
            transport.send(
                active.make_request(node.party_id, rows, round_id, kind=kind)
            )
        replies = scheduler.run_round([node.respond for node in passives])
        for reply in replies:
            transport.send(reply)
        blocks = active.collect_blocks(len(passives), round_id)
        completed = True
        return blocks
    finally:
        # Cleanup-on-failure without a broad catch: any exception —
        # budget, dropped party, or a genuine bug — propagates untouched
        # while delivered-but-unconsumed frames are cleared so they
        # cannot poison a later round.
        if not completed:
            transport.clear()


class FederationRuntime:
    """Message-passing façade over one deployed vertical FL model.

    Parameters
    ----------
    vfl:
        The deployment to serve (model + partition + aligned parties).
    scheduler:
        ``"sequential"`` (reference), ``"threaded"`` (parallel party
        execution behind a deterministic round barrier), or a
        :class:`~repro.federation.scheduler.RoundScheduler` instance.
    comm_budget:
        Byte budget for the underlying :class:`CommLedger`; an
        over-budget send raises
        :class:`~repro.exceptions.CommBudgetExceededError`.
    message_budget:
        Optional cap on message count.
    faults:
        A :class:`~repro.federation.faults.FaultPlan` (or ``None``) —
        dropped parties, straggler delays, and stochastic storm kinds,
        validated against the deployment's party count.
    retry:
        A :class:`~repro.resilience.RetryPolicy`, an int attempt count,
        a policy payload dict, or ``None``. Anything but ``None``
        engages the *resilient exchange*: failed parties are retried
        (each retry metered as real request frames plus a ledger retry
        count), reply latencies accrue on a simulated clock, and replies
        slower than the policy timeout are discarded as metered
        timeouts.
    quorum:
        ``None`` (default) fails a round fast when any party stays
        missing after retries — today's behaviour. A float in ``(0, 1]``
        or an int party count degrades instead: if at least that many
        parties (active included) survive, the missing blocks are
        imputed and the round is recorded as degraded.
    degradation:
        Imputation strategy key from
        :data:`~repro.resilience.DEGRADATIONS` (``"zero_fill"``,
        ``"last_known"``) used for quorum-degraded rounds.
    tracer:
        A :class:`~repro.telemetry.Tracer` to report into: one
        ``federation.round`` span per exchange, ``resilience.retry_wave``
        events per retry wave, and ``federation.degraded`` events for
        quorum-degraded rounds. When the resilient exchange is engaged,
        the simulated clock is bound as the tracer's time source, so
        span ``sim`` seconds track protocol latency. ``None`` (default)
        traces nothing.
    """

    def __init__(
        self,
        vfl: VerticalFLModel,
        *,
        scheduler: "str | RoundScheduler" = "sequential",
        comm_budget: "int | None" = None,
        message_budget: "int | None" = None,
        faults: "FaultPlan | None" = None,
        retry: "RetryPolicy | int | dict | None" = None,
        quorum: "int | float | None" = None,
        degradation: str = "zero_fill",
        tracer=None,
        _transport: "Transport | None" = None,
    ) -> None:
        self.vfl = vfl
        self.scheduler = make_scheduler(scheduler)
        if _transport is not None:
            if comm_budget is not None or message_budget is not None:
                raise ValidationError(
                    "pass budgets through the existing transport's ledger, "
                    "not alongside it"
                )
            self.transport = _transport
        else:
            self.transport = Transport(
                CommLedger(comm_budget, message_budget=message_budget)
            )
        self.faults = faults if faults is not None else FaultPlan()
        self.faults.validate_parties(len(vfl.parties))
        self.retry_policy = RetryPolicy.from_spec(retry)
        self.quorum = self._check_quorum(quorum, len(vfl.parties))
        DEGRADATIONS.get(degradation)  # choices-listing error on typos
        self.degradation = degradation
        # The resilient exchange engages only when asked for (or when
        # stochastic faults make it necessary); otherwise the legacy
        # round path runs untouched, bit-identical to prior releases.
        engaged = (
            retry is not None or quorum is not None or self.faults.has_stochastic
        )
        self.resilience: "ResilienceState | None" = (
            ResilienceState() if engaged else None
        )
        self.tracer = tracer
        if tracer is not None and self.resilience is not None:
            # Read through self.resilience on every tick: a checkpoint
            # restore replaces the SimClock object, and a captured
            # reference would keep reporting the dead clock.
            tracer.bind_clock(lambda: self.resilience.clock.now)
        self._active = ActivePartyNode(vfl.parties[0], self.transport, self.faults)
        self._passives = [
            PassivePartyNode(party, self.transport, self.faults)
            for party in vfl.parties[1:]
        ]

    @staticmethod
    def _check_quorum(quorum: "int | float | None", n_parties: int) -> "int | float | None":
        if quorum is None:
            return None
        if isinstance(quorum, bool):
            raise ValidationError(f"quorum {quorum!r} is not a party count or fraction")
        if isinstance(quorum, int):
            if not 1 <= quorum <= n_parties:
                raise ValidationError(
                    f"integer quorum must name 1..{n_parties} surviving "
                    f"parties, got {quorum}"
                )
            return quorum
        if isinstance(quorum, float):
            if not 0.0 < quorum <= 1.0:
                raise ValidationError(
                    f"fractional quorum must lie in (0, 1], got {quorum}"
                )
            return quorum
        raise ValidationError(
            f"quorum must be an int party count, a float fraction, or None, "
            f"got {type(quorum).__name__}"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ledger(self) -> CommLedger:
        """The communication ledger every protocol message is charged to."""
        return self.transport.ledger

    @property
    def n_parties(self) -> int:
        """Parties participating in every round."""
        return len(self.vfl.parties)

    def estimate_predict_bytes(
        self, n_samples: int, *, max_batch: "int | None" = None
    ) -> int:
        """Exact wire bytes an undefended ``n_samples`` accumulation costs.

        Mirrors the serving layer's batching: with ``max_batch`` set,
        every protocol round is padded to exactly ``max_batch`` rows
        (``ceil(n/max_batch)`` rounds); without it, one round serves
        everything. Computed purely from
        :func:`~repro.federation.message.encoded_size` — no protocol is
        executed — and regression-tested to equal the measured ledger
        bytes, which is what lets communication budgets be planned as
        fractions of a full run. Assumes the cache-free request path
        (every row computed, none replayed).
        """
        n = int(n_samples)
        if n <= 0:
            raise ValidationError(f"n_samples must be positive, got {n}")
        if max_batch is None:
            n_rounds, rows = 1, n
        else:
            n_rounds, rows = math.ceil(n / int(max_batch)), int(max_batch)
        total = 0
        for node in self._passives:
            request = encoded_size(FEATURE_REQUEST, np.int64, (rows,))
            reply = encoded_size(
                FEATURE_BLOCK, np.float64, (rows, node.party.n_features)
            )
            total += n_rounds * (request + reply)
        return total

    # ------------------------------------------------------------------
    # Protocol rounds
    # ------------------------------------------------------------------
    def _exchange(self, kind: str, rows: np.ndarray) -> dict[int, np.ndarray]:
        """One protocol round over this deployment (see :func:`_exchange_round`)."""
        if self.tracer is None:
            return self._exchange_inner(kind, rows)
        with self.tracer.span(
            "federation.round", message=kind, rows=int(rows.size)
        ) as span:
            blocks = self._exchange_inner(kind, rows)
            span["parties"] = len(blocks)
            return blocks

    def _exchange_inner(self, kind: str, rows: np.ndarray) -> dict[int, np.ndarray]:
        if self.resilience is not None:
            return self._resilient_round(kind, rows)
        return _exchange_round(
            self.transport, self.scheduler, self._active, self._passives, rows, kind
        )

    def _resilient_round(self, kind: str, rows: np.ndarray) -> dict[int, np.ndarray]:
        """One request/reply exchange under retries, timeouts, and quorum.

        Structured as retry *waves*: every still-pending party gets a
        fresh (metered) request, the scheduler runs the responders with
        failures returned as values, the wave's replies are delivered
        and drained in party order, and the simulated clock pays the
        slowest surviving reply plus any backoff. Every stochastic
        decision is a pure chaos function of ``(party, round, attempt)``,
        so the whole storm is bit-identical across schedulers and
        resumable mid-storm.
        """
        transport = self.transport
        policy = self.retry_policy
        resilience = self.resilience
        round_id = transport.ledger.begin_round()
        node_by_id = {node.party_id: node for node in self._passives}
        blocks: dict[int, np.ndarray] = {}
        last_failure: dict[int, str] = {}
        crashed: set[int] = set()
        pending = [node.party_id for node in self._passives]
        completed = False
        try:
            for attempt in range(policy.max_attempts):
                if not pending:
                    break
                if attempt > 0:
                    transport.ledger.record_retries(len(pending))
                    if self.tracer is not None:
                        self.tracer.event(
                            "resilience.retry_wave",
                            round=int(round_id),
                            attempt=attempt,
                            pending=[int(p) for p in pending],
                        )
                    resilience.clock.advance(
                        max(policy.backoff(p, round_id, attempt) for p in pending)
                    )
                for party in pending:
                    transport.send(
                        self._active.make_request(party, rows, round_id, kind=kind)
                    )
                replies = self.scheduler.run_round(
                    [_guarded_respond(node_by_id[p], attempt) for p in pending]
                )
                wave_latency = 0.0
                still_pending: list[int] = []
                delivered: list[int] = []
                for party, reply in zip(pending, replies):
                    outcome = self.faults.outcome(party, round_id, attempt)
                    if isinstance(reply, PartyUnavailableError):
                        last_failure[party] = outcome.kind
                        if outcome.permanent:
                            crashed.add(party)
                        else:
                            still_pending.append(party)
                        continue
                    if (
                        outcome.kind == "timeout"
                        and policy.timeout is not None
                        and outcome.latency > policy.timeout
                    ):
                        # The receiver closes the connection at the
                        # deadline: the request bytes are spent, the
                        # reply never crosses the wire, and the clock
                        # pays only up to the timeout.
                        transport.ledger.record_timeouts(1)
                        wave_latency = max(wave_latency, policy.timeout)
                        last_failure[party] = "timeout"
                        still_pending.append(party)
                        continue
                    wave_latency = max(wave_latency, outcome.latency)
                    if outcome.kind == "corrupt":
                        data = bytearray(reply.encode())
                        position = outcome.token % len(data)
                        bit = (outcome.token >> 32) % 8
                        data[position] ^= 1 << bit
                        transport.send_raw(
                            bytes(data),
                            sender=party,
                            receiver=self._active.party_id,
                            kind=reply.kind,
                            round_id=round_id,
                        )
                    else:
                        transport.send(reply)
                    delivered.append(party)
                resilience.clock.advance(wave_latency)
                # Drain this wave's frames in delivery (party) order; a
                # decode failure is attributable by position because the
                # inbox preserves it.
                for party in delivered:
                    try:
                        message = transport.receive(self._active.party_id)
                    except WireFormatError:
                        last_failure[party] = "corrupt"
                        still_pending.append(party)
                        continue
                    if message.kind not in (FEATURE_BLOCK, TRAIN_BLOCK):
                        raise ProtocolError(
                            f"active party expected a block reply, got "
                            f"{message.kind!r} from party {message.sender}"
                        )
                    if message.round_id != round_id:
                        raise ProtocolError(
                            f"active party received a round-{message.round_id} "
                            f"block from party {message.sender} while "
                            f"collecting round {round_id}; a previous round "
                            "leaked state"
                        )
                    blocks[int(message.sender)] = message.payload
                    resilience.cache.put(int(message.sender), message.payload)
                pending = sorted(still_pending)
            missing = sorted(crashed | set(pending))
            if missing:
                blocks = self._degrade_round(
                    kind, rows, round_id, blocks, missing, last_failure
                )
            completed = True
            return blocks
        finally:
            if not completed:
                transport.clear()

    def _degrade_round(
        self,
        kind: str,
        rows: np.ndarray,
        round_id: int,
        blocks: dict[int, np.ndarray],
        missing: list[int],
        last_failure: dict[int, str],
    ) -> dict[int, np.ndarray]:
        """Impute the missing parties' blocks, or fail the round.

        Without a quorum policy this is today's fail-fast behaviour
        (timeout-only losses surface as the more specific
        :class:`PartyTimeoutError`). With one, a surviving coalition at
        or above quorum proceeds on imputed blocks and the round is
        recorded in the availability log.
        """
        attempts = self.retry_policy.max_attempts
        if self.quorum is None:
            names = ", ".join(str(p) for p in missing)
            if all(last_failure.get(p) == "timeout" for p in missing):
                raise PartyTimeoutError(
                    f"round {round_id} lost party(ies) {names}: every reply "
                    f"exceeded the {self.retry_policy.timeout}s timeout across "
                    f"{attempts} attempt(s)"
                )
            raise PartyUnavailableError(
                f"round {round_id} lost party(ies) {names} after {attempts} "
                f"attempt(s); no quorum policy allows degraded service"
            )
        if isinstance(self.quorum, int):
            required = self.quorum
        else:
            required = math.ceil(self.quorum * self.n_parties - 1e-9)
        live = self.n_parties - len(missing)
        if live < required:
            raise QuorumLostError(
                f"round {round_id} has {live} of {self.n_parties} parties "
                f"alive, below the quorum of {required}; degraded service is "
                "not possible"
            )
        strategy = DEGRADATIONS.get(self.degradation)
        for party in missing:
            node = self._passive_by_id(party)
            blocks[party] = strategy(
                party, (rows.size, node.party.n_features), self.resilience.cache
            )
        self.resilience.availability.append(
            {
                "round": int(round_id),
                "missing": [int(p) for p in missing],
                "attempts": int(attempts),
                "strategy": self.degradation,
            }
        )
        if self.tracer is not None:
            self.tracer.event(
                "federation.degraded",
                round=int(round_id),
                missing=[int(p) for p in missing],
                strategy=self.degradation,
            )
        return blocks

    def _passive_by_id(self, party_id: int) -> PassivePartyNode:
        for node in self._passives:
            if node.party_id == party_id:
                return node
        raise ProtocolError(f"no passive node with party id {party_id}")

    def availability_report(self) -> dict:
        """JSON-ready summary of degraded rounds and retry/timeout costs.

        Empty when the resilient exchange never engaged — the report's
        presence is itself the signal that resilience knobs were active.
        """
        if self.resilience is None:
            return {}
        return {
            "rounds_total": self.ledger.rounds,
            "rounds_degraded": len(self.resilience.availability),
            "degraded": [dict(entry) for entry in self.resilience.availability],
            "retries": self.ledger.retries,
            "timeouts": self.ledger.timeouts,
            "sim_seconds": self.resilience.clock.now,
        }

    def predict(self, sample_indices: np.ndarray) -> np.ndarray:
        """Confidence scores via one protocol round, ``(N, C)``.

        Byte-identical to :meth:`VerticalFLModel.predict` for the same
        indices (regression-tested per model kind and scheduler), with
        every passive block metered on the way in.
        """
        indices = np.asarray(sample_indices, dtype=np.int64).ravel()
        if indices.size == 0:
            raise ProtocolError("prediction request with no sample ids")
        blocks = self._exchange(FEATURE_REQUEST, indices)
        joint = self._active.assemble(
            indices, blocks, self.vfl.parties, self.vfl.partition.n_features
        )
        self.vfl.prediction_log_.extend(int(i) for i in indices)
        return self.vfl.model.predict_proba(joint)

    def predict_all(self) -> np.ndarray:
        """Serve every sample of the aligned prediction dataset."""
        return self.predict(np.arange(self.vfl.n_samples))

    def close(self) -> None:
        """Release scheduler workers (idempotent; safe to skip for GC)."""
        self.scheduler.close()

    def __repr__(self) -> str:
        spans = 0 if self.tracer is None else self.tracer.records_emitted
        degraded = (
            0 if self.resilience is None else len(self.resilience.availability)
        )
        return (
            f"FederationRuntime(parties={self.n_parties}, "
            f"scheduler={self.scheduler.name!r}, rounds={self.ledger.rounds}, "
            f"degraded={degraded}, spans={spans})"
        )


def train_vertical_runtime(
    model: BaseClassifier,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_pred: np.ndarray,
    y_pred: np.ndarray,
    partition: FeaturePartition,
    *,
    scheduler: "str | RoundScheduler" = "sequential",
    comm_budget: "int | None" = None,
    message_budget: "int | None" = None,
    faults: "FaultPlan | None" = None,
    retry: "RetryPolicy | int | dict | None" = None,
    quorum: "int | float | None" = None,
    degradation: str = "zero_fill",
    tracer=None,
) -> FederationRuntime:
    """Train through a metered protocol round and deploy the runtime.

    The message-passing twin of
    :func:`~repro.federated.model.train_vertical_model`: every passive
    party ships its *training* block to the active party as wire
    messages (one ``train_request``/``train_block`` exchange, charged to
    the ledger the returned runtime keeps using), the fit itself runs
    centrally on the assembled matrix — the paper's evaluation protocol
    assumes a perfectly protected training computation, so what the
    simulation makes explicit is the data movement, not the optimizer.
    The fitted model is bit-identical to the in-process path: the
    assembled matrix carries the exact float64 bytes of ``X_train``.

    The resilience knobs (``retry``/``quorum``/``degradation``) apply to
    the *deployed* runtime's prediction rounds. The single training
    exchange itself is deliberately fail-fast: a model fitted on an
    imputed training block would silently differ from the central
    oracle, so a party lost during training aborts rather than degrades.
    """
    X_train = np.asarray(X_train, dtype=np.float64)
    y_train = np.asarray(y_train, dtype=np.int64)
    train_parties = build_parties(X_train, y_train, partition)
    transport = Transport(CommLedger(comm_budget, message_budget=message_budget))
    round_scheduler = make_scheduler(scheduler)
    fault_plan = faults if faults is not None else FaultPlan()
    fault_plan.validate_parties(len(train_parties))

    active = ActivePartyNode(train_parties[0], transport, fault_plan)
    passives = [
        PassivePartyNode(party, transport, fault_plan) for party in train_parties[1:]
    ]
    rows = np.arange(X_train.shape[0])
    blocks = _exchange_round(
        transport, round_scheduler, active, passives, rows, TRAIN_REQUEST
    )
    joint = active.assemble(rows, blocks, train_parties, partition.n_features)
    model.fit(joint, y_train)

    vfl = VerticalFLModel(model, partition, build_parties(X_pred, y_pred, partition))
    return FederationRuntime(
        vfl,
        scheduler=round_scheduler,
        faults=fault_plan,
        retry=retry,
        quorum=quorum,
        degradation=degradation,
        tracer=tracer,
        _transport=transport,
    )
