"""The federation runtime: protocol rounds over a metered transport.

Where :class:`~repro.federated.model.VerticalFLModel` collapses the
"simulated secure protocol" into one in-process concatenation, the
runtime executes it as explicit message-passing rounds: the active party
node requests rows, passive party nodes reply with their encoded column
blocks, and the active node assembles and evaluates — every cross-party
value a serialized :class:`~repro.federation.message.Message` charged to
the :class:`~repro.federation.ledger.CommLedger`. The in-process
concatenation survives as the *oracle*: for any scheduler,
:meth:`FederationRuntime.predict` is byte-identical to
:meth:`VerticalFLModel.predict` (the wire codec is lossless for float64
blocks and the assembly scatter is column-for-column the same).

One prediction round = one request/reply exchange serving a whole index
batch; the serving layer maps each of its protocol rounds onto one
runtime round, so ``bytes/round`` is well-defined for any batching.
Training can run as a round too (:func:`train_vertical_runtime`): the
passive training blocks cross the metered wire once and the fit itself
stays central, matching the paper's perfectly-protected training phase.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ProtocolError, ValidationError
from repro.federated.model import VerticalFLModel, build_parties
from repro.federated.partition import FeaturePartition
from repro.federation.faults import FaultPlan
from repro.federation.ledger import CommLedger
from repro.federation.message import encoded_size
from repro.federation.nodes import (
    FEATURE_BLOCK,
    FEATURE_REQUEST,
    TRAIN_REQUEST,
    ActivePartyNode,
    PassivePartyNode,
)
from repro.federation.scheduler import RoundScheduler, make_scheduler
from repro.federation.transport import Transport
from repro.models.base import BaseClassifier

__all__ = ["FederationRuntime", "train_vertical_runtime"]


def _exchange_round(
    transport: Transport,
    scheduler: RoundScheduler,
    active: ActivePartyNode,
    passives: "list[PassivePartyNode]",
    rows: np.ndarray,
    kind: str,
) -> dict[int, np.ndarray]:
    """One request/reply exchange: blocks from every passive party.

    The single definition of a protocol round, shared by prediction and
    training: requests go out in party order, the scheduler runs the
    passive responders (serially or on threads), and replies are sent
    and drained in party order — the deterministic barrier that keeps
    both schedulers bit-identical. On any failure (budget, dropped
    party) the transport is cleared so delivered-but-unconsumed frames
    cannot poison a later round.
    """
    round_id = transport.ledger.begin_round()
    completed = False
    try:
        for node in passives:
            transport.send(
                active.make_request(node.party_id, rows, round_id, kind=kind)
            )
        replies = scheduler.run_round([node.respond for node in passives])
        for reply in replies:
            transport.send(reply)
        blocks = active.collect_blocks(len(passives), round_id)
        completed = True
        return blocks
    finally:
        # Cleanup-on-failure without a broad catch: any exception —
        # budget, dropped party, or a genuine bug — propagates untouched
        # while delivered-but-unconsumed frames are cleared so they
        # cannot poison a later round.
        if not completed:
            transport.clear()


class FederationRuntime:
    """Message-passing façade over one deployed vertical FL model.

    Parameters
    ----------
    vfl:
        The deployment to serve (model + partition + aligned parties).
    scheduler:
        ``"sequential"`` (reference), ``"threaded"`` (parallel party
        execution behind a deterministic round barrier), or a
        :class:`~repro.federation.scheduler.RoundScheduler` instance.
    comm_budget:
        Byte budget for the underlying :class:`CommLedger`; an
        over-budget send raises
        :class:`~repro.exceptions.CommBudgetExceededError`.
    message_budget:
        Optional cap on message count.
    faults:
        A :class:`~repro.federation.faults.FaultPlan` (or ``None``) —
        dropped parties and straggler delays, validated against the
        deployment's party count.
    """

    def __init__(
        self,
        vfl: VerticalFLModel,
        *,
        scheduler: "str | RoundScheduler" = "sequential",
        comm_budget: "int | None" = None,
        message_budget: "int | None" = None,
        faults: "FaultPlan | None" = None,
        _transport: "Transport | None" = None,
    ) -> None:
        self.vfl = vfl
        self.scheduler = make_scheduler(scheduler)
        if _transport is not None:
            if comm_budget is not None or message_budget is not None:
                raise ValidationError(
                    "pass budgets through the existing transport's ledger, "
                    "not alongside it"
                )
            self.transport = _transport
        else:
            self.transport = Transport(
                CommLedger(comm_budget, message_budget=message_budget)
            )
        self.faults = faults if faults is not None else FaultPlan()
        self.faults.validate_parties(len(vfl.parties))
        self._active = ActivePartyNode(vfl.parties[0], self.transport, self.faults)
        self._passives = [
            PassivePartyNode(party, self.transport, self.faults)
            for party in vfl.parties[1:]
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ledger(self) -> CommLedger:
        """The communication ledger every protocol message is charged to."""
        return self.transport.ledger

    @property
    def n_parties(self) -> int:
        """Parties participating in every round."""
        return len(self.vfl.parties)

    def estimate_predict_bytes(
        self, n_samples: int, *, max_batch: "int | None" = None
    ) -> int:
        """Exact wire bytes an undefended ``n_samples`` accumulation costs.

        Mirrors the serving layer's batching: with ``max_batch`` set,
        every protocol round is padded to exactly ``max_batch`` rows
        (``ceil(n/max_batch)`` rounds); without it, one round serves
        everything. Computed purely from
        :func:`~repro.federation.message.encoded_size` — no protocol is
        executed — and regression-tested to equal the measured ledger
        bytes, which is what lets communication budgets be planned as
        fractions of a full run. Assumes the cache-free request path
        (every row computed, none replayed).
        """
        n = int(n_samples)
        if n <= 0:
            raise ValidationError(f"n_samples must be positive, got {n}")
        if max_batch is None:
            n_rounds, rows = 1, n
        else:
            n_rounds, rows = math.ceil(n / int(max_batch)), int(max_batch)
        total = 0
        for node in self._passives:
            request = encoded_size(FEATURE_REQUEST, np.int64, (rows,))
            reply = encoded_size(
                FEATURE_BLOCK, np.float64, (rows, node.party.n_features)
            )
            total += n_rounds * (request + reply)
        return total

    # ------------------------------------------------------------------
    # Protocol rounds
    # ------------------------------------------------------------------
    def _exchange(self, kind: str, rows: np.ndarray) -> dict[int, np.ndarray]:
        """One protocol round over this deployment (see :func:`_exchange_round`)."""
        return _exchange_round(
            self.transport, self.scheduler, self._active, self._passives, rows, kind
        )

    def predict(self, sample_indices: np.ndarray) -> np.ndarray:
        """Confidence scores via one protocol round, ``(N, C)``.

        Byte-identical to :meth:`VerticalFLModel.predict` for the same
        indices (regression-tested per model kind and scheduler), with
        every passive block metered on the way in.
        """
        indices = np.asarray(sample_indices, dtype=np.int64).ravel()
        if indices.size == 0:
            raise ProtocolError("prediction request with no sample ids")
        blocks = self._exchange(FEATURE_REQUEST, indices)
        joint = self._active.assemble(
            indices, blocks, self.vfl.parties, self.vfl.partition.n_features
        )
        self.vfl.prediction_log_.extend(int(i) for i in indices)
        return self.vfl.model.predict_proba(joint)

    def predict_all(self) -> np.ndarray:
        """Serve every sample of the aligned prediction dataset."""
        return self.predict(np.arange(self.vfl.n_samples))

    def close(self) -> None:
        """Release scheduler workers (idempotent; safe to skip for GC)."""
        self.scheduler.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"FederationRuntime(parties={self.n_parties}, "
            f"scheduler={self.scheduler.name!r}, ledger={self.ledger!r})"
        )


def train_vertical_runtime(
    model: BaseClassifier,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_pred: np.ndarray,
    y_pred: np.ndarray,
    partition: FeaturePartition,
    *,
    scheduler: "str | RoundScheduler" = "sequential",
    comm_budget: "int | None" = None,
    message_budget: "int | None" = None,
    faults: "FaultPlan | None" = None,
) -> FederationRuntime:
    """Train through a metered protocol round and deploy the runtime.

    The message-passing twin of
    :func:`~repro.federated.model.train_vertical_model`: every passive
    party ships its *training* block to the active party as wire
    messages (one ``train_request``/``train_block`` exchange, charged to
    the ledger the returned runtime keeps using), the fit itself runs
    centrally on the assembled matrix — the paper's evaluation protocol
    assumes a perfectly protected training computation, so what the
    simulation makes explicit is the data movement, not the optimizer.
    The fitted model is bit-identical to the in-process path: the
    assembled matrix carries the exact float64 bytes of ``X_train``.
    """
    X_train = np.asarray(X_train, dtype=np.float64)
    y_train = np.asarray(y_train, dtype=np.int64)
    train_parties = build_parties(X_train, y_train, partition)
    transport = Transport(CommLedger(comm_budget, message_budget=message_budget))
    round_scheduler = make_scheduler(scheduler)
    fault_plan = faults if faults is not None else FaultPlan()
    fault_plan.validate_parties(len(train_parties))

    active = ActivePartyNode(train_parties[0], transport, fault_plan)
    passives = [
        PassivePartyNode(party, transport, fault_plan) for party in train_parties[1:]
    ]
    rows = np.arange(X_train.shape[0])
    blocks = _exchange_round(
        transport, round_scheduler, active, passives, rows, TRAIN_REQUEST
    )
    joint = active.assemble(rows, blocks, train_parties, partition.n_features)
    model.fit(joint, y_train)

    vfl = VerticalFLModel(model, partition, build_parties(X_pred, y_pred, partition))
    return FederationRuntime(
        vfl, scheduler=round_scheduler, faults=fault_plan, _transport=transport
    )
