"""Communication ledger: metering and budgets for the protocol boundary.

The :class:`~repro.serving.ledger.QueryLedger` meters what the adversary
*learns* (released confidence rows); :class:`CommLedger` meters what the
protocol *moves* — every encoded :class:`~repro.federation.message.Message`
that crosses a party edge, in the spirit of secure-aggregation cost
models where per-round bytes are the deployment constraint. Counts are
kept per directed edge ``(sender, receiver)`` plus a round counter, so a
report can state bytes/round and messages/round for any topology.

Budgets are optional and atomic per message: a send that would cross the
byte or message budget raises
:class:`~repro.exceptions.CommBudgetExceededError` *without charging*,
and whatever already crossed the wire stays counted — a protocol round
aborted halfway has genuinely spent its partial traffic.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import CommBudgetExceededError, ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["CommLedger"]


def _check_budget(value: "int | None", name: str) -> "int | None":
    if value is None:
        return None
    return check_positive_int(value, name=name)


class CommLedger:
    """Per-edge message/byte accounting with optional global budgets.

    Parameters
    ----------
    byte_budget:
        Global cap on total bytes moved across every edge; ``None``
        (the default) meters without limiting.
    message_budget:
        Global cap on the number of messages, for protocols whose cost
        is dominated by message latency rather than volume.
    """

    def __init__(
        self,
        byte_budget: "int | None" = None,
        *,
        message_budget: "int | None" = None,
    ) -> None:
        self.byte_budget = _check_budget(byte_budget, "byte_budget")
        self.message_budget = _check_budget(message_budget, "message_budget")
        self._edges: dict[tuple[int, int], dict[str, int]] = {}
        self._rounds = 0
        self._retries = 0
        self._timeouts = 0

    # ------------------------------------------------------------------
    # Metering
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Bytes moved across every edge (encoded frame sizes)."""
        return sum(edge["bytes"] for edge in self._edges.values())

    @property
    def total_messages(self) -> int:
        """Messages moved across every edge."""
        return sum(edge["messages"] for edge in self._edges.values())

    @property
    def rounds(self) -> int:
        """Protocol rounds started so far."""
        return self._rounds

    @property
    def retries(self) -> int:
        """Retry attempts issued by the resilient exchange.

        Each retried party per wave counts once; the retried request
        frames themselves are charged like any other traffic, so retry
        cost shows up in *both* bytes and this counter.
        """
        return self._retries

    @property
    def timeouts(self) -> int:
        """Reply attempts discarded for exceeding the per-attempt timeout."""
        return self._timeouts

    def edge(self, sender: int, receiver: int) -> dict[str, int]:
        """``{"messages": n, "bytes": b}`` for one directed edge."""
        stats = self._edges.get((int(sender), int(receiver)))
        return dict(stats) if stats else {"messages": 0, "bytes": 0}

    def remaining_bytes(self) -> "int | None":
        """Bytes left before the byte budget binds; ``None`` if unlimited."""
        if self.byte_budget is None:
            return None
        return max(0, self.byte_budget - self.total_bytes)

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def begin_round(self) -> int:
        """Open a new protocol round; returns its id (0-based)."""
        round_id = self._rounds
        self._rounds += 1
        return round_id

    def record_retries(self, n: int) -> None:
        """Count ``n`` retry attempts (one per retried party per wave)."""
        if n < 1:
            raise ValidationError(f"retry count must be >= 1, got {n}")
        self._retries += int(n)

    def record_timeouts(self, n: int) -> None:
        """Count ``n`` timed-out reply attempts."""
        if n < 1:
            raise ValidationError(f"timeout count must be >= 1, got {n}")
        self._timeouts += int(n)

    def charge(self, sender: int, receiver: int, nbytes: int) -> None:
        """Charge one ``nbytes``-sized message to the edge, or raise.

        Atomic: either the message fits in both budgets and is recorded,
        or :class:`CommBudgetExceededError` is raised with the ledger
        untouched (earlier charges stand — those bytes already moved).
        """
        if nbytes <= 0:
            raise ValidationError(f"message size must be positive, got {nbytes}")
        if self.byte_budget is not None and self.total_bytes + nbytes > self.byte_budget:
            raise CommBudgetExceededError(
                f"communication budget exceeded on edge {sender}->{receiver}: "
                f"message of {nbytes} bytes with "
                f"{self.byte_budget - self.total_bytes} of {self.byte_budget} "
                "budget bytes remaining"
            )
        if self.message_budget is not None and self.total_messages + 1 > self.message_budget:
            raise CommBudgetExceededError(
                f"communication budget exceeded on edge {sender}->{receiver}: "
                f"message budget of {self.message_budget} messages is spent"
            )
        stats = self._edges.setdefault(
            (int(sender), int(receiver)), {"messages": 0, "bytes": 0}
        )
        stats["messages"] += 1
        stats["bytes"] += int(nbytes)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot (what :class:`ScenarioReport.comm_cost` carries)."""
        return {
            "byte_budget": self.byte_budget,
            "message_budget": self.message_budget,
            "bytes": self.total_bytes,
            "messages": self.total_messages,
            "rounds": self.rounds,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "edges": {
                f"{sender}->{receiver}": dict(stats)
                for (sender, receiver), stats in sorted(self._edges.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"CommLedger(bytes={self.total_bytes}, messages={self.total_messages}, "
            f"rounds={self.rounds}, byte_budget={self.byte_budget})"
        )
