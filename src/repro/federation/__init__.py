"""Federation runtime: the multi-party protocol as an explicit subsystem.

The paper's threat model (§III) is defined by *what crosses party
boundaries*: the adversary learns only protocol messages and the final
confidence vector. :mod:`repro.federated` holds the data side of that
story (parties, partitions, the in-process protocol simulation); this
package holds the *runtime* side — the protocol as observable
message-passing:

- :mod:`~repro.federation.message` — the versioned wire codec; every
  cross-party value is a serialized :class:`Message`;
- :mod:`~repro.federation.transport` — metered point-to-point delivery
  with an audit log of frame sizes;
- :mod:`~repro.federation.ledger` — :class:`CommLedger`: per-edge
  message/byte accounting, rounds, optional budgets raising
  :class:`~repro.exceptions.CommBudgetExceededError`;
- :mod:`~repro.federation.nodes` — party actors executing train/predict
  as request/reply rounds;
- :mod:`~repro.federation.scheduler` — sequential (reference) and
  threaded (deterministic-barrier) round execution, bit-identical;
- :mod:`~repro.federation.faults` — dropped parties, stragglers, and
  the seeded stochastic storm kinds (``flaky``/``crash_after``/
  ``corrupt``/``timeout``) as injectable round behaviour;
- :mod:`~repro.federation.runtime` — :class:`FederationRuntime`, the
  façade the serving layer drives: ``predict`` is byte-identical to
  :meth:`~repro.federated.model.VerticalFLModel.predict` while every
  transferred float lands in the ledger; with ``retry``/``quorum``
  knobs it runs the *resilient exchange* — retry waves on a simulated
  clock, metered timeouts, and quorum-degraded rounds with imputed
  blocks (see :mod:`repro.resilience`);
- :mod:`~repro.federation.topology` — :class:`TopologyConfig`, the
  declarative N-party/colluder/partition-strategy/fault knob consumed by
  :class:`~repro.api.ScenarioConfig`.

::

    from repro.federation import FederationRuntime

    runtime = FederationRuntime(vfl, scheduler="threaded", comm_budget=2**20)
    v = runtime.predict(sample_ids)            # == vfl.predict, but metered
    print(runtime.ledger.as_dict()["bytes"])   # exact wire traffic
"""

from repro.exceptions import (
    CommBudgetExceededError,
    PartyTimeoutError,
    PartyUnavailableError,
    QuorumLostError,
    WireFormatError,
)
from repro.federation.faults import FAULT_KINDS, FaultPlan
from repro.federation.ledger import CommLedger
from repro.federation.message import (
    Message,
    WIRE_VERSION,
    decode_message,
    encode_message,
    encoded_size,
)
from repro.federation.nodes import ActivePartyNode, PartyNode, PassivePartyNode
from repro.federation.runtime import FederationRuntime, train_vertical_runtime
from repro.federation.scheduler import (
    SCHEDULERS,
    RoundScheduler,
    SequentialScheduler,
    ThreadedScheduler,
    make_scheduler,
)
from repro.federation.topology import TopologyConfig
from repro.federation.transport import DeliveryRecord, Transport

# Register this layer's checkpoint codec (comm ledger) on import.
from repro.federation import state as _state  # noqa: F401

__all__ = [
    "Message",
    "WIRE_VERSION",
    "encode_message",
    "decode_message",
    "encoded_size",
    "Transport",
    "DeliveryRecord",
    "CommLedger",
    "CommBudgetExceededError",
    "WireFormatError",
    "PartyUnavailableError",
    "PartyTimeoutError",
    "QuorumLostError",
    "PartyNode",
    "ActivePartyNode",
    "PassivePartyNode",
    "RoundScheduler",
    "SequentialScheduler",
    "ThreadedScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "FAULT_KINDS",
    "FaultPlan",
    "FederationRuntime",
    "train_vertical_runtime",
    "TopologyConfig",
]
