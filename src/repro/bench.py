"""Model-kernel benchmark harness behind the ``repro-bench`` CLI.

Times the vectorized hot-path kernels introduced by the perf PR against
their retained seed references — the per-sample tree walk
(:meth:`~repro.models.tree.DecisionTreeClassifier._predict_slow`), the
per-feature split scan (``_best_split_slow``), the per-tree vote loop
(``_predict_proba_slow``), the per-node PRA BFS (``_restrict_slow``), and
GRNA's composed-graph loss (``_prediction_loss_reference``) — plus the
end-to-end :class:`~repro.serving.PredictionService` throughput with seed
vs vectorized kernels. Every reference is bit-identical to its fast
kernel (regression-tested), so a bench run measures *speed only*.

Each run writes a ``BENCH_<label>.json`` summary: per-kernel wall time,
speedup over the in-run seed reference, and machine info. The checked-in
files form the repo's perf trajectory:

- ``BENCH_seed.json`` — the anchor: seed-kernel timings (``--seed-baseline``);
- ``BENCH_vectorized.json`` — the first post-optimization run (``make bench``);
- ``BENCH_smoke.json`` — smoke-scale reference used as the CI regression
  gate: ``repro-bench --smoke`` fails when any kernel's live speedup
  drops more than 1.5× below the recorded one.

Usage::

    PYTHONPATH=src python -m repro.bench                # full scale
    PYTHONPATH=src python -m repro.bench --smoke        # CI gate
    repro-bench --seed-baseline                         # regenerate anchor
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import dataclass

import numpy as np

#: Kernel workload sizes per bench scale; "default" is the largest scale
#: and the one headline speedups are quoted at.
BENCH_SCALES: dict[str, dict] = {
    "smoke": dict(
        fit_samples=400,
        fit_features=12,
        fit_depth=5,
        predict_samples=6000,
        rf_trees=20,
        rf_depth=3,
        rf_fit_samples=400,
        grna_samples=128,
        grna_hidden=(64,),
        grna_epochs=2,
        grna_batch=32,
        pra_samples=1000,
        pra_depth=5,
        service_queries=1000,
    ),
    "default": dict(
        fit_samples=4000,
        fit_features=24,
        fit_depth=8,
        predict_samples=20000,
        rf_trees=100,
        rf_depth=3,
        rf_fit_samples=1000,
        grna_samples=384,
        grna_hidden=(600, 200, 100),
        grna_epochs=3,
        grna_batch=64,
        pra_samples=4000,
        pra_depth=6,
        service_queries=1500,
    ),
}

#: Default regression-gate slack: live speedup may be at most this factor
#: below the checked-in reference speedup before the gate fails.
GATE_MARGIN = 1.5


@dataclass
class KernelResult:
    """One benched kernel: fast seconds, seed-reference seconds, metadata."""

    seconds: float
    baseline_seconds: "float | None"
    meta: dict

    @property
    def speedup(self) -> "float | None":
        if self.baseline_seconds is None or self.seconds <= 0:
            return None
        return self.baseline_seconds / self.seconds

    def to_json(self) -> dict:
        return {
            "seconds": self.seconds,
            "baseline_seconds": self.baseline_seconds,
            "speedup": self.speedup,
            "meta": self.meta,
        }


def timed(fn, repeats: int) -> float:
    """Best-of-N wall-clock seconds (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def bench_dt_fit(sizes: dict, repeats: int) -> KernelResult:
    from repro.models.tree import DecisionTreeClassifier

    rng = np.random.default_rng(0)
    X = rng.random((sizes["fit_samples"], sizes["fit_features"]))
    y = rng.integers(0, 2, size=sizes["fit_samples"])

    def fit(fast: bool):
        tree = DecisionTreeClassifier(max_depth=sizes["fit_depth"], rng=0)
        tree._fast_split = fast
        tree.fit(X, y)

    return KernelResult(
        seconds=timed(lambda: fit(True), repeats),
        baseline_seconds=timed(lambda: fit(False), repeats),
        meta={k: sizes[k] for k in ("fit_samples", "fit_features", "fit_depth")},
    )


def bench_dt_predict(sizes: dict, repeats: int) -> KernelResult:
    from repro.models.tree import DecisionTreeClassifier

    rng = np.random.default_rng(0)
    X = rng.random((sizes["fit_samples"], sizes["fit_features"]))
    y = rng.integers(0, 2, size=sizes["fit_samples"])
    tree = DecisionTreeClassifier(max_depth=sizes["fit_depth"], rng=0).fit(X, y)
    Xq = rng.random((sizes["predict_samples"], sizes["fit_features"]))
    tree.predict(Xq)  # warm the flat-structure cache
    return KernelResult(
        seconds=timed(lambda: tree.predict(Xq), repeats),
        baseline_seconds=timed(lambda: tree._predict_slow(Xq), repeats),
        meta={"predict_samples": sizes["predict_samples"], "depth": sizes["fit_depth"]},
    )


def bench_rf_predict_proba(sizes: dict, repeats: int) -> KernelResult:
    from repro.models.forest import RandomForestClassifier

    rng = np.random.default_rng(0)
    X = rng.random((sizes["rf_fit_samples"], sizes["fit_features"]))
    y = rng.integers(0, 2, size=sizes["rf_fit_samples"])
    forest = RandomForestClassifier(
        n_trees=sizes["rf_trees"], max_depth=sizes["rf_depth"], rng=0
    ).fit(X, y)
    Xq = rng.random((sizes["predict_samples"], sizes["fit_features"]))
    forest.predict_proba(Xq)  # warm the decision-table cache
    return KernelResult(
        seconds=timed(lambda: forest.predict_proba(Xq), repeats),
        baseline_seconds=timed(lambda: forest._predict_proba_slow(Xq), repeats),
        meta={
            "predict_samples": sizes["predict_samples"],
            "n_trees": sizes["rf_trees"],
            "depth": sizes["rf_depth"],
        },
    )


def bench_pra_restrict(sizes: dict, repeats: int) -> KernelResult:
    from repro.attacks.pra import PathRestrictionAttack
    from repro.federated.partition import FeaturePartition
    from repro.models.tree import DecisionTreeClassifier

    rng = np.random.default_rng(0)
    d = sizes["fit_features"]
    X = rng.random((sizes["fit_samples"], d))
    y = rng.integers(0, 2, size=sizes["fit_samples"])
    tree = DecisionTreeClassifier(max_depth=sizes["pra_depth"], rng=0).fit(X, y)
    view = FeaturePartition.adversary_target(d, 0.4, rng=0).adversary_view()
    attack = PathRestrictionAttack(tree.tree_structure(), view)
    Xq = rng.random((sizes["pra_samples"], d))
    labels = tree.predict(Xq)
    X_adv = Xq[:, view.adversary_indices]

    def slow():
        for i in range(X_adv.shape[0]):
            attack._restrict_slow(X_adv[i], int(labels[i]))

    return KernelResult(
        seconds=timed(lambda: attack.restrict_batch(X_adv, labels), repeats),
        baseline_seconds=timed(slow, repeats),
        meta={"pra_samples": sizes["pra_samples"], "depth": sizes["pra_depth"]},
    )


def _grna_setup(sizes: dict):
    from repro.attacks.grna import GenerativeRegressionNetwork
    from repro.datasets import load_dataset
    from repro.federated import FeaturePartition, train_vertical_model
    from repro.models.mlp import MLPClassifier

    n = 2 * sizes["grna_samples"]
    dataset = load_dataset("bank", n_samples=n, rng=0)
    half = n // 2
    partition = FeaturePartition.adversary_target(dataset.n_features, 0.4, rng=0)
    model = MLPClassifier(hidden_sizes=(32,), epochs=2, rng=0)
    vfl = train_vertical_model(
        model,
        dataset.X[:half],
        dataset.y[:half],
        dataset.X[half:],
        dataset.y[half:],
        partition,
    )
    view = partition.adversary_view()
    X_adv = vfl.adversary_features()[: sizes["grna_samples"]]
    V = vfl.predict(np.arange(sizes["grna_samples"]))

    def epoch_time(fast: bool) -> float:
        from repro.nn.optim import Adam

        attack = GenerativeRegressionNetwork(
            vfl.model,
            view,
            hidden_sizes=sizes["grna_hidden"],
            epochs=sizes["grna_epochs"],
            batch_size=sizes["grna_batch"],
            rng=7,
        )
        # The seed column runs the full retained reference: composed-graph
        # loss AND the allocating optimizer step.
        attack._fast_loss = fast
        previous_step = Adam._fast_step
        Adam._fast_step = fast
        try:
            start = time.perf_counter()
            attack.fit(X_adv, V)
            return (time.perf_counter() - start) / sizes["grna_epochs"]
        finally:
            Adam._fast_step = previous_step

    return epoch_time


def bench_grna_epoch(sizes: dict, repeats: int) -> KernelResult:
    epoch_time = _grna_setup(sizes)
    return KernelResult(
        seconds=min(epoch_time(True) for _ in range(repeats)),
        baseline_seconds=min(epoch_time(False) for _ in range(repeats)),
        meta={
            "grna_samples": sizes["grna_samples"],
            "hidden": list(sizes["grna_hidden"]),
            "batch_size": sizes["grna_batch"],
        },
    )


def bench_service_throughput(sizes: dict, repeats: int) -> KernelResult:
    """One-round RF-backed service query: vectorized vs seed tree kernels."""
    from repro.datasets import load_dataset
    from repro.federated import FeaturePartition, train_vertical_model
    from repro.models.forest import RandomForestClassifier
    from repro.serving import PredictionService

    n = 2 * sizes["service_queries"]
    dataset = load_dataset("bank", n_samples=n, rng=0)
    half = n // 2
    partition = FeaturePartition.adversary_target(dataset.n_features, 0.4, rng=0)
    model = RandomForestClassifier(
        n_trees=sizes["rf_trees"], max_depth=sizes["rf_depth"], rng=0
    )
    vfl = train_vertical_model(
        model,
        dataset.X[:half],
        dataset.y[:half],
        dataset.X[half:],
        dataset.y[half:],
        partition,
    )
    service = PredictionService(vfl)
    indices = np.arange(sizes["service_queries"])
    forest = vfl.model
    fast = timed(lambda: service.query(indices), repeats)
    # Shadow the bound method so the identical serving stack runs over the
    # retained seed kernel; restore afterwards.
    forest.predict_proba = forest._predict_proba_slow
    try:
        slow = timed(lambda: service.query(indices), repeats)
    finally:
        del forest.predict_proba
    return KernelResult(
        seconds=fast,
        baseline_seconds=slow,
        meta={
            "queries": sizes["service_queries"],
            "n_trees": sizes["rf_trees"],
            "queries_per_second": sizes["service_queries"] / fast if fast > 0 else None,
        },
    )


KERNELS = {
    "dt_fit": bench_dt_fit,
    "dt_predict": bench_dt_predict,
    "rf_predict_proba": bench_rf_predict_proba,
    "pra_restrict": bench_pra_restrict,
    "grna_epoch": bench_grna_epoch,
    "service_throughput": bench_service_throughput,
}


# ----------------------------------------------------------------------
# Summary, trajectory file, regression gate
# ----------------------------------------------------------------------
def machine_info() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
    }


def run_bench(
    scale: str,
    label: str,
    *,
    kernels: "list[str] | None" = None,
    repeats: int = 3,
    seed_baseline: bool = False,
) -> dict:
    """Execute the selected kernels and assemble the summary payload.

    With ``seed_baseline=True`` the recorded ``seconds`` are the seed
    references themselves (speedup 1.0) — the pre-optimization anchor the
    trajectory starts from.
    """
    sizes = BENCH_SCALES[scale]
    names = list(KERNELS) if kernels is None else kernels
    results: dict[str, dict] = {}
    for name in names:
        if name not in KERNELS:
            raise SystemExit(
                f"unknown kernel {name!r}; choose from {sorted(KERNELS)}"
            )
        result = KERNELS[name](sizes, repeats)
        if seed_baseline and result.baseline_seconds is not None:
            result = KernelResult(
                seconds=result.baseline_seconds,
                baseline_seconds=result.baseline_seconds,
                meta=result.meta,
            )
        results[name] = result.to_json()
        speedup = results[name]["speedup"]
        print(
            f"{name:<20} {results[name]['seconds']:>10.4f}s"
            + (f"  (seed {results[name]['baseline_seconds']:.4f}s, {speedup:.1f}x)"
               if speedup is not None else "")
        )
    return {
        "label": label,
        "scale": scale,
        "created": time.strftime("%Y-%m-%d %H:%M:%S"),
        "machine": machine_info(),
        "kernels": results,
    }


def regression_failures(
    live: dict, reference: dict, margin: float = GATE_MARGIN
) -> list[str]:
    """Kernels whose live speedup regressed >``margin``× vs the reference.

    Speedups (fast vs in-run seed reference) are compared rather than raw
    seconds so the gate is portable across machines.
    """
    failures = []
    for name, ref in reference.get("kernels", {}).items():
        ref_speedup = ref.get("speedup")
        if ref_speedup is None:
            continue
        live_kernel = live.get("kernels", {}).get(name)
        if live_kernel is None:
            # A kernel the baseline gates on but the live run skipped is a
            # hole in coverage, not a pass.
            failures.append(f"{name}: gated by the baseline but absent from the live run")
            continue
        live_speedup = live_kernel.get("speedup")
        if live_speedup is None or live_speedup < ref_speedup / margin:
            failures.append(
                f"{name}: live speedup {live_speedup if live_speedup is None else round(live_speedup, 2)}"
                f" < reference {round(ref_speedup, 2)} / {margin}"
            )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--scale", choices=sorted(BENCH_SCALES), default="default",
        help="workload sizes (default: the largest scale)",
    )
    parser.add_argument("--label", default=None, help="BENCH_<label>.json label")
    parser.add_argument(
        "--out", default=None, help="output path (default BENCH_<label>.json in cwd)"
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N repeats")
    parser.add_argument(
        "--kernels", nargs="+", default=None, help=f"subset of {sorted(KERNELS)}"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="smoke scale + regression gate against the checked-in baseline",
    )
    parser.add_argument(
        "--baseline", default="BENCH_smoke.json",
        help="reference summary the --smoke gate compares against",
    )
    parser.add_argument(
        "--seed-baseline", action="store_true",
        help="record the seed-kernel timings as the trajectory anchor",
    )
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else args.scale
    if args.label:
        label = args.label
    elif args.seed_baseline:
        label = "seed"
    elif args.smoke:
        label = "smoke-live"  # never clobber the checked-in gate baseline
    else:
        label = "smoke" if scale == "smoke" else "vectorized"
    print(f"# repro-bench — scale={scale}, label={label}, repeats={args.repeats}")
    summary = run_bench(
        scale,
        label,
        kernels=args.kernels,
        repeats=args.repeats,
        seed_baseline=args.seed_baseline,
    )
    out = args.out or f"BENCH_{label}.json"
    if args.smoke and os.path.abspath(out) == os.path.abspath(args.baseline):
        print(
            "FAIL: --smoke output would overwrite its own gate baseline; "
            "pass a different --out/--label",
            file=sys.stderr,
        )
        return 1
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")

    if args.smoke:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                reference = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"FAIL: cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
            return 1
        failures = regression_failures(summary, reference)
        if failures:
            for failure in failures:
                print(f"!! {failure}", file=sys.stderr)
            print("FAIL: kernel speedup regression detected", file=sys.stderr)
            return 1
        print(f"gate ok: no kernel regressed >{GATE_MARGIN}x vs {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
