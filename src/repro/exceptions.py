"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single base class at an API boundary while still discriminating
finer-grained failures when they care.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, dtype, range, ...)."""


class ShapeError(ValidationError):
    """Two arrays have incompatible shapes for the requested operation."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before ``fit``."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure failed to converge within its budget."""


class GradientError(ReproError, RuntimeError):
    """Backward pass failed or produced gradients of unexpected shape."""


class PartitionError(ValidationError):
    """A vertical feature partition is malformed (overlap, gap, empty)."""


class ProtocolError(ReproError, RuntimeError):
    """The simulated VFL protocol was driven in an invalid order."""


class AttackError(ReproError, RuntimeError):
    """An attack could not be executed with the given inputs."""


class QueryBudgetExceededError(ReproError, RuntimeError):
    """A prediction query would exceed the consumer's remaining budget.

    Raised by the serving layer's :class:`~repro.serving.QueryLedger`
    when a metered :class:`~repro.serving.PredictionService` runs out of
    budget mid-accumulation, and by rate-limiting defenses gating the
    query interface. The message states the consumer, the request size,
    and what remains, so a truncated attack fails with an actionable
    diagnosis rather than a half-filled array three layers up.
    """


class DatasetError(ValidationError):
    """A dataset specification or generated dataset is invalid."""


class ScenarioError(ValidationError):
    """A scenario request (registry key, config, defense outcome) is invalid."""


class IncompatibleScenarioError(ScenarioError):
    """A scenario combines components that cannot work together.

    Raised by the :mod:`repro.api` facade when an attack or defense is
    requested against a model kind it does not support (e.g. ESA on a
    decision tree); the message names the violated constraint.
    """
