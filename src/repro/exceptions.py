"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single base class at an API boundary while still discriminating
finer-grained failures when they care.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, dtype, range, ...)."""


class ShapeError(ValidationError):
    """Two arrays have incompatible shapes for the requested operation."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before ``fit``."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure failed to converge within its budget."""


class GradientError(ReproError, RuntimeError):
    """Backward pass failed or produced gradients of unexpected shape."""


class PartitionError(ValidationError):
    """A vertical feature partition is malformed (overlap, gap, empty)."""


class ProtocolError(ReproError, RuntimeError):
    """The simulated VFL protocol was driven in an invalid order."""


class AttackError(ReproError, RuntimeError):
    """An attack could not be executed with the given inputs."""


class QueryBudgetExceededError(ReproError, RuntimeError):
    """A prediction query would exceed the consumer's remaining budget.

    Raised by the serving layer's :class:`~repro.serving.QueryLedger`
    when a metered :class:`~repro.serving.PredictionService` runs out of
    budget mid-accumulation, and by rate-limiting defenses gating the
    query interface. The message states the consumer, the request size,
    and what remains, so a truncated attack fails with an actionable
    diagnosis rather than a half-filled array three layers up.
    """


class WireFormatError(ProtocolError):
    """A federation message could not be decoded from its wire bytes.

    Raised by the :mod:`repro.federation.message` codec on truncated
    frames, bad magic, unsupported header versions, or payload dtypes the
    wire format cannot carry. The message states what was expected so a
    cross-version replay fails with a diagnosis, not a numpy shape error.
    """


class CommBudgetExceededError(ReproError, RuntimeError):
    """A protocol message would exceed the federation's communication budget.

    Raised by :class:`~repro.federation.CommLedger` when a metered
    :class:`~repro.federation.Transport` send would cross the byte or
    message budget. Mirrors :class:`QueryBudgetExceededError` one layer
    down: queries meter what the adversary *learns*, the comm ledger
    meters what the protocol *moves*.
    """


class PartyUnavailableError(ProtocolError):
    """A party required by a protocol round has dropped out.

    Raised by the federation runtime when fault injection marks a party
    as dropped (or a node fails to produce its round message); names the
    party and the round so stragglers and dropouts are distinguishable
    from programming errors.
    """


class PartyTimeoutError(PartyUnavailableError):
    """A party's reply exceeded the retry policy's per-attempt timeout.

    Raised (and counted on the :class:`~repro.federation.CommLedger`)
    by the resilient exchange when a ``timeout`` fault makes a reply's
    simulated latency cross :attr:`~repro.resilience.RetryPolicy.timeout`.
    A timed-out attempt is retried like any other failure; this error
    surfaces only when every attempt of a round timed out and no quorum
    policy allows degradation.
    """


class QuorumLostError(PartyUnavailableError):
    """Too few parties survived a round for even degraded service.

    Raised by the resilient exchange when retries are exhausted and the
    surviving coalition is smaller than the configured ``quorum`` — the
    round cannot be served even with imputed contributions. Subclasses
    :class:`PartyUnavailableError` so callers that fail fast on dropped
    parties today handle quorum loss without new catch sites.
    """


class ServiceUnavailableError(ReproError, RuntimeError):
    """The serving layer refused a query instead of executing it.

    Raised by :class:`~repro.serving.PredictionService` when a
    consumer's circuit breaker is open (recent protocol rounds against
    the federation runtime failed) or when the runtime failure that
    tripped the breaker is being reported to the caller. A refusal is a
    per-consumer serving decision, not a protocol error: the sharded
    replay records it as a refusal and keeps serving other consumers.
    """


class TelemetryError(ReproError, RuntimeError):
    """A trace could not be written, read, or trusted.

    Raised by the :mod:`repro.telemetry` subsystem when a JSONL trace
    file is corrupt mid-stream, or when a resumed run's record sequence
    does not line up with the records already durable in the file —
    appending would silently break the resumed-trace == fresh-trace
    concatenation contract, so the sink refuses instead.
    """


class CheckpointError(ReproError, RuntimeError):
    """A snapshot could not be written, read, or trusted.

    Raised by the :mod:`repro.checkpoint` subsystem when a snapshot file
    is corrupt (truncated archive, digest mismatch, unknown format
    version) or stale (its content fingerprint does not match the run
    configuration asking to resume from it). Refusal is deliberate:
    resuming from the wrong snapshot would silently violate the
    resumed-equals-fresh bit-identity contract, so the subsystem fails
    loudly instead.
    """


class CheckpointPause(ReproError):
    """A run suspended itself at a checkpoint boundary, as requested.

    Raised (not returned) by :class:`~repro.checkpoint.CheckpointPlan`
    after emitting the snapshot for its ``halt_after`` step, so arbitrary
    loop code unwinds through its normal cleanup (``finally`` blocks,
    context managers) with the snapshot already durable on disk. This is
    control flow, not failure — callers that schedule a deliberate
    suspension catch it and treat the run as suspended, resumable from
    the snapshot just written.
    """


class DatasetError(ValidationError):
    """A dataset specification or generated dataset is invalid."""


class ScenarioError(ValidationError):
    """A scenario request (registry key, config, defense outcome) is invalid."""


class IncompatibleScenarioError(ScenarioError):
    """A scenario combines components that cannot work together.

    Raised by the :mod:`repro.api` facade when an attack or defense is
    requested against a model kind it does not support (e.g. ESA on a
    decision tree); the message names the violated constraint.
    """
