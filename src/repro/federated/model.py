"""The vertical FL model wrapper and its simulated prediction protocol.

Per §VI-A the paper "generates the vertical FL models using centralized
training and gives the trained models to the adversary", because the threat
model assumes the *training* computation is perfectly protected and only
the final model (plus predictions) leaks. :func:`train_vertical_model`
therefore assembles the parties' aligned column blocks and fits the
underlying model centrally — the fidelity-relevant part is the *prediction*
interface below.

:class:`VerticalFLModel.predict` simulates the secure prediction protocol:
the active party names sample ids, each party feeds its columns into the
protocol, and **only the confidence-score vector v is revealed** (§II-B).
The adversary additionally receives the plaintext model parameters through
:meth:`VerticalFLModel.release_model`, mirroring the paper's assumption
that θ is released to the active party for interpretability (§III-B).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.exceptions import ProtocolError, ValidationError
from repro.federated.partition import FeaturePartition
from repro.federated.party import ActiveParty, Party, PassiveParty
from repro.models.base import BaseClassifier


class VerticalFLModel:
    """A trained model jointly served by vertically partitioned parties."""

    def __init__(
        self,
        model: BaseClassifier,
        partition: FeaturePartition,
        parties: list[Party],
    ) -> None:
        model._check_fitted()
        if partition.n_features != model.n_features_:
            raise ValidationError(
                f"partition covers {partition.n_features} features, model uses "
                f"{model.n_features_}"
            )
        if len(parties) != partition.n_parties:
            raise ValidationError(
                f"{len(parties)} parties but partition defines {partition.n_parties}"
            )
        if not isinstance(parties[0], ActiveParty):
            raise ProtocolError("party 0 must be the active (label-owning) party")
        for p in parties[1:]:
            if isinstance(p, ActiveParty):
                raise ProtocolError("only party 0 may be active")
        n = parties[0].n_samples
        for p in parties:
            if p.n_samples != n:
                raise ProtocolError(
                    "parties hold unaligned datasets; run PSI alignment first"
                )
            if not np.array_equal(
                np.sort(p.feature_indices), partition.indices(p.party_id)
            ):
                raise ValidationError(
                    f"party {p.party_id}'s feature indices disagree with the partition"
                )
        self.model = model
        self.partition = partition
        self.parties = parties
        self._n_samples = n
        self.prediction_log_: list[int] = []
        #: Gate for :attr:`prediction_log_`. The log exists for protocol
        #: forensics at scenario scale; a workload replay pushing millions
        #: of requests through one deployment turns it into an unbounded
        #: allocation, so the workload layer switches it off.
        self.log_predictions: bool = True

    # ------------------------------------------------------------------
    # Prediction protocol
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Number of aligned samples in the joint prediction dataset."""
        return self._n_samples

    @property
    def n_classes(self) -> int:
        """Number of classes of the underlying model."""
        return self.model.n_classes_

    def predict(self, sample_indices: np.ndarray) -> np.ndarray:
        """Jointly compute confidence scores for the requested samples.

        Simulates the secure protocol: feature values are assembled only
        inside this call and never returned; the caller (the active party)
        sees just the confidence-score matrix.
        """
        sample_indices = np.asarray(sample_indices, dtype=np.int64).ravel()
        if sample_indices.size == 0:
            raise ProtocolError("prediction request with no sample ids")
        joint = self._assemble(sample_indices)
        if self.log_predictions:
            self.prediction_log_.extend(int(i) for i in sample_indices)
        return self.model.predict_proba(joint)

    def predict_all(self) -> np.ndarray:
        """Confidence scores for every sample in the prediction dataset."""
        return self.predict(np.arange(self._n_samples))

    def sample_hashes(self, sample_indices: np.ndarray) -> list[str]:
        """Content fingerprints of the requested samples' joint rows.

        The serving layer keys its response cache and its duplicate-query
        audit on these: two requests for byte-identical joint feature
        rows collide even under different sample ids. Like
        :meth:`predict`, the rows are assembled only inside this call —
        the digest reveals equality, never values.
        """
        sample_indices = np.asarray(sample_indices, dtype=np.int64).ravel()
        if sample_indices.size == 0:
            raise ProtocolError("hash request with no sample ids")
        joint = np.ascontiguousarray(self._assemble(sample_indices))
        return [hashlib.sha1(row.tobytes()).hexdigest() for row in joint]

    def _assemble(self, sample_indices: np.ndarray) -> np.ndarray:
        joint = np.empty((sample_indices.size, self.partition.n_features))
        for party in self.parties:
            joint[:, party.feature_indices] = party.local_features(sample_indices)
        return joint

    # ------------------------------------------------------------------
    # What the adversary legitimately receives
    # ------------------------------------------------------------------
    def release_model(self) -> BaseClassifier:
        """Hand the plaintext trained model to the active party (§III-B)."""
        return self.model

    def ground_truth_target(self, colluders: tuple[int, ...] = ()) -> np.ndarray:
        """Target-party feature values — for *evaluation only*.

        The attacks never see this; experiment code uses it to score MSE and
        CBR against ground truth.
        """
        view = self.partition.adversary_view(colluders)
        joint = self._assemble(np.arange(self._n_samples))
        return joint[:, view.target_indices]

    def adversary_features(self, colluders: tuple[int, ...] = ()) -> np.ndarray:
        """The adversary coalition's own feature values for all samples."""
        coalition = sorted({0, *colluders})
        all_rows = np.arange(self._n_samples)
        stacked = np.hstack(
            [self.parties[pid].local_features(all_rows) for pid in coalition]
        )
        joint_cols = np.concatenate(
            [self.parties[pid].feature_indices for pid in coalition]
        )
        # Reorder the coalition's columns into ascending global-column order
        # so they line up with adversary_view().adversary_indices.
        return stacked[:, np.argsort(joint_cols)]


def build_parties(
    X: np.ndarray,
    y: np.ndarray,
    partition: FeaturePartition,
) -> list[Party]:
    """Split a joint dataset into one party object per partition block."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] != partition.n_features:
        raise ValidationError(
            f"X must be (n, {partition.n_features}), got {np.shape(X)}"
        )
    parties: list[Party] = []
    for pid in range(partition.n_parties):
        indices = partition.indices(pid)
        block = X[:, indices]
        if pid == 0:
            parties.append(ActiveParty(pid, indices, block, y))
        else:
            parties.append(PassiveParty(pid, indices, block))
    return parties


def train_vertical_model(
    model: BaseClassifier,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_pred: np.ndarray,
    y_pred: np.ndarray,
    partition: FeaturePartition,
) -> VerticalFLModel:
    """Train ``model`` on the joint training data and serve the prediction set.

    Training is centralized (matching the paper's evaluation protocol, which
    assumes a perfectly secure training phase); the returned
    :class:`VerticalFLModel` wraps the *prediction* dataset, which is what
    the attacks operate on.
    """
    model.fit(np.asarray(X_train, dtype=np.float64), np.asarray(y_train, dtype=np.int64))
    parties = build_parties(X_pred, y_pred, partition)
    return VerticalFLModel(model, partition, parties)
