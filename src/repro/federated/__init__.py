"""Vertical federated learning substrate: parties, partitions, protocol."""

from repro.federated.partition import (
    AdversaryView,
    FeaturePartition,
    PARTITION_STRATEGIES,
    partition_sizes,
)
from repro.federated.party import ActiveParty, Party, PassiveParty
from repro.federated.model import VerticalFLModel, build_parties, train_vertical_model
from repro.federated.psi import align_datasets, private_set_intersection

__all__ = [
    "FeaturePartition",
    "AdversaryView",
    "PARTITION_STRATEGIES",
    "partition_sizes",
    "Party",
    "ActiveParty",
    "PassiveParty",
    "VerticalFLModel",
    "build_parties",
    "train_vertical_model",
    "private_set_intersection",
    "align_datasets",
]
