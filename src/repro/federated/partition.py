"""Vertical feature partitions.

A :class:`FeaturePartition` records which columns of the joint feature
space belong to which party. The attack setting abstracts the ``m`` parties
into two blocks (§III-C): the adversary coalition ``P_adv`` (active party
plus colluders) and the attack target ``P_target`` (the remaining passive
parties); :meth:`FeaturePartition.adversary_view` collapses any partition
into that two-block form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PartitionError
from repro.utils.random import check_random_state
from repro.utils.validation import check_in_range, check_positive_int


def _uniform_sizes(
    n_columns: int, n_blocks: int, rng: "np.random.Generator | None"
) -> list[int]:
    """Spread columns as evenly as possible; consumes no randomness."""
    base, extra = divmod(n_columns, n_blocks)
    return [base + (1 if i < extra else 0) for i in range(n_blocks)]


def _dirichlet_sizes(
    n_columns: int,
    n_blocks: int,
    rng: "np.random.Generator | None",
    *,
    alpha: float = 0.5,
) -> list[int]:
    """Skewed block widths from a symmetric Dirichlet(alpha) draw.

    Smaller ``alpha`` means more skew. Each block keeps at least one
    column (the paper's partitions never leave a party empty); the
    remaining ``n_columns - n_blocks`` columns are apportioned to the
    drawn proportions by largest remainder, which is deterministic for a
    given generator state. A single block consumes no randomness, so a
    two-party Dirichlet topology stays bit-identical to the uniform one.
    """
    check_in_range(float(alpha), name="alpha", low=0.0, inclusive=False)
    if n_blocks == 1:
        return [n_columns]
    proportions = check_random_state(rng).dirichlet(np.full(n_blocks, float(alpha)))
    raw = proportions * (n_columns - n_blocks)
    sizes = np.floor(raw).astype(np.int64) + 1
    order = np.argsort(-(raw - np.floor(raw)), kind="stable")
    for i in range(n_columns - int(sizes.sum())):
        sizes[order[i]] += 1
    return [int(s) for s in sizes]


#: Registered block-width strategies for topology-driven partitions:
#: ``"uniform"`` (equal widths) and ``"dirichlet"`` (skewed widths).
PARTITION_STRATEGIES = {
    "uniform": _uniform_sizes,
    "dirichlet": _dirichlet_sizes,
}


def partition_sizes(
    strategy: str,
    n_columns: int,
    n_blocks: int,
    rng: "np.random.Generator | None" = None,
    **params,
) -> list[int]:
    """Apportion ``n_columns`` over ``n_blocks`` parties by strategy key.

    Unknown strategies fail with the registered choices listed; every
    block is guaranteed at least one column (or the split is rejected).
    """
    if strategy not in PARTITION_STRATEGIES:
        raise PartitionError(
            f"unknown partition strategy {strategy!r}; choose from "
            f"{sorted(PARTITION_STRATEGIES)}"
        )
    check_positive_int(n_blocks, name="n_blocks")
    if n_columns < n_blocks:
        raise PartitionError(
            f"cannot split {n_columns} columns over {n_blocks} parties; "
            "every party needs at least one column"
        )
    try:
        sizes = PARTITION_STRATEGIES[strategy](n_columns, n_blocks, rng, **params)
    except TypeError as exc:
        raise PartitionError(
            f"strategy {strategy!r} rejected parameters {params}: {exc}"
        ) from exc
    if sum(sizes) != n_columns or min(sizes) < 1:
        raise PartitionError(
            f"strategy {strategy!r} produced invalid sizes {sizes} for "
            f"{n_columns} columns"
        )
    return sizes


@dataclass(frozen=True)
class AdversaryView:
    """Two-block view of a partition: adversary columns vs target columns."""

    n_features: int
    adversary_indices: np.ndarray
    target_indices: np.ndarray

    @property
    def d_adv(self) -> int:
        """Number of features held by the adversary coalition."""
        return int(self.adversary_indices.size)

    @property
    def d_target(self) -> int:
        """Number of features held by the attack target."""
        return int(self.target_indices.size)

    def split(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a joint matrix into ``(X_adv, X_target)`` column blocks."""
        X = np.asarray(X)
        return X[:, self.adversary_indices], X[:, self.target_indices]

    def assemble(self, X_adv: np.ndarray, X_target: np.ndarray) -> np.ndarray:
        """Recombine the two blocks into original column order."""
        X_adv = np.atleast_2d(np.asarray(X_adv, dtype=np.float64))
        X_target = np.atleast_2d(np.asarray(X_target, dtype=np.float64))
        if X_adv.shape[0] != X_target.shape[0]:
            raise PartitionError(
                f"row mismatch: {X_adv.shape[0]} vs {X_target.shape[0]}"
            )
        out = np.empty((X_adv.shape[0], self.n_features))
        out[:, self.adversary_indices] = X_adv
        out[:, self.target_indices] = X_target
        return out

    def permutation_to_original(self) -> np.ndarray:
        """Permutation ``p`` with ``concat([X_adv, X_target])[:, p]`` in original order."""
        return np.argsort(np.concatenate([self.adversary_indices, self.target_indices]))


class FeaturePartition:
    """Disjoint assignment of feature columns to ``m`` parties.

    Party 0 is by convention the *active* party (it owns the labels);
    parties ``1..m-1`` are passive.
    """

    def __init__(self, n_features: int, blocks: list[np.ndarray]) -> None:
        self.n_features = check_positive_int(n_features, name="n_features")
        if len(blocks) < 2:
            raise PartitionError("a vertical partition needs at least 2 parties")
        cleaned: list[np.ndarray] = []
        seen: set[int] = set()
        for i, block in enumerate(blocks):
            block = np.asarray(block, dtype=np.int64).ravel()
            if block.size == 0:
                raise PartitionError(f"party {i} has an empty feature block")
            if block.min() < 0 or block.max() >= n_features:
                raise PartitionError(
                    f"party {i} references features outside [0, {n_features})"
                )
            as_set = set(block.tolist())
            if len(as_set) != block.size:
                raise PartitionError(f"party {i} repeats feature indices")
            if as_set & seen:
                raise PartitionError(f"party {i} overlaps another party's features")
            seen |= as_set
            cleaned.append(np.sort(block))
        if len(seen) != n_features:
            missing = sorted(set(range(n_features)) - seen)
            raise PartitionError(f"features not assigned to any party: {missing}")
        self.blocks = cleaned

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def contiguous(cls, n_features: int, sizes: list[int]) -> "FeaturePartition":
        """Assign consecutive column ranges of the given ``sizes``."""
        if sum(sizes) != n_features:
            raise PartitionError(
                f"sizes sum to {sum(sizes)}, expected n_features={n_features}"
            )
        blocks, start = [], 0
        for size in sizes:
            check_positive_int(size, name="block size")
            blocks.append(np.arange(start, start + size))
            start += size
        return cls(n_features, blocks)

    @classmethod
    def random_split(
        cls,
        n_features: int,
        sizes: list[int],
        rng: np.random.Generator | int = 0,
    ) -> "FeaturePartition":
        """Assign randomly permuted columns in blocks of the given ``sizes``."""
        if sum(sizes) != n_features:
            raise PartitionError(
                f"sizes sum to {sum(sizes)}, expected n_features={n_features}"
            )
        perm = check_random_state(rng).permutation(n_features)
        blocks, start = [], 0
        for size in sizes:
            check_positive_int(size, name="block size")
            blocks.append(perm[start : start + size])
            start += size
        return cls(n_features, blocks)

    @classmethod
    def adversary_target(
        cls,
        n_features: int,
        target_fraction: float,
        rng: np.random.Generator | int = 0,
    ) -> "FeaturePartition":
        """Two-party split with a random ``target_fraction`` of columns targeted.

        This is the experimental setup of §VI: the target's features are a
        randomly selected fraction of all columns (e.g. "40% features of
        Bank is randomly selected as the x_target").
        """
        check_in_range(target_fraction, name="target_fraction", low=0.0, high=1.0, inclusive=False)
        d_target = int(round(n_features * target_fraction))
        d_target = min(max(d_target, 1), n_features - 1)
        return cls.random_split(n_features, [n_features - d_target, d_target], rng=rng)

    @classmethod
    def from_topology(
        cls,
        n_features: int,
        target_fraction: float,
        *,
        n_parties: int = 2,
        colluders: tuple[int, ...] = (),
        strategy: str = "uniform",
        rng: np.random.Generator | int = 0,
        **strategy_params,
    ) -> "FeaturePartition":
        """N-party generalization of :meth:`adversary_target`.

        ``target_fraction`` keeps its two-block meaning — that share of
        the (randomly permuted) columns goes to the parties *outside*
        the adversary coalition ``{0} ∪ colluders`` — and each side's
        share is then apportioned over its parties by ``strategy`` (see
        :data:`PARTITION_STRATEGIES`). Randomness is consumed in a fixed
        order (permutation, coalition sizes, target sizes), and with the
        defaults (two parties, uniform) the construction reduces to
        exactly :meth:`adversary_target` — same draws, same blocks —
        which is what keeps default scenario configs bit-identical.
        """
        check_in_range(
            target_fraction, name="target_fraction", low=0.0, high=1.0, inclusive=False
        )
        check_positive_int(n_parties, name="n_parties")
        if n_parties < 2:
            raise PartitionError("a vertical partition needs at least 2 parties")
        coalition = sorted({0, *(int(p) for p in colluders)})
        if coalition[0] < 0 or coalition[-1] >= n_parties:
            raise PartitionError(
                f"colluding party ids {sorted(colluders)} outside [1, {n_parties})"
            )
        targets = [p for p in range(n_parties) if p not in coalition]
        if not targets:
            raise PartitionError(
                "the coalition covers every party; no attack target left"
            )
        if n_features < n_parties:
            raise PartitionError(
                f"{n_parties} parties need at least {n_parties} features, "
                f"got {n_features}"
            )
        d_target = int(round(n_features * target_fraction))
        d_target = min(max(d_target, 1), n_features - 1)
        # Every party on both sides still needs >= 1 column.
        d_target = min(max(d_target, len(targets)), n_features - len(coalition))
        rng = check_random_state(rng)
        perm = rng.permutation(n_features)
        coalition_sizes = partition_sizes(
            strategy, n_features - d_target, len(coalition), rng, **strategy_params
        )
        target_sizes = partition_sizes(
            strategy, d_target, len(targets), rng, **strategy_params
        )
        blocks_by_party: dict[int, np.ndarray] = {}
        start = 0
        for party, size in [
            *zip(coalition, coalition_sizes),
            *zip(targets, target_sizes),
        ]:
            blocks_by_party[party] = perm[start : start + size]
            start += size
        return cls(n_features, [blocks_by_party[p] for p in range(n_parties)])

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_parties(self) -> int:
        """Number of parties ``m``."""
        return len(self.blocks)

    def indices(self, party: int) -> np.ndarray:
        """Feature columns owned by ``party``."""
        return self.blocks[party].copy()

    def block_sizes(self) -> list[int]:
        """Number of features per party."""
        return [int(b.size) for b in self.blocks]

    def columns_of(self, party: int, X: np.ndarray) -> np.ndarray:
        """Project a joint matrix onto ``party``'s columns."""
        return np.asarray(X)[:, self.blocks[party]]

    def adversary_view(self, colluders: tuple[int, ...] = ()) -> AdversaryView:
        """Collapse parties into (adversary coalition, target) blocks.

        The coalition is the active party (0) plus any ``colluders``;
        everyone else is the attack target. At least one passive party must
        remain outside the coalition.
        """
        coalition = {0, *colluders}
        invalid = [p for p in coalition if not 0 <= p < self.n_parties]
        if invalid:
            raise PartitionError(f"invalid colluding party ids: {invalid}")
        targets = [p for p in range(self.n_parties) if p not in coalition]
        if not targets:
            raise PartitionError("coalition covers all parties; no attack target left")
        adv = np.sort(np.concatenate([self.blocks[p] for p in sorted(coalition)]))
        tgt = np.sort(np.concatenate([self.blocks[p] for p in targets]))
        return AdversaryView(self.n_features, adv, tgt)
