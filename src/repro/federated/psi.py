"""Simulated private set intersection (PSI) for sample alignment.

Vertical FL assumes parties "have determined and aligned their common
samples using private set intersection techniques without revealing any
information about samples not in the intersection" (§III-A). The real
protocols ([32, 33]) are cryptographic; this module simulates the same
*interface*: every party learns exactly the intersection of sample ids and
nothing about non-members.

The simulation mimics a salted-hash PSI: parties exchange keyed digests of
their ids and intersect the digest sets, so the code path exercised by the
library (id sets in, aligned intersection out, non-members never shared in
the clear) matches the deployed protocols' observable behaviour.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.exceptions import ProtocolError, ValidationError


def _digest(sample_id: int, salt: bytes) -> bytes:
    return hashlib.sha256(salt + int(sample_id).to_bytes(16, "little", signed=True)).digest()


def private_set_intersection(
    id_sets: list[np.ndarray],
    *,
    salt: bytes = b"repro-psi",
) -> np.ndarray:
    """Intersect the parties' sample-id sets via salted digests.

    Parameters
    ----------
    id_sets:
        One integer id array per party (at least two parties).
    salt:
        Shared keying material for the digests; in a real deployment this
        comes from an OPRF, here it only needs to be common to all parties.

    Returns
    -------
    numpy.ndarray
        Sorted array of ids present in every party's set.

    Raises
    ------
    ProtocolError
        When a party's id set contains duplicates (a salted-digest PSI
        has no defined multiset semantics — the duplicate ids are named
        so the offending party can deduplicate), or when the
        intersection is empty (no protocol can proceed on zero aligned
        samples; failing here names the cause instead of surfacing an
        empty-matrix shape error layers later).
    """
    if len(id_sets) < 2:
        raise ValidationError("PSI needs at least two parties")
    cleaned: list[np.ndarray] = []
    for i, ids in enumerate(id_sets):
        ids = np.asarray(ids, dtype=np.int64).ravel()
        unique, counts = np.unique(ids, return_counts=True)
        if unique.size != ids.size:
            repeated = [int(s) for s in unique[counts > 1][:5]]
            raise ProtocolError(
                f"party {i} submitted duplicate sample ids to PSI "
                f"(e.g. {repeated}); each party's id set must be unique"
            )
        cleaned.append(ids)

    # Each party publishes only digests; the intersection is computed on
    # digests and mapped back by the party that owns the preimages.
    digest_sets = [frozenset(_digest(int(s), salt) for s in ids) for ids in cleaned]
    common_digests = frozenset.intersection(*digest_sets)
    base = cleaned[0]
    common = np.array(
        sorted(int(s) for s in base if _digest(int(s), salt) in common_digests),
        dtype=np.int64,
    )
    if common.size == 0:
        raise ProtocolError(
            f"PSI produced an empty intersection across {len(id_sets)} "
            "parties; vertical FL requires at least one aligned sample"
        )
    return common


def align_datasets(
    id_sets: list[np.ndarray],
    datasets: list[np.ndarray],
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Run PSI and reorder every party's rows to the common id order.

    Returns the common ids and the row-aligned feature matrices. Raises if
    a party's data and ids disagree in length.
    """
    if len(id_sets) != len(datasets):
        raise ValidationError("id_sets and datasets must have equal length")
    for i, (ids, data) in enumerate(zip(id_sets, datasets)):
        if len(np.asarray(ids).ravel()) != np.asarray(data).shape[0]:
            raise ProtocolError(f"party {i}: ids and data row counts differ")
    common = private_set_intersection(id_sets)
    aligned = []
    for ids, data in zip(id_sets, datasets):
        ids = np.asarray(ids, dtype=np.int64).ravel()
        data = np.asarray(data)
        position = {int(s): i for i, s in enumerate(ids)}
        rows = np.array([position[int(s)] for s in common], dtype=np.int64)
        aligned.append(data[rows])
    return common, aligned
