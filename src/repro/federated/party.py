"""Party abstractions for vertical federated learning.

An :class:`ActiveParty` owns labels and initiates predictions; a
:class:`PassiveParty` contributes features only. Parties hold their own
column block of the joint dataset and never hand raw columns to another
party — the only cross-party data flow happens inside
:class:`repro.federated.model.VerticalFLModel`'s simulated secure protocol,
which reveals nothing but the final confidence vector.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ProtocolError, ValidationError
from repro.utils.validation import check_matrix


class Party:
    """A data owner holding one column block of the joint dataset."""

    def __init__(self, party_id: int, feature_indices: np.ndarray, data: np.ndarray) -> None:
        if party_id < 0:
            raise ValidationError(f"party_id must be non-negative, got {party_id}")
        self.party_id = int(party_id)
        self.feature_indices = np.asarray(feature_indices, dtype=np.int64).copy()
        data = check_matrix(data, name=f"party {party_id} data")
        if data.shape[1] != self.feature_indices.size:
            raise ValidationError(
                f"party {party_id}: data has {data.shape[1]} columns but "
                f"{self.feature_indices.size} feature indices"
            )
        self._data = data

    @property
    def n_samples(self) -> int:
        """Number of (aligned) samples this party holds."""
        return self._data.shape[0]

    @property
    def n_features(self) -> int:
        """Number of feature columns this party holds."""
        return self._data.shape[1]

    def local_features(self, sample_indices: np.ndarray) -> np.ndarray:
        """The party's feature values for the requested samples.

        This is the value handed to the *secure protocol*, never to another
        party directly.
        """
        sample_indices = np.asarray(sample_indices, dtype=np.int64).ravel()
        if sample_indices.size and (
            sample_indices.min() < 0 or sample_indices.max() >= self.n_samples
        ):
            raise ProtocolError(
                f"party {self.party_id}: sample index out of range [0, {self.n_samples})"
            )
        return self._data[sample_indices]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(id={self.party_id}, "
            f"n_samples={self.n_samples}, n_features={self.n_features})"
        )


class PassiveParty(Party):
    """A party contributing features but holding no labels."""


class ActiveParty(Party):
    """The label-owning party that initiates training and predictions."""

    def __init__(
        self,
        party_id: int,
        feature_indices: np.ndarray,
        data: np.ndarray,
        labels: np.ndarray,
    ) -> None:
        super().__init__(party_id, feature_indices, data)
        labels = np.asarray(labels, dtype=np.int64).ravel()
        if labels.shape[0] != self.n_samples:
            raise ValidationError(
                f"labels length {labels.shape[0]} != n_samples {self.n_samples}"
            )
        self._labels = labels

    def local_labels(self, sample_indices: np.ndarray) -> np.ndarray:
        """Ground-truth labels for the requested samples."""
        sample_indices = np.asarray(sample_indices, dtype=np.int64).ravel()
        if sample_indices.size and (
            sample_indices.min() < 0 or sample_indices.max() >= self.n_samples
        ):
            raise ProtocolError(
                f"party {self.party_id}: sample index out of range [0, {self.n_samples})"
            )
        return self._labels[sample_indices]
