"""Runners regenerating every figure of the paper's evaluation (§VI).

Each ``figN`` function returns an :class:`ExperimentResult` whose rows are
the series plotted in the corresponding figure. Absolute values depend on
the synthetic stand-in datasets (see DESIGN.md); the claims under
reproduction are the *shapes*: who beats whom, monotonicity in d_target,
and where the exactness threshold falls.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import (
    EqualitySolvingAttack,
    GenerativeRegressionNetwork,
    PathRestrictionAttack,
    RandomGuessAttack,
    attack_random_forest,
    random_path,
)
from repro.defenses import RoundedModel
from repro.experiments.common import build_scenario, grna_kwargs_from_scale
from repro.experiments.config import ScaleConfig, get_scale
from repro.experiments.reporting import ExperimentResult
from repro.metrics import (
    aggregate_cbr,
    correlation_report,
    feature_wise_mse,
    mse_per_feature,
    path_cbr,
    reconstruction_cbr,
)
from repro.models import RandomForestDistiller
from repro.utils.random import check_random_state, spawn_rngs

REAL_DATASETS = ("bank", "credit", "drive", "news")


def _trial_seeds(seed: int, n_trials: int) -> list[int]:
    rng = check_random_state(seed)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=n_trials)]


def _random_guess_mses(
    view, X_adv: np.ndarray, X_target: np.ndarray, rng
) -> tuple[float, float]:
    uniform = RandomGuessAttack(view, distribution="uniform", rng=rng).run(X_adv)
    gaussian = RandomGuessAttack(view, distribution="gaussian", rng=rng).run(X_adv)
    return (
        mse_per_feature(uniform.x_target_hat, X_target),
        mse_per_feature(gaussian.x_target_hat, X_target),
    )


# ----------------------------------------------------------------------
# Fig. 5 — Equality Solving Attack, MSE per feature vs d_target
# ----------------------------------------------------------------------
def fig5_esa(
    scale: "str | ScaleConfig" = "default",
    *,
    datasets: tuple[str, ...] = REAL_DATASETS,
    seed: int = 5,
) -> ExperimentResult:
    """ESA vs random guess across d_target fractions (Fig. 5 series)."""
    scale = get_scale(scale)
    rows = []
    for dataset in datasets:
        for fraction in scale.fractions:
            esa_mses, rg_u, rg_g, exact_flags = [], [], [], []
            for trial_seed in _trial_seeds(seed, scale.n_trials):
                scenario = build_scenario(dataset, "lr", fraction, scale, trial_seed)
                attack = EqualitySolvingAttack(scenario.model, scenario.view)
                result = attack.run(scenario.X_adv, scenario.V)
                esa_mses.append(mse_per_feature(result.x_target_hat, scenario.X_target))
                exact_flags.append(attack.is_exact)
                u, g = _random_guess_mses(
                    scenario.view, scenario.X_adv, scenario.X_target, trial_seed
                )
                rg_u.append(u)
                rg_g.append(g)
            rows.append(
                (
                    dataset,
                    int(round(fraction * 100)),
                    float(np.mean(esa_mses)),
                    float(np.mean(rg_u)),
                    float(np.mean(rg_g)),
                    all(exact_flags),
                )
            )
    return ExperimentResult(
        experiment_id="fig5",
        title="ESA: MSE per feature vs d_target fraction",
        columns=["dataset", "dtarget_pct", "esa_mse", "rg_uniform_mse", "rg_gaussian_mse", "exact"],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


# ----------------------------------------------------------------------
# Fig. 6 — Path Restriction Attack, CBR vs d_target
# ----------------------------------------------------------------------
def fig6_pra(
    scale: "str | ScaleConfig" = "default",
    *,
    datasets: tuple[str, ...] = REAL_DATASETS,
    seed: int = 6,
) -> ExperimentResult:
    """PRA vs random-path guess across d_target fractions (Fig. 6 series)."""
    scale = get_scale(scale)
    rows = []
    for dataset in datasets:
        for fraction in scale.fractions:
            pra_rates, rg_rates, restricted = [], [], []
            for trial_seed in _trial_seeds(seed, scale.n_trials):
                scenario = build_scenario(dataset, "dt", fraction, scale, trial_seed)
                structure = scenario.model.tree_structure()
                attack = PathRestrictionAttack(structure, scenario.view)
                attack_rng, guess_rng = spawn_rngs(trial_seed, 2)
                labels = np.argmax(scenario.V, axis=1)
                counts, rg_counts = [], []
                for i in range(scenario.X_adv.shape[0]):
                    result = attack.run(scenario.X_adv[i], int(labels[i]), rng=attack_rng)
                    counts.append(
                        path_cbr(
                            structure,
                            result.selected_path,
                            scenario.X_pred_full[i],
                            scenario.view.target_indices,
                        )
                    )
                    rg_counts.append(
                        path_cbr(
                            structure,
                            random_path(structure, guess_rng),
                            scenario.X_pred_full[i],
                            scenario.view.target_indices,
                        )
                    )
                    restricted.append(result.n_paths_restricted / result.n_paths_total)
                pra_rates.append(aggregate_cbr(counts))
                rg_rates.append(aggregate_cbr(rg_counts))
            rows.append(
                (
                    dataset,
                    int(round(fraction * 100)),
                    float(np.nanmean(pra_rates)),
                    float(np.nanmean(rg_rates)),
                    float(np.mean(restricted)),
                )
            )
    return ExperimentResult(
        experiment_id="fig6",
        title="PRA: correct branching rate vs d_target fraction",
        columns=["dataset", "dtarget_pct", "pra_cbr", "rg_cbr", "restricted_fraction"],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


# ----------------------------------------------------------------------
# Fig. 7 — GRNA MSE for LR / RF / NN models
# ----------------------------------------------------------------------
def fig7_grna(
    scale: "str | ScaleConfig" = "default",
    *,
    datasets: tuple[str, ...] = REAL_DATASETS,
    models: tuple[str, ...] = ("lr", "rf", "nn"),
    seed: int = 7,
) -> ExperimentResult:
    """GRNA on LR/RF/NN vs random guess (Fig. 7 series)."""
    scale = get_scale(scale)
    rows = []
    for dataset in datasets:
        for fraction in scale.fractions:
            per_model: dict[str, list[float]] = {m: [] for m in models}
            rg_u, rg_g = [], []
            for trial_seed in _trial_seeds(seed, scale.n_trials):
                for model_kind in models:
                    scenario = build_scenario(
                        dataset, model_kind, fraction, scale, trial_seed
                    )
                    x_hat = _run_grna(scenario, model_kind, scale, trial_seed)
                    per_model[model_kind].append(
                        mse_per_feature(x_hat, scenario.X_target)
                    )
                u, g = _random_guess_mses(
                    scenario.view, scenario.X_adv, scenario.X_target, trial_seed
                )
                rg_u.append(u)
                rg_g.append(g)
            rows.append(
                (
                    dataset,
                    int(round(fraction * 100)),
                    *(float(np.mean(per_model[m])) for m in models),
                    float(np.mean(rg_u)),
                    float(np.mean(rg_g)),
                )
            )
    return ExperimentResult(
        experiment_id="fig7",
        title="GRNA: MSE per feature vs d_target fraction (LR/RF/NN)",
        columns=[
            "dataset",
            "dtarget_pct",
            *(f"grna_{m}_mse" for m in models),
            "rg_uniform_mse",
            "rg_gaussian_mse",
        ],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


def _run_grna(scenario, model_kind: str, scale: ScaleConfig, trial_seed: int) -> np.ndarray:
    """Run GRNA against a scenario, distilling first for forests."""
    grna_rng, distill_rng = spawn_rngs(trial_seed + 1, 2)
    kwargs = grna_kwargs_from_scale(scale, grna_rng)
    if model_kind == "rf":
        distiller = RandomForestDistiller(
            hidden_sizes=scale.distiller_hidden,
            n_dummy=scale.distiller_dummy,
            epochs=scale.distiller_epochs,
            rng=distill_rng,
        )
        result, _ = attack_random_forest(
            scenario.model,
            scenario.view,
            scenario.X_adv,
            scenario.V,
            distiller=distiller,
            grna_kwargs=kwargs,
        )
        return result.x_target_hat
    attack = GenerativeRegressionNetwork(scenario.model, scenario.view, **kwargs)
    return attack.run(scenario.X_adv, scenario.V).x_target_hat


# ----------------------------------------------------------------------
# Fig. 8 — GRNA on the RF model, CBR metric
# ----------------------------------------------------------------------
def fig8_grna_rf_cbr(
    scale: "str | ScaleConfig" = "default",
    *,
    datasets: tuple[str, ...] = REAL_DATASETS,
    seed: int = 8,
) -> ExperimentResult:
    """Branch agreement of GRNA reconstructions on the true forest (Fig. 8)."""
    scale = get_scale(scale)
    rows = []
    for dataset in datasets:
        for fraction in scale.fractions:
            grna_rates, rg_rates = [], []
            for trial_seed in _trial_seeds(seed, scale.n_trials):
                scenario = build_scenario(dataset, "rf", fraction, scale, trial_seed)
                x_hat = _run_grna(scenario, "rf", scale, trial_seed)
                full_hat = scenario.view.assemble(scenario.X_adv, x_hat)
                guess = RandomGuessAttack(
                    scenario.view, distribution="uniform", rng=trial_seed
                ).run(scenario.X_adv)
                full_guess = scenario.view.assemble(
                    scenario.X_adv, guess.x_target_hat
                )
                structures = scenario.model.tree_structures()
                counts, rg_counts = [], []
                for i in range(scenario.X_pred_full.shape[0]):
                    for structure in structures:
                        counts.append(
                            reconstruction_cbr(
                                structure,
                                scenario.X_pred_full[i],
                                full_hat[i],
                                scenario.view.target_indices,
                            )
                        )
                        rg_counts.append(
                            reconstruction_cbr(
                                structure,
                                scenario.X_pred_full[i],
                                full_guess[i],
                                scenario.view.target_indices,
                            )
                        )
                grna_rates.append(aggregate_cbr(counts))
                rg_rates.append(aggregate_cbr(rg_counts))
            rows.append(
                (
                    dataset,
                    int(round(fraction * 100)),
                    float(np.nanmean(grna_rates)),
                    float(np.nanmean(rg_rates)),
                )
            )
    return ExperimentResult(
        experiment_id="fig8",
        title="GRNA on RF: correct branching rate vs d_target fraction",
        columns=["dataset", "dtarget_pct", "grna_cbr", "rg_cbr"],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


# ----------------------------------------------------------------------
# Fig. 9 — effect of the number of accumulated predictions
# ----------------------------------------------------------------------
def fig9_num_predictions(
    scale: "str | ScaleConfig" = "default",
    *,
    datasets: tuple[str, ...] = ("synthetic1", "synthetic2", "drive", "news"),
    pool_fractions: tuple[float, ...] = (0.1, 0.3, 0.5),
    seed: int = 9,
) -> ExperimentResult:
    """GRNA-NN accuracy vs number of accumulated predictions (Fig. 9)."""
    scale = get_scale(scale)
    rows = []
    pool_size = scale.n_samples // 2  # half the data is the prediction pool
    for dataset in datasets:
        for fraction in scale.fractions:
            for pool_fraction in pool_fractions:
                n_pred = max(16, int(pool_size * pool_fraction))
                mses, rg_u, rg_g = [], [], []
                for trial_seed in _trial_seeds(seed, scale.n_trials):
                    scenario = build_scenario(
                        dataset,
                        "nn",
                        fraction,
                        scale,
                        trial_seed,
                        n_predictions=n_pred,
                    )
                    x_hat = _run_grna(scenario, "nn", scale, trial_seed)
                    mses.append(mse_per_feature(x_hat, scenario.X_target))
                    u, g = _random_guess_mses(
                        scenario.view, scenario.X_adv, scenario.X_target, trial_seed
                    )
                    rg_u.append(u)
                    rg_g.append(g)
                rows.append(
                    (
                        dataset,
                        int(round(fraction * 100)),
                        int(round(pool_fraction * 100)),
                        float(np.mean(mses)),
                        float(np.mean(rg_u)),
                        float(np.mean(rg_g)),
                    )
                )
    return ExperimentResult(
        experiment_id="fig9",
        title="GRNA-NN: effect of number of accumulated predictions",
        columns=[
            "dataset",
            "dtarget_pct",
            "predictions_pct",
            "grna_mse",
            "rg_uniform_mse",
            "rg_gaussian_mse",
        ],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


# ----------------------------------------------------------------------
# Fig. 10 — per-feature MSE vs correlation diagnostics
# ----------------------------------------------------------------------
def fig10_correlations(
    scale: "str | ScaleConfig" = "default",
    *,
    seed: int = 10,
) -> ExperimentResult:
    """Per-feature reconstruction error vs correlation with x_adv and v.

    Panel (a): bank + LR at d_target = 40%; panel (b): credit + RF at 30%,
    as in the paper.
    """
    scale = get_scale(scale)
    rows = []
    panels = [("bank", "lr", 0.4), ("credit", "rf", 0.3)]
    for dataset, model_kind, fraction in panels:
        trial_seed = _trial_seeds(seed, 1)[0]
        scenario = build_scenario(dataset, model_kind, fraction, scale, trial_seed)
        x_hat = _run_grna(scenario, model_kind, scale, trial_seed)
        report = correlation_report(
            scenario.X_adv,
            scenario.X_target,
            scenario.V,
            feature_wise_mse(x_hat, scenario.X_target),
        )
        for feature_id, mse, corr_adv, corr_pred in report.rows():
            rows.append(
                (dataset, model_kind, feature_id, mse, corr_adv, corr_pred)
            )
    return ExperimentResult(
        experiment_id="fig10",
        title="Per-feature MSE vs correlation with x_adv and predictions",
        columns=["dataset", "model", "feature_id", "mse", "corr_with_adv", "corr_with_pred"],
        rows=rows,
        meta={"scale": scale.name, "seed": seed},
    )


# ----------------------------------------------------------------------
# Fig. 11 — countermeasures
# ----------------------------------------------------------------------
def fig11_defenses(
    scale: "str | ScaleConfig" = "default",
    *,
    seed: int = 11,
) -> ExperimentResult:
    """Rounding vs ESA/GRNA (panels a-d) and dropout vs GRNA (panels e-f)."""
    scale = get_scale(scale)
    rows = []
    rounding_levels = [("round_0.1", 1), ("round_0.001", 3), ("no_round", None)]

    # Panels (a)-(d): rounding on the LR model, bank + drive.
    for dataset in ("bank", "drive"):
        for fraction in scale.fractions:
            for label, digits in rounding_levels:
                esa_mses, grna_mses, rg_mses = [], [], []
                for trial_seed in _trial_seeds(seed, scale.n_trials):
                    wrapper = (
                        (lambda m, d=digits: RoundedModel(m, d))
                        if digits is not None
                        else None
                    )
                    scenario = build_scenario(
                        dataset, "lr", fraction, scale, trial_seed,
                        model_wrapper=wrapper,
                    )
                    inner = (
                        scenario.model.model if digits is not None else scenario.model
                    )
                    esa = EqualitySolvingAttack(inner, scenario.view)
                    esa_mses.append(
                        mse_per_feature(
                            esa.run(scenario.X_adv, scenario.V).x_target_hat,
                            scenario.X_target,
                        )
                    )
                    grna_rng = spawn_rngs(trial_seed + 1, 1)[0]
                    grna = GenerativeRegressionNetwork(
                        inner, scenario.view,
                        **grna_kwargs_from_scale(scale, grna_rng),
                    )
                    grna_mses.append(
                        mse_per_feature(
                            grna.run(scenario.X_adv, scenario.V).x_target_hat,
                            scenario.X_target,
                        )
                    )
                    u, _ = _random_guess_mses(
                        scenario.view, scenario.X_adv, scenario.X_target, trial_seed
                    )
                    rg_mses.append(u)
                rows.append(
                    (
                        dataset,
                        "lr",
                        label,
                        int(round(fraction * 100)),
                        float(np.mean(esa_mses)),
                        float(np.mean(grna_mses)),
                        float(np.mean(rg_mses)),
                    )
                )

    # Panels (e)-(f): dropout on the NN model, credit + news.
    for dataset in ("credit", "news"):
        for fraction in scale.fractions:
            for label, dropout in (("dropout", 0.25), ("no_dropout", 0.0)):
                grna_mses, rg_mses = [], []
                for trial_seed in _trial_seeds(seed, scale.n_trials):
                    scenario = build_scenario(
                        dataset, "nn", fraction, scale, trial_seed, dropout=dropout
                    )
                    x_hat = _run_grna(scenario, "nn", scale, trial_seed)
                    grna_mses.append(mse_per_feature(x_hat, scenario.X_target))
                    u, _ = _random_guess_mses(
                        scenario.view, scenario.X_adv, scenario.X_target, trial_seed
                    )
                    rg_mses.append(u)
                rows.append(
                    (
                        dataset,
                        "nn",
                        label,
                        int(round(fraction * 100)),
                        float("nan"),
                        float(np.mean(grna_mses)),
                        float(np.mean(rg_mses)),
                    )
                )
    return ExperimentResult(
        experiment_id="fig11",
        title="Countermeasures: rounding (LR) and dropout (NN)",
        columns=[
            "dataset",
            "model",
            "defense",
            "dtarget_pct",
            "esa_mse",
            "grna_mse",
            "rg_uniform_mse",
        ],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )
