"""Runners regenerating every figure of the paper's evaluation (§VI).

Each ``figN`` function returns an :class:`ExperimentResult` whose rows are
the series plotted in the corresponding figure. Absolute values depend on
the synthetic stand-in datasets (see DESIGN.md); the claims under
reproduction are the *shapes*: who beats whom, monotonicity in d_target,
and where the exactness threshold falls.

Every figure is decomposed into independent trial units (see
:mod:`repro.experiments.spec`): ``figN_units`` enumerates the
``(dataset, fraction, trial)`` grid, ``figN_run_unit`` executes one cell,
and ``figN_aggregate`` folds payloads back into the paper's table. The
public ``figN`` entry points run the same units serially, so classic
calls, ``run_batch(..., jobs=N)``, and store-resumed runs all produce
identical tables.

Since the scenario-API refactor every ``figN_run_unit`` is a thin
declaration over :func:`repro.api.run_scenario` — one
:class:`~repro.api.ScenarioConfig` per grid cell. The facade's seed
schedule replicates the historical runners, so the tables are
bit-identical to the pre-refactor implementation (regression-tested in
``tests/test_api_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from repro.api import DefenseStack, ScenarioConfig, build_scenario, run_scenario
from repro.config import ScaleConfig, get_scale
from repro.experiments.reporting import ExperimentResult
from repro.experiments.spec import (
    ExperimentSpec,
    TrialSpec,
    derive_trial_seeds,
    ensure_unique_unit_ids,
    group_payloads as _group_by,
    register_experiment,
)
from repro.metrics import correlation_report, feature_wise_mse

REAL_DATASETS = ("bank", "credit", "drive", "news")

#: Fig. 10 panels: (dataset, model kind, d_target fraction), as in the paper.
FIG10_PANELS = (("bank", "lr", 0.4), ("credit", "rf", 0.3))

#: Fig. 11 rounding levels: (row label, decimal digits kept; None = undefended).
ROUNDING_LEVELS = (("round_0.1", 1), ("round_0.001", 3), ("no_round", None))

#: Fig. 11 dropout levels for the NN panels: (row label, dropout probability).
DROPOUT_LEVELS = (("dropout", 0.25), ("no_dropout", 0.0))


def _pct(fraction: float) -> int:
    return int(round(fraction * 100))


def _run_serial(
    units: list[TrialSpec],
    run_unit,
    aggregate,
    scale: ScaleConfig,
    **aggregate_kwargs,
) -> ExperimentResult:
    """Execute units in-process and aggregate — the classic serial path."""
    ensure_unique_unit_ids(units)
    results = {unit.unit_id: run_unit(unit, scale) for unit in units}
    return aggregate(scale, units, results, **aggregate_kwargs)


# ----------------------------------------------------------------------
# Fig. 5 — Equality Solving Attack, MSE per feature vs d_target
# ----------------------------------------------------------------------
def fig5_units(
    scale: "str | ScaleConfig",
    *,
    datasets: tuple[str, ...] = REAL_DATASETS,
    seed: int = 5,
) -> list[TrialSpec]:
    """One unit per (dataset, fraction, trial) cell of Fig. 5."""
    scale = get_scale(scale)
    trial_seeds = derive_trial_seeds(seed, scale.n_trials)
    return [
        TrialSpec.make(
            "fig5",
            f"{dataset}:{_pct(fraction)}:t{t}",
            trial_seed,
            dataset=dataset,
            fraction=fraction,
        )
        for dataset in datasets
        for fraction in scale.fractions
        for t, trial_seed in enumerate(trial_seeds)
    ]


def fig5_run_unit(spec: TrialSpec, scale: ScaleConfig) -> dict:
    """ESA + random-guess baselines on one scenario."""
    params = spec.kwargs
    report = run_scenario(
        ScenarioConfig(
            dataset=params["dataset"],
            model="lr",
            attack="esa",
            target_fraction=params["fraction"],
            scale=scale,
            seed=spec.seed,
            baselines=("uniform", "gaussian"),
        )
    )
    return {
        "esa_mse": report.metrics["mse"],
        "rg_uniform_mse": report.metrics["rg_uniform_mse"],
        "rg_gaussian_mse": report.metrics["rg_gaussian_mse"],
        "exact": bool(report.result.info["is_exact"]),
    }


def fig5_aggregate(
    scale: "str | ScaleConfig",
    units: list[TrialSpec],
    results: dict[str, dict],
    *,
    seed: int = 5,
) -> ExperimentResult:
    """Average trials into the Fig. 5 series."""
    scale = get_scale(scale)
    rows = []
    for (dataset, fraction), payloads in _group_by(
        units, results, "dataset", "fraction"
    ).items():
        rows.append(
            (
                dataset,
                _pct(fraction),
                float(np.mean([p["esa_mse"] for p in payloads])),
                float(np.mean([p["rg_uniform_mse"] for p in payloads])),
                float(np.mean([p["rg_gaussian_mse"] for p in payloads])),
                all(p["exact"] for p in payloads),
            )
        )
    return ExperimentResult(
        experiment_id="fig5",
        title="ESA: MSE per feature vs d_target fraction",
        columns=["dataset", "dtarget_pct", "esa_mse", "rg_uniform_mse", "rg_gaussian_mse", "exact"],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


def fig5_esa(
    scale: "str | ScaleConfig" = "default",
    *,
    datasets: tuple[str, ...] = REAL_DATASETS,
    seed: int = 5,
) -> ExperimentResult:
    """ESA vs random guess across d_target fractions (Fig. 5 series)."""
    scale = get_scale(scale)
    units = fig5_units(scale, datasets=datasets, seed=seed)
    return _run_serial(units, fig5_run_unit, fig5_aggregate, scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 6 — Path Restriction Attack, CBR vs d_target
# ----------------------------------------------------------------------
def fig6_units(
    scale: "str | ScaleConfig",
    *,
    datasets: tuple[str, ...] = REAL_DATASETS,
    seed: int = 6,
) -> list[TrialSpec]:
    """One unit per (dataset, fraction, trial) cell of Fig. 6."""
    scale = get_scale(scale)
    trial_seeds = derive_trial_seeds(seed, scale.n_trials)
    return [
        TrialSpec.make(
            "fig6",
            f"{dataset}:{_pct(fraction)}:t{t}",
            trial_seed,
            dataset=dataset,
            fraction=fraction,
        )
        for dataset in datasets
        for fraction in scale.fractions
        for t, trial_seed in enumerate(trial_seeds)
    ]


def fig6_run_unit(spec: TrialSpec, scale: ScaleConfig) -> dict:
    """PRA + random-path baseline over every accumulated prediction."""
    params = spec.kwargs
    report = run_scenario(
        ScenarioConfig(
            dataset=params["dataset"],
            model="dt",
            attack="pra",
            target_fraction=params["fraction"],
            scale=scale,
            seed=spec.seed,
            baselines=("path",),
        )
    )
    return {
        "pra_cbr": report.metrics["pra_cbr"],
        "rg_cbr": report.metrics["rg_path_cbr"],
        "restricted": report.metrics["restricted_fractions"],
    }


def fig6_aggregate(
    scale: "str | ScaleConfig",
    units: list[TrialSpec],
    results: dict[str, dict],
    *,
    seed: int = 6,
) -> ExperimentResult:
    """Average trials into the Fig. 6 series."""
    scale = get_scale(scale)
    rows = []
    for (dataset, fraction), payloads in _group_by(
        units, results, "dataset", "fraction"
    ).items():
        restricted = [value for p in payloads for value in p["restricted"]]
        rows.append(
            (
                dataset,
                _pct(fraction),
                float(np.nanmean([p["pra_cbr"] for p in payloads])),
                float(np.nanmean([p["rg_cbr"] for p in payloads])),
                float(np.mean(restricted)),
            )
        )
    return ExperimentResult(
        experiment_id="fig6",
        title="PRA: correct branching rate vs d_target fraction",
        columns=["dataset", "dtarget_pct", "pra_cbr", "rg_cbr", "restricted_fraction"],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


def fig6_pra(
    scale: "str | ScaleConfig" = "default",
    *,
    datasets: tuple[str, ...] = REAL_DATASETS,
    seed: int = 6,
) -> ExperimentResult:
    """PRA vs random-path guess across d_target fractions (Fig. 6 series)."""
    scale = get_scale(scale)
    units = fig6_units(scale, datasets=datasets, seed=seed)
    return _run_serial(units, fig6_run_unit, fig6_aggregate, scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 7 — GRNA MSE for LR / RF / NN models
# ----------------------------------------------------------------------
def fig7_units(
    scale: "str | ScaleConfig",
    *,
    datasets: tuple[str, ...] = REAL_DATASETS,
    models: tuple[str, ...] = ("lr", "rf", "nn"),
    seed: int = 7,
) -> list[TrialSpec]:
    """One unit per (dataset, fraction, trial); a unit spans all models.

    The random-guess baseline is scored on the last model's scenario (the
    paper's protocol accumulates one pool per trial), so the whole trial
    is one unit rather than one unit per model.
    """
    scale = get_scale(scale)
    trial_seeds = derive_trial_seeds(seed, scale.n_trials)
    return [
        TrialSpec.make(
            "fig7",
            f"{dataset}:{_pct(fraction)}:t{t}",
            trial_seed,
            dataset=dataset,
            fraction=fraction,
            models=tuple(models),
        )
        for dataset in datasets
        for fraction in scale.fractions
        for t, trial_seed in enumerate(trial_seeds)
    ]


def fig7_run_unit(spec: TrialSpec, scale: ScaleConfig) -> dict:
    """GRNA against every model kind on one trial's scenarios."""
    params = spec.kwargs
    models = tuple(params["models"])
    payload: dict[str, float] = {}
    report = None
    for model_kind in models:
        is_last = model_kind == models[-1]
        report = run_scenario(
            ScenarioConfig(
                dataset=params["dataset"],
                model=model_kind,
                attack="grna",
                target_fraction=params["fraction"],
                scale=scale,
                seed=spec.seed,
                baselines=("uniform", "gaussian") if is_last else (),
            )
        )
        payload[f"grna_{model_kind}_mse"] = report.metrics["mse"]
    payload["rg_uniform_mse"] = report.metrics["rg_uniform_mse"]
    payload["rg_gaussian_mse"] = report.metrics["rg_gaussian_mse"]
    return payload


def fig7_shard_unit(unit: TrialSpec, scale: ScaleConfig) -> list[TrialSpec]:
    """One shard per model kind: ``bank:40:t0`` → ``bank:40:t0@lr`` ...

    A fig7 unit runs GRNA against every model on one trial's pool; each
    model's scenario is built from the same derived streams, so the
    per-model runs are independent and cache cleanly as shards. Every
    shard carries ``models=(kind,)`` — :func:`fig7_run_unit` then treats
    its single model as the last one and scores the random-guess
    baselines, which are bit-identical across shards (the guess depends
    only on the trial's pool and seed, never on the model kind).
    """
    params = unit.kwargs
    return [
        TrialSpec.make(
            unit.experiment_id,
            f"{unit.unit_id}@{model_kind}",
            unit.seed,
            dataset=params["dataset"],
            fraction=params["fraction"],
            models=(model_kind,),
        )
        for model_kind in params["models"]
    ]


def fig7_merge_shards(
    unit: TrialSpec, shards: list[TrialSpec], results: dict[str, dict]
) -> dict:
    """Fold per-model shard payloads back into the unit payload.

    Each shard contributes its ``grna_<model>_mse``; the baseline keys
    overwrite left-to-right, leaving the last shard's — matching the
    unsharded protocol, which scores baselines on the last model's
    scenario (and the values agree bitwise anyway).
    """
    merged: dict[str, float] = {}
    for shard in shards:
        merged.update(results[shard.unit_id])
    return merged


def fig7_aggregate(
    scale: "str | ScaleConfig",
    units: list[TrialSpec],
    results: dict[str, dict],
    *,
    seed: int = 7,
) -> ExperimentResult:
    """Average trials into the Fig. 7 series (one MSE column per model)."""
    scale = get_scale(scale)
    models = tuple(units[0].kwargs["models"]) if units else ("lr", "rf", "nn")
    rows = []
    for (dataset, fraction), payloads in _group_by(
        units, results, "dataset", "fraction"
    ).items():
        rows.append(
            (
                dataset,
                _pct(fraction),
                *(
                    float(np.mean([p[f"grna_{m}_mse"] for p in payloads]))
                    for m in models
                ),
                float(np.mean([p["rg_uniform_mse"] for p in payloads])),
                float(np.mean([p["rg_gaussian_mse"] for p in payloads])),
            )
        )
    return ExperimentResult(
        experiment_id="fig7",
        title="GRNA: MSE per feature vs d_target fraction (LR/RF/NN)",
        columns=[
            "dataset",
            "dtarget_pct",
            *(f"grna_{m}_mse" for m in models),
            "rg_uniform_mse",
            "rg_gaussian_mse",
        ],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


def fig7_grna(
    scale: "str | ScaleConfig" = "default",
    *,
    datasets: tuple[str, ...] = REAL_DATASETS,
    models: tuple[str, ...] = ("lr", "rf", "nn"),
    seed: int = 7,
) -> ExperimentResult:
    """GRNA on LR/RF/NN vs random guess (Fig. 7 series)."""
    scale = get_scale(scale)
    units = fig7_units(scale, datasets=datasets, models=models, seed=seed)
    return _run_serial(units, fig7_run_unit, fig7_aggregate, scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 8 — GRNA on the RF model, CBR metric
# ----------------------------------------------------------------------
def fig8_units(
    scale: "str | ScaleConfig",
    *,
    datasets: tuple[str, ...] = REAL_DATASETS,
    seed: int = 8,
) -> list[TrialSpec]:
    """One unit per (dataset, fraction, trial) cell of Fig. 8."""
    scale = get_scale(scale)
    trial_seeds = derive_trial_seeds(seed, scale.n_trials)
    return [
        TrialSpec.make(
            "fig8",
            f"{dataset}:{_pct(fraction)}:t{t}",
            trial_seed,
            dataset=dataset,
            fraction=fraction,
        )
        for dataset in datasets
        for fraction in scale.fractions
        for t, trial_seed in enumerate(trial_seeds)
    ]


def fig8_run_unit(spec: TrialSpec, scale: ScaleConfig) -> dict:
    """Branch agreement of one GRNA reconstruction on the true forest."""
    params = spec.kwargs
    report = run_scenario(
        ScenarioConfig(
            dataset=params["dataset"],
            model="rf",
            attack="grna",
            target_fraction=params["fraction"],
            scale=scale,
            seed=spec.seed,
            baselines=("uniform",),
            compute_cbr=True,
        )
    )
    return {
        "grna_cbr": report.metrics["cbr"],
        "rg_cbr": report.metrics["rg_uniform_cbr"],
    }


def fig8_aggregate(
    scale: "str | ScaleConfig",
    units: list[TrialSpec],
    results: dict[str, dict],
    *,
    seed: int = 8,
) -> ExperimentResult:
    """Average trials into the Fig. 8 series."""
    scale = get_scale(scale)
    rows = []
    for (dataset, fraction), payloads in _group_by(
        units, results, "dataset", "fraction"
    ).items():
        rows.append(
            (
                dataset,
                _pct(fraction),
                float(np.nanmean([p["grna_cbr"] for p in payloads])),
                float(np.nanmean([p["rg_cbr"] for p in payloads])),
            )
        )
    return ExperimentResult(
        experiment_id="fig8",
        title="GRNA on RF: correct branching rate vs d_target fraction",
        columns=["dataset", "dtarget_pct", "grna_cbr", "rg_cbr"],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


def fig8_grna_rf_cbr(
    scale: "str | ScaleConfig" = "default",
    *,
    datasets: tuple[str, ...] = REAL_DATASETS,
    seed: int = 8,
) -> ExperimentResult:
    """Branch agreement of GRNA reconstructions on the true forest (Fig. 8)."""
    scale = get_scale(scale)
    units = fig8_units(scale, datasets=datasets, seed=seed)
    return _run_serial(units, fig8_run_unit, fig8_aggregate, scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 9 — effect of the number of accumulated predictions
# ----------------------------------------------------------------------
def fig9_units(
    scale: "str | ScaleConfig",
    *,
    datasets: tuple[str, ...] = ("synthetic1", "synthetic2", "drive", "news"),
    pool_fractions: tuple[float, ...] = (0.1, 0.3, 0.5),
    seed: int = 9,
) -> list[TrialSpec]:
    """One unit per (dataset, fraction, pool fraction, trial) cell."""
    scale = get_scale(scale)
    trial_seeds = derive_trial_seeds(seed, scale.n_trials)
    return [
        TrialSpec.make(
            "fig9",
            f"{dataset}:{_pct(fraction)}:p{_pct(pool_fraction)}:t{t}",
            trial_seed,
            dataset=dataset,
            fraction=fraction,
            pool_fraction=pool_fraction,
        )
        for dataset in datasets
        for fraction in scale.fractions
        for pool_fraction in pool_fractions
        for t, trial_seed in enumerate(trial_seeds)
    ]


def fig9_run_unit(spec: TrialSpec, scale: ScaleConfig) -> dict:
    """GRNA-NN with a restricted prediction pool on one scenario."""
    params = spec.kwargs
    pool_size = scale.n_samples // 2  # half the data is the prediction pool
    n_pred = max(16, int(pool_size * params["pool_fraction"]))
    report = run_scenario(
        ScenarioConfig(
            dataset=params["dataset"],
            model="nn",
            attack="grna",
            target_fraction=params["fraction"],
            n_predictions=n_pred,
            scale=scale,
            seed=spec.seed,
            baselines=("uniform", "gaussian"),
        )
    )
    return {
        "grna_mse": report.metrics["mse"],
        "rg_uniform_mse": report.metrics["rg_uniform_mse"],
        "rg_gaussian_mse": report.metrics["rg_gaussian_mse"],
    }


def fig9_aggregate(
    scale: "str | ScaleConfig",
    units: list[TrialSpec],
    results: dict[str, dict],
    *,
    seed: int = 9,
) -> ExperimentResult:
    """Average trials into the Fig. 9 series."""
    scale = get_scale(scale)
    rows = []
    for (dataset, fraction, pool_fraction), payloads in _group_by(
        units, results, "dataset", "fraction", "pool_fraction"
    ).items():
        rows.append(
            (
                dataset,
                _pct(fraction),
                _pct(pool_fraction),
                float(np.mean([p["grna_mse"] for p in payloads])),
                float(np.mean([p["rg_uniform_mse"] for p in payloads])),
                float(np.mean([p["rg_gaussian_mse"] for p in payloads])),
            )
        )
    return ExperimentResult(
        experiment_id="fig9",
        title="GRNA-NN: effect of number of accumulated predictions",
        columns=[
            "dataset",
            "dtarget_pct",
            "predictions_pct",
            "grna_mse",
            "rg_uniform_mse",
            "rg_gaussian_mse",
        ],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


def fig9_num_predictions(
    scale: "str | ScaleConfig" = "default",
    *,
    datasets: tuple[str, ...] = ("synthetic1", "synthetic2", "drive", "news"),
    pool_fractions: tuple[float, ...] = (0.1, 0.3, 0.5),
    seed: int = 9,
) -> ExperimentResult:
    """GRNA-NN accuracy vs number of accumulated predictions (Fig. 9)."""
    scale = get_scale(scale)
    units = fig9_units(
        scale, datasets=datasets, pool_fractions=pool_fractions, seed=seed
    )
    return _run_serial(units, fig9_run_unit, fig9_aggregate, scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 10 — per-feature MSE vs correlation diagnostics
# ----------------------------------------------------------------------
def fig10_units(
    scale: "str | ScaleConfig",
    *,
    seed: int = 10,
) -> list[TrialSpec]:
    """One unit per Fig. 10 panel."""
    get_scale(scale)
    trial_seed = derive_trial_seeds(seed, 1)[0]
    return [
        TrialSpec.make(
            "fig10",
            f"{dataset}:{model_kind}:{_pct(fraction)}",
            trial_seed,
            dataset=dataset,
            model=model_kind,
            fraction=fraction,
        )
        for dataset, model_kind, fraction in FIG10_PANELS
    ]


def fig10_run_unit(spec: TrialSpec, scale: ScaleConfig) -> dict:
    """One panel: per-feature errors and correlation diagnostics."""
    params = spec.kwargs
    report = run_scenario(
        ScenarioConfig(
            dataset=params["dataset"],
            model=params["model"],
            attack="grna",
            target_fraction=params["fraction"],
            scale=scale,
            seed=spec.seed,
        )
    )
    scenario = report.scenario
    diagnostics = correlation_report(
        scenario.X_adv,
        scenario.X_target,
        scenario.V,
        feature_wise_mse(report.result.x_target_hat, scenario.X_target),
    )
    return {
        "rows": [
            [int(feature_id), float(mse), float(corr_adv), float(corr_pred)]
            for feature_id, mse, corr_adv, corr_pred in diagnostics.rows()
        ]
    }


def fig10_aggregate(
    scale: "str | ScaleConfig",
    units: list[TrialSpec],
    results: dict[str, dict],
    *,
    seed: int = 10,
) -> ExperimentResult:
    """Concatenate the panels into the Fig. 10 table."""
    scale = get_scale(scale)
    rows = []
    for unit in units:
        params = unit.kwargs
        for feature_id, mse, corr_adv, corr_pred in results[unit.unit_id]["rows"]:
            rows.append(
                (params["dataset"], params["model"], feature_id, mse, corr_adv, corr_pred)
            )
    return ExperimentResult(
        experiment_id="fig10",
        title="Per-feature MSE vs correlation with x_adv and predictions",
        columns=["dataset", "model", "feature_id", "mse", "corr_with_adv", "corr_with_pred"],
        rows=rows,
        meta={"scale": scale.name, "seed": seed},
    )


def fig10_correlations(
    scale: "str | ScaleConfig" = "default",
    *,
    seed: int = 10,
) -> ExperimentResult:
    """Per-feature reconstruction error vs correlation with x_adv and v.

    Panel (a): bank + LR at d_target = 40%; panel (b): credit + RF at 30%,
    as in the paper.
    """
    scale = get_scale(scale)
    units = fig10_units(scale, seed=seed)
    return _run_serial(units, fig10_run_unit, fig10_aggregate, scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 11 — countermeasures
# ----------------------------------------------------------------------
def fig11_units(
    scale: "str | ScaleConfig",
    *,
    seed: int = 11,
) -> list[TrialSpec]:
    """Units for the rounding panels (a-d) and dropout panels (e-f)."""
    scale = get_scale(scale)
    trial_seeds = derive_trial_seeds(seed, scale.n_trials)
    units = []
    for dataset in ("bank", "drive"):
        for fraction in scale.fractions:
            for label, digits in ROUNDING_LEVELS:
                for t, trial_seed in enumerate(trial_seeds):
                    units.append(
                        TrialSpec.make(
                            "fig11",
                            f"{dataset}:lr:{label}:{_pct(fraction)}:t{t}",
                            trial_seed,
                            dataset=dataset,
                            model="lr",
                            defense=label,
                            digits=digits,
                            fraction=fraction,
                        )
                    )
    for dataset in ("credit", "news"):
        for fraction in scale.fractions:
            for label, dropout in DROPOUT_LEVELS:
                for t, trial_seed in enumerate(trial_seeds):
                    units.append(
                        TrialSpec.make(
                            "fig11",
                            f"{dataset}:nn:{label}:{_pct(fraction)}:t{t}",
                            trial_seed,
                            dataset=dataset,
                            model="nn",
                            defense=label,
                            dropout=dropout,
                            fraction=fraction,
                        )
                    )
    return units


def fig11_run_unit(spec: TrialSpec, scale: ScaleConfig) -> dict:
    """One defended trial: rounding on LR, or dropout on NN.

    The rounding defense rides the scenario API's defense stack; the
    attacks automatically target the undefended released weights (the
    facade unwraps output defenses) while V passes through the rounding.
    """
    params = spec.kwargs
    if params["model"] == "lr":
        digits = params["digits"]
        defenses = (
            (("rounding", {"digits": digits}),) if digits is not None else ()
        )
        # Both attacks score the same deployment, so build it once and
        # hand the prebuilt scenario to each run_scenario call.
        stack = DefenseStack.from_specs(defenses)
        shared = build_scenario(
            params["dataset"],
            "lr",
            params["fraction"],
            scale,
            spec.seed,
            defense_stack=stack if len(stack) else None,
        )
        esa_report = run_scenario(
            ScenarioConfig(
                dataset=params["dataset"],
                model="lr",
                attack="esa",
                defenses=defenses,
                target_fraction=params["fraction"],
                scale=scale,
                seed=spec.seed,
                baselines=("uniform",),
            ),
            scenario=shared,
        )
        grna_report = run_scenario(
            ScenarioConfig(
                dataset=params["dataset"],
                model="lr",
                attack="grna",
                defenses=defenses,
                target_fraction=params["fraction"],
                scale=scale,
                seed=spec.seed,
            ),
            scenario=shared,
        )
        return {
            "esa_mse": esa_report.metrics["mse"],
            "grna_mse": grna_report.metrics["mse"],
            "rg_uniform_mse": esa_report.metrics["rg_uniform_mse"],
        }
    report = run_scenario(
        ScenarioConfig(
            dataset=params["dataset"],
            model="nn",
            attack="grna",
            target_fraction=params["fraction"],
            scale=scale,
            seed=spec.seed,
            model_params={"dropout": params["dropout"]},
            baselines=("uniform",),
        )
    )
    return {
        "esa_mse": float("nan"),
        "grna_mse": report.metrics["mse"],
        "rg_uniform_mse": report.metrics["rg_uniform_mse"],
    }


def fig11_aggregate(
    scale: "str | ScaleConfig",
    units: list[TrialSpec],
    results: dict[str, dict],
    *,
    seed: int = 11,
) -> ExperimentResult:
    """Average trials into the Fig. 11 table (ESA column NaN for NN rows)."""
    scale = get_scale(scale)
    rows = []
    for (dataset, model, defense, fraction), payloads in _group_by(
        units, results, "dataset", "model", "defense", "fraction"
    ).items():
        esa = (
            float(np.mean([p["esa_mse"] for p in payloads]))
            if model == "lr"
            else float("nan")
        )
        rows.append(
            (
                dataset,
                model,
                defense,
                _pct(fraction),
                esa,
                float(np.mean([p["grna_mse"] for p in payloads])),
                float(np.mean([p["rg_uniform_mse"] for p in payloads])),
            )
        )
    return ExperimentResult(
        experiment_id="fig11",
        title="Countermeasures: rounding (LR) and dropout (NN)",
        columns=[
            "dataset",
            "model",
            "defense",
            "dtarget_pct",
            "esa_mse",
            "grna_mse",
            "rg_uniform_mse",
        ],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


def fig11_defenses(
    scale: "str | ScaleConfig" = "default",
    *,
    seed: int = 11,
) -> ExperimentResult:
    """Rounding vs ESA/GRNA (panels a-d) and dropout vs GRNA (panels e-f)."""
    scale = get_scale(scale)
    units = fig11_units(scale, seed=seed)
    return _run_serial(units, fig11_run_unit, fig11_aggregate, scale, seed=seed)


# ----------------------------------------------------------------------
# Beyond the paper — query-budget sweep through the serving layer
# ----------------------------------------------------------------------
#: Budgets as fractions of the scale's full prediction pool.
BUDGET_FRACTIONS = (0.25, 0.5, 1.0)


def budget_units(
    scale: "str | ScaleConfig",
    *,
    datasets: tuple[str, ...] = ("bank", "news"),
    budget_fractions: tuple[float, ...] = BUDGET_FRACTIONS,
    seed: int = 13,
) -> list[TrialSpec]:
    """One unit per (dataset, budget fraction, trial) cell."""
    scale = get_scale(scale)
    trial_seeds = derive_trial_seeds(seed, scale.n_trials)
    return [
        TrialSpec.make(
            "budget",
            f"{dataset}:q{_pct(budget_fraction)}:t{t}",
            trial_seed,
            dataset=dataset,
            budget_fraction=budget_fraction,
        )
        for dataset in datasets
        for budget_fraction in budget_fractions
        for t, trial_seed in enumerate(trial_seeds)
    ]


def budget_run_unit(spec: TrialSpec, scale: ScaleConfig) -> dict:
    """GRNA-NN against a metered deployment that truncates at the budget.

    The serving-layer twin of Fig. 9: instead of the adversary *choosing*
    to accumulate fewer predictions, the deployment's query ledger stops
    serving once the budget is spent (``on_budget_exhausted="truncate"``),
    and the attack trains on whatever prefix it could afford. At budget
    fraction 1.0 the ledger never binds, which pins the sweep to the
    unmetered baseline.
    """
    params = spec.kwargs
    budget = max(16, int(round(scale.n_predictions * params["budget_fraction"])))
    report = run_scenario(
        ScenarioConfig(
            dataset=params["dataset"],
            model="nn",
            attack="grna",
            target_fraction=0.4,
            scale=scale,
            seed=spec.seed,
            baselines=("uniform",),
            query_budget=budget,
            batch_size=max(16, budget // 4),
            on_budget_exhausted="truncate",
        )
    )
    return {
        "grna_mse": report.metrics["mse"],
        "rg_uniform_mse": report.metrics["rg_uniform_mse"],
        "queries_used": report.queries_used,
    }


def budget_aggregate(
    scale: "str | ScaleConfig",
    units: list[TrialSpec],
    results: dict[str, dict],
    *,
    seed: int = 13,
) -> ExperimentResult:
    """Average trials into the budget-sweep series."""
    scale = get_scale(scale)
    rows = []
    for (dataset, budget_fraction), payloads in _group_by(
        units, results, "dataset", "budget_fraction"
    ).items():
        rows.append(
            (
                dataset,
                _pct(budget_fraction),
                int(np.mean([p["queries_used"] for p in payloads])),
                float(np.mean([p["grna_mse"] for p in payloads])),
                float(np.mean([p["rg_uniform_mse"] for p in payloads])),
            )
        )
    return ExperimentResult(
        experiment_id="budget",
        title="GRNA-NN under a serving-layer query budget (truncating ledger)",
        columns=["dataset", "budget_pct", "queries_used", "grna_mse", "rg_uniform_mse"],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


def budget_sweep(
    scale: "str | ScaleConfig" = "default",
    *,
    datasets: tuple[str, ...] = ("bank", "news"),
    budget_fractions: tuple[float, ...] = BUDGET_FRACTIONS,
    seed: int = 13,
) -> ExperimentResult:
    """GRNA accuracy vs the deployment's query budget (serving layer)."""
    scale = get_scale(scale)
    units = budget_units(
        scale, datasets=datasets, budget_fractions=budget_fractions, seed=seed
    )
    return _run_serial(units, budget_run_unit, budget_aggregate, scale, seed=seed)


# ----------------------------------------------------------------------
# Beyond the paper — communication-budget sweep through the federation
# runtime
# ----------------------------------------------------------------------
#: Comm budgets as fractions of the undefended accumulation's exact
#: projected wire traffic (1.0 never binds — the unmetered baseline).
COMM_FRACTIONS = (0.25, 0.5, 1.0)


def comm_units(
    scale: "str | ScaleConfig",
    *,
    datasets: tuple[str, ...] = ("bank", "news"),
    comm_fractions: tuple[float, ...] = COMM_FRACTIONS,
    seed: int = 17,
) -> list[TrialSpec]:
    """One unit per (dataset, comm fraction, trial) cell."""
    scale = get_scale(scale)
    trial_seeds = derive_trial_seeds(seed, scale.n_trials)
    return [
        TrialSpec.make(
            "comm",
            f"{dataset}:c{_pct(comm_fraction)}:t{t}",
            trial_seed,
            dataset=dataset,
            comm_fraction=comm_fraction,
        )
        for dataset in datasets
        for comm_fraction in comm_fractions
        for t, trial_seed in enumerate(trial_seeds)
    ]


def comm_run_unit(spec: TrialSpec, scale: ScaleConfig) -> dict:
    """GRNA-NN against a deployment whose *wire traffic* is budgeted.

    The federation twin of the ``budget`` experiment one layer down:
    instead of capping how many confidence rows the adversary may
    *learn*, the :class:`~repro.federation.CommLedger` caps how many
    bytes the protocol may *move*. The accumulation runs in (up to)
    four padded protocol rounds; a fractional ``comm_budget`` is
    resolved against the run's exact projected traffic
    (:meth:`~repro.federation.FederationRuntime.estimate_predict_bytes`),
    floored at one round's cost by the facade — so at the usual scales
    0.25 affords exactly one round, 0.5 two, 1.0 pins the sweep to the
    unmetered baseline bit-for-bit, and any legal custom scale still
    produces a data point instead of an empty pool.
    """
    params = spec.kwargs
    batch = max(1, -(-scale.n_predictions // 4))
    report = run_scenario(
        ScenarioConfig(
            dataset=params["dataset"],
            model="nn",
            attack="grna",
            target_fraction=0.4,
            scale=scale,
            seed=spec.seed,
            baselines=("uniform",),
            comm_budget=float(params["comm_fraction"]),
            batch_size=batch,
            on_budget_exhausted="truncate",
        )
    )
    return {
        "grna_mse": report.metrics["mse"],
        "rg_uniform_mse": report.metrics["rg_uniform_mse"],
        "queries_used": report.queries_used,
        "comm_bytes": report.comm_cost["bytes"],
    }


def comm_aggregate(
    scale: "str | ScaleConfig",
    units: list[TrialSpec],
    results: dict[str, dict],
    *,
    seed: int = 17,
) -> ExperimentResult:
    """Average trials into the communication-budget series."""
    scale = get_scale(scale)
    rows = []
    for (dataset, comm_fraction), payloads in _group_by(
        units, results, "dataset", "comm_fraction"
    ).items():
        rows.append(
            (
                dataset,
                _pct(comm_fraction),
                int(np.mean([p["comm_bytes"] for p in payloads])),
                int(np.mean([p["queries_used"] for p in payloads])),
                float(np.mean([p["grna_mse"] for p in payloads])),
                float(np.mean([p["rg_uniform_mse"] for p in payloads])),
            )
        )
    return ExperimentResult(
        experiment_id="comm",
        title="GRNA-NN under a federation communication budget (truncating rounds)",
        columns=[
            "dataset",
            "comm_pct",
            "comm_bytes",
            "queries_used",
            "grna_mse",
            "rg_uniform_mse",
        ],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


def comm_sweep(
    scale: "str | ScaleConfig" = "default",
    *,
    datasets: tuple[str, ...] = ("bank", "news"),
    comm_fractions: tuple[float, ...] = COMM_FRACTIONS,
    seed: int = 17,
) -> ExperimentResult:
    """GRNA accuracy vs the protocol's communication budget (federation)."""
    scale = get_scale(scale)
    units = comm_units(
        scale, datasets=datasets, comm_fractions=comm_fractions, seed=seed
    )
    return _run_serial(units, comm_run_unit, comm_aggregate, scale, seed=seed)


for _spec in (
    ExperimentSpec("fig5", fig5_units, fig5_run_unit, fig5_aggregate),
    ExperimentSpec("fig6", fig6_units, fig6_run_unit, fig6_aggregate),
    ExperimentSpec(
        "fig7",
        fig7_units,
        fig7_run_unit,
        fig7_aggregate,
        shard_unit=fig7_shard_unit,
        merge_shards=fig7_merge_shards,
    ),
    ExperimentSpec("fig8", fig8_units, fig8_run_unit, fig8_aggregate),
    ExperimentSpec("fig9", fig9_units, fig9_run_unit, fig9_aggregate),
    ExperimentSpec("fig10", fig10_units, fig10_run_unit, fig10_aggregate),
    ExperimentSpec("fig11", fig11_units, fig11_run_unit, fig11_aggregate),
    ExperimentSpec("budget", budget_units, budget_run_unit, budget_aggregate),
    ExperimentSpec("comm", comm_units, comm_run_unit, comm_aggregate),
):
    register_experiment(_spec)
del _spec
