"""Persistent, resumable results store for experiment trial units.

Results live as JSON-lines files, one per experiment
(``<store-dir>/<experiment_id>.jsonl``), each line one
:class:`RunSummary`. A record is keyed by
``(experiment_id, scale, unit_id, config_hash)``: the batch runner skips
any unit whose key is already present, which is what makes interrupted
runs resumable and repeated runs near-instant. Appending is the only
write operation — the latest record for a key wins — so a crashed run
never corrupts earlier results.

Crash safety is explicit: every :meth:`ResultsStore.put` is flushed and
fsynced before returning (a record the runner believes persisted *is*
persisted, even through a SIGKILL), and :meth:`ResultsStore._load`
tolerates the one artifact a kill can still leave — a truncated trailing
line. The partial line is quarantined to ``<experiment>.jsonl.partial``
and the store file atomically rewritten without it, so every completed
record survives and the interrupted unit simply reruns.

Usage::

    store = ResultsStore("/tmp/results")
    store.put(RunSummary("fig5", "bank:40:t0", "smoke", 123, "deadbeef", {...}))
    cached = store.get("fig5", "smoke", "bank:40:t0", "deadbeef")
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator


@dataclass(frozen=True)
class RunSummary:
    """One completed trial unit, as persisted in the store.

    Attributes
    ----------
    experiment_id / unit_id / scale / seed / config_hash:
        The unit's identity (see :func:`repro.experiments.spec.config_hash`
        for what the hash covers).
    payload:
        The JSON-serializable dict returned by the unit's ``run_unit``.
    elapsed_s:
        Wall-clock seconds the unit took.
    created_at:
        ISO-8601 UTC timestamp of completion.
    """

    experiment_id: str
    unit_id: str
    scale: str
    seed: int
    config_hash: str
    payload: dict[str, Any] = field(default_factory=dict)
    elapsed_s: float = 0.0
    created_at: str = ""

    @property
    def key(self) -> tuple[str, str, str, str]:
        """The store key: (experiment_id, scale, unit_id, config_hash)."""
        return (self.experiment_id, self.scale, self.unit_id, self.config_hash)

    def to_json(self) -> str:
        """Serialize to one JSON line."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "RunSummary":
        """Parse a JSON line back into a summary (extra keys ignored)."""
        data = json.loads(line)
        names = {f for f in cls.__dataclass_fields__}  # noqa: C416 - py3.9 compat
        return cls(**{k: v for k, v in data.items() if k in names})


def utc_now() -> str:
    """Current UTC time as an ISO-8601 string.

    Stamped into ``created_at`` metadata only; unit identity is the
    ``(experiment, scale, unit_id, config_hash)`` key, never the stamp.
    """
    # repro: allow[wallclock-entropy] created_at is audit metadata, excluded from result identity
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


class ResultsStore:
    """Append-only JSON-lines store of :class:`RunSummary` records.

    Parameters
    ----------
    root:
        Directory holding one ``<experiment_id>.jsonl`` file per
        experiment. Created on first use.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._cache: dict[str, dict[tuple, RunSummary]] = {}

    def _path(self, experiment_id: str) -> Path:
        return self.root / f"{experiment_id}.jsonl"

    def _load(self, experiment_id: str) -> dict[tuple, RunSummary]:
        """Read (and memoize) every record of one experiment, last wins.

        A truncated trailing line — the one artifact a SIGKILL mid-append
        can leave — is quarantined to ``<experiment>.jsonl.partial`` and
        the store file atomically rewritten without it; every record
        before it is recovered. Malformed *interior* lines (hand edits,
        disk damage) are skipped as before: rewriting history is not this
        method's job.
        """
        if experiment_id not in self._cache:
            records: dict[tuple, RunSummary] = {}
            path = self._path(experiment_id)
            if path.exists():
                lines = path.read_text(encoding="utf-8").splitlines()
                for lineno, raw in enumerate(lines):
                    line = raw.strip()
                    if not line:
                        continue
                    try:
                        summary = RunSummary.from_json(line)
                    except (json.JSONDecodeError, TypeError):
                        if lineno == len(lines) - 1:
                            self._quarantine_partial(path, lines[:lineno], raw)
                        continue
                    records[summary.key] = summary
            self._cache[experiment_id] = records
        return self._cache[experiment_id]

    @staticmethod
    def _quarantine_partial(path: Path, good_lines: list[str], partial: str) -> None:
        """Move a truncated trailing line aside and repair the store file.

        The partial line lands in ``<name>.partial`` (evidence, should
        anyone want it); the store file is rewritten *atomically* — tmp
        file, flush, fsync, rename — so a second crash mid-repair leaves
        either the damaged original or the repaired file, never less.
        """
        path.with_name(path.name + ".partial").write_text(
            partial + "\n", encoding="utf-8"
        )
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write("".join(line + "\n" for line in good_lines))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def get(
        self, experiment_id: str, scale: str, unit_id: str, config_hash: str
    ) -> "RunSummary | None":
        """Return the stored summary for a unit key, or ``None`` on miss."""
        return self._load(experiment_id).get(
            (experiment_id, scale, unit_id, config_hash)
        )

    def put(self, summary: RunSummary) -> RunSummary:
        """Append one summary (stamping ``created_at`` if unset).

        Flushed and fsynced before returning: once ``put`` hands the
        summary back, the record is durable through a process kill — the
        property the checkpointed batch runner leans on when it promises
        "no shard is ever redone after its summary landed".
        """
        if not summary.created_at:
            summary = RunSummary(**{**asdict(summary), "created_at": utc_now()})
        with self._path(summary.experiment_id).open("a", encoding="utf-8") as fh:
            fh.write(summary.to_json() + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._load(summary.experiment_id)[summary.key] = summary
        return summary

    def summaries(self, experiment_id: str) -> list[RunSummary]:
        """All (deduplicated) records of one experiment."""
        return list(self._load(experiment_id).values())

    def experiments(self) -> list[str]:
        """Experiment ids that have at least one record on disk."""
        return sorted(p.stem for p in self.root.glob("*.jsonl"))

    def __iter__(self) -> Iterator[RunSummary]:
        for experiment_id in self.experiments():
            yield from self.summaries(experiment_id)

    def __len__(self) -> int:
        return sum(len(self._load(e)) for e in self.experiments())

    def clear(self, experiment_id: "str | None" = None) -> None:
        """Drop records for one experiment (or the whole store)."""
        targets = [experiment_id] if experiment_id else self.experiments()
        for target in targets:
            self._path(target).unlink(missing_ok=True)
            self._cache.pop(target, None)
