"""Result containers and text reporting for experiments.

Every figure/table runner returns an :class:`ExperimentResult`, which knows
how to print itself as an aligned text table whose rows/series correspond
to the points plotted in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentResult:
    """One reproduced table or figure.

    Attributes
    ----------
    experiment_id:
        Paper reference, e.g. ``"fig5"`` or ``"table3"``.
    title:
        Human-readable description.
    columns:
        Column headers for :attr:`rows`.
    rows:
        The data points; each row is a sequence aligned with ``columns``.
    meta:
        Scale, seeds, and other provenance.
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]]
    meta: dict[str, Any] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render an aligned text table."""
        header = [str(c) for c in self.columns]
        body = [[_format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.meta:
            meta = ", ".join(f"{k}={v}" for k, v in sorted(self.meta.items()))
            lines.append(f"-- {meta}")
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render the rows as CSV (header + one line per data point)."""
        lines = [",".join(str(c) for c in self.columns)]
        for row in self.rows:
            lines.append(",".join(_format_csv_cell(c) for c in row))
        return "\n".join(lines) + "\n"

    def save(self, path) -> None:
        """Write the result to ``path`` — ``.csv`` as CSV, otherwise text."""
        from pathlib import Path

        path = Path(path)
        content = self.to_csv() if path.suffix == ".csv" else self.to_text() + "\n"
        path.write_text(content, encoding="utf-8")

    def column(self, name: str) -> list[Any]:
        """Extract one column of the result by header name."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def filtered(self, **criteria: Any) -> list[Sequence[Any]]:
        """Rows whose named columns equal the given values."""
        indices = {list(self.columns).index(k): v for k, v in criteria.items()}
        return [
            row
            for row in self.rows
            if all(row[i] == v for i, v in indices.items())
        ]


def _format_csv_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return "" if value != value else repr(value)
    text = str(value)
    if "," in text or '"' in text:
        text = '"' + text.replace('"', '""') + '"'
    return text


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        return f"{value:.4f}"
    return str(value)
