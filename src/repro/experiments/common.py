"""Shared scenario construction — compatibility shim over :mod:`repro.api`.

The load→partition→train→serve skeleton that every §VI figure shares
moved into the scenario API (:mod:`repro.api.scenario`), where it gained
composable defense hooks; the model factory became the ``MODELS``
registry (:mod:`repro.api.models`). This module re-exports the historical
names — :class:`VFLScenario`, :func:`build_scenario`, :func:`make_model`,
:data:`MODEL_KINDS`, :func:`grna_kwargs_from_scale` — so existing
callers keep working unchanged. New code should import from
:mod:`repro.api` directly.
"""

from repro.api.attacks import grna_kwargs_from_scale  # noqa: F401
from repro.api.models import MODEL_KINDS, make_model  # noqa: F401
from repro.api.scenario import VFLScenario, build_scenario  # noqa: F401

__all__ = [
    "MODEL_KINDS",
    "VFLScenario",
    "build_scenario",
    "grna_kwargs_from_scale",
    "make_model",
]
