"""Shared scenario construction for all experiments.

Every figure in §VI follows the same skeleton: load a dataset, split it
into a training half and a prediction pool (§VI-C: "first use half of the
dataset for model training and testing, then randomly select n samples
from the remaining part as the prediction dataset"), randomly assign a
fraction of the features to the attack target, train the VFL model
centrally, and serve the prediction pool through the secure protocol.
:func:`build_scenario` packages those steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import Dataset, load_dataset
from repro.exceptions import ValidationError
from repro.experiments.config import ScaleConfig
from repro.federated import (
    AdversaryView,
    FeaturePartition,
    VerticalFLModel,
    train_vertical_model,
)
from repro.models import (
    BaseClassifier,
    DecisionTreeClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
)
from repro.nn.data import train_test_split
from repro.utils.random import check_random_state, spawn_rngs

MODEL_KINDS = ("lr", "nn", "dt", "rf")


@dataclass
class VFLScenario:
    """Everything one attack experiment needs.

    Attributes
    ----------
    vfl:
        The served vertical FL model (prediction protocol + parties).
    view:
        Adversary/target column split.
    X_adv, X_target:
        The adversary's own columns and the ground-truth target columns of
        the accumulated prediction samples (``X_target`` is used only for
        scoring).
    V:
        Confidence scores the protocol revealed for those samples.
    X_pred_full:
        The full-width prediction samples (evaluation only, e.g. for CBR).
    """

    dataset: Dataset
    model: BaseClassifier
    vfl: VerticalFLModel
    view: AdversaryView
    X_adv: np.ndarray
    X_target: np.ndarray
    V: np.ndarray
    X_pred_full: np.ndarray
    y_pred: np.ndarray


def make_model(
    kind: str,
    scale: ScaleConfig,
    rng: np.random.Generator,
    *,
    dropout: float = 0.0,
) -> BaseClassifier:
    """Instantiate a VFL model of the requested kind at the given scale."""
    if kind == "lr":
        return LogisticRegression(epochs=scale.lr_epochs, rng=rng)
    if kind == "nn":
        return MLPClassifier(
            hidden_sizes=scale.mlp_hidden,
            epochs=scale.mlp_epochs,
            dropout=dropout,
            rng=rng,
        )
    if kind == "dt":
        return DecisionTreeClassifier(max_depth=scale.dt_depth, rng=rng)
    if kind == "rf":
        return RandomForestClassifier(
            n_trees=scale.rf_trees, max_depth=scale.rf_depth, rng=rng
        )
    raise ValidationError(f"unknown model kind {kind!r}; choose from {MODEL_KINDS}")


def build_scenario(
    dataset_name: str,
    model_kind: str,
    target_fraction: float,
    scale: ScaleConfig,
    seed: int,
    *,
    n_predictions: int | None = None,
    dropout: float = 0.0,
    model_wrapper=None,
) -> VFLScenario:
    """Construct one complete attack scenario.

    Parameters
    ----------
    dataset_name:
        A Table II dataset name.
    model_kind:
        ``"lr"``, ``"nn"``, ``"dt"``, or ``"rf"``.
    target_fraction:
        Fraction of features assigned to the attack target.
    scale, seed:
        Size preset and master seed (each sub-component gets an
        independent derived stream).
    n_predictions:
        Override the number of accumulated predictions.
    dropout:
        Dropout probability for the NN model (Fig. 11e-f countermeasure).
    model_wrapper:
        Optional callable applied to the fitted model before serving —
        how output defenses (e.g. ``RoundedModel``) are installed.
    """
    data_rng, part_rng, model_rng, pick_rng = spawn_rngs(seed, 4)
    dataset = load_dataset(dataset_name, n_samples=scale.n_samples, rng=data_rng)
    X_train, X_pool, y_train, y_pool = train_test_split(
        dataset.X, dataset.y, test_fraction=0.5, rng=data_rng
    )
    partition = FeaturePartition.adversary_target(
        dataset.n_features, target_fraction, rng=part_rng
    )
    view = partition.adversary_view()

    model = make_model(model_kind, scale, model_rng, dropout=dropout)
    vfl = train_vertical_model(model, X_train, y_train, X_pool, y_pool, partition)
    if model_wrapper is not None:
        vfl.model = model_wrapper(model)

    n_pred = scale.n_predictions if n_predictions is None else int(n_predictions)
    n_pred = min(n_pred, X_pool.shape[0])
    picked = check_random_state(pick_rng).choice(
        X_pool.shape[0], size=n_pred, replace=False
    )
    V = vfl.predict(picked)
    X_pred_full = X_pool[picked]
    X_adv, X_target = view.split(X_pred_full)
    return VFLScenario(
        dataset=dataset,
        model=vfl.model,
        vfl=vfl,
        view=view,
        X_adv=X_adv,
        X_target=X_target,
        V=V,
        X_pred_full=X_pred_full,
        y_pred=y_pool[picked],
    )


def grna_kwargs_from_scale(scale: ScaleConfig, rng) -> dict:
    """Generator hyper-parameters for :class:`GenerativeRegressionNetwork`."""
    return {
        "hidden_sizes": scale.grna_hidden,
        "epochs": scale.grna_epochs,
        "batch_size": scale.grna_batch_size,
        "rng": rng,
    }
