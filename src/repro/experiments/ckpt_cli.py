"""``repro-ckpt``: inspect, prune, and resume checkpoint stores.

Three subcommands over the on-disk snapshot layout of
:mod:`repro.checkpoint` and :mod:`repro.api.resume`:

``repro-ckpt inspect <dir>``
    Manifest summary of every snapshot in a
    :class:`~repro.checkpoint.SnapshotStore` directory (step,
    fingerprint, meta, fragment kinds), as JSON. Corrupt files are
    reported in-band, never raised — inspection is forensic.

``repro-ckpt prune <dir> --keep N``
    Drop all but the newest ``N`` snapshots.

``repro-ckpt resume <dir>``
    Finish the scenario run pinned in ``<dir>/scenario.json`` (see
    :func:`~repro.api.resume.run_scenario_resumable`): fresh directories
    start from scratch, interrupted ones continue from the latest
    snapshots, and either way the final report is bit-identical to an
    uninterrupted run. Prints the report summary and writes
    ``report.json``.

A scenario directory is created by a first
:func:`~repro.api.resume.run_scenario_resumable` call — or by writing
``scenario.json`` by hand (the :meth:`~repro.api.ScenarioReport.to_payload`
``config`` encoding), which is how the CI kill-and-resume smoke seeds its
victim run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.api.resume import SCENARIO_FILE, config_from_payload, run_scenario_resumable
from repro.checkpoint import SnapshotStore
from repro.exceptions import CheckpointPause, ReproError

__all__ = ["main"]


def _cmd_inspect(args: argparse.Namespace) -> int:
    entries = SnapshotStore(args.store).inspect()
    print(json.dumps(entries, indent=2, sort_keys=True, default=str))
    return 0


def _cmd_prune(args: argparse.Namespace) -> int:
    removed = SnapshotStore(args.store).prune(args.keep)
    for path in removed:
        print(f"removed {path}")
    print(f"pruned {len(removed)} snapshot(s), kept newest {args.keep}")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    store_dir = Path(args.store)
    manifest = store_dir / SCENARIO_FILE
    if not manifest.exists():
        print(
            f"error: {manifest} not found — a resumable run directory is "
            "created by run_scenario_resumable (or seed one by writing "
            "scenario.json)",
            file=sys.stderr,
        )
        return 2
    config = config_from_payload(json.loads(manifest.read_text(encoding="utf-8")))
    report = run_scenario_resumable(
        config,
        store_dir=store_dir,
        every=args.every,
        keep=args.keep,
        halt_after=args.halt_after,
    )
    print(report.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-ckpt`` argument parser (exposed for ``--help`` tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-ckpt",
        description="Inspect, prune, and resume repro checkpoint stores.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inspect = sub.add_parser(
        "inspect", help="summarize every snapshot in a store directory"
    )
    inspect.add_argument("store", help="snapshot store directory")
    inspect.set_defaults(func=_cmd_inspect)

    prune = sub.add_parser("prune", help="drop all but the newest N snapshots")
    prune.add_argument("store", help="snapshot store directory")
    prune.add_argument(
        "--keep", type=int, default=3, help="snapshots to retain (default 3)"
    )
    prune.set_defaults(func=_cmd_prune)

    resume = sub.add_parser(
        "resume", help="finish the scenario run pinned in <dir>/scenario.json"
    )
    resume.add_argument("store", help="resumable run directory")
    resume.add_argument(
        "--every", type=int, default=1, help="snapshot cadence (default 1)"
    )
    resume.add_argument(
        "--keep", type=int, default=3, help="snapshots to retain (default 3)"
    )
    resume.add_argument(
        "--halt-after",
        type=int,
        default=None,
        help="deliberately suspend GRNA training after N epochs (testing)",
    )
    resume.set_defaults(func=_cmd_resume)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """Console entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CheckpointPause as exc:
        # Deliberate suspension (--halt-after): distinct exit code so a
        # harness can tell "suspended, resume me" from a real failure.
        print(f"suspended: {exc}", file=sys.stderr)
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout closed early (inspect output piped to head/less). Point
        # stdout at devnull so interpreter shutdown doesn't re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
