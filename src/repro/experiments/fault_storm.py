"""The ``fault_storm`` experiment: attack efficacy under degraded service.

The paper evaluates every attack against a deployment that never fails;
the resilience layer makes the opposite regime measurable. For each cell
of fault rate × retry budget × quorum fraction, a 3-party deployment
(bank/NN, the paper's GRNA flagship) serves the attacker's accumulation
while both passive parties flake with the cell's probability, the
runtime retries under the cell's attempt budget, and rounds missing a
party either degrade (quorum met, ``last_known`` imputation) or abort
the scenario. Each unit reports whether the accumulation survived at
all, the attack MSE when it did, and the communication bill — bytes,
retry frames, metered timeouts, degraded-round fraction — so the
aggregate table answers two questions at once: *how much reconstruction
accuracy does degraded service cost the attacker* (imputed blocks are
noise in the adversary's view of ``V``), and *what does surviving a
storm cost the deployment on the wire*.

The zero-rate column runs the identical resilient code path (retry and
quorum engaged, no faults to trigger them), so any cost delta against
the storm columns is attributable to the storm, not the machinery.
"""

from __future__ import annotations

import numpy as np

from repro.api import ScenarioConfig, run_scenario
from repro.config import ScaleConfig, get_scale
from repro.exceptions import PartyUnavailableError
from repro.experiments.figures import _run_serial
from repro.experiments.reporting import ExperimentResult
from repro.experiments.spec import (
    ExperimentSpec,
    TrialSpec,
    derive_trial_seeds,
    group_payloads as _group_by,
    register_experiment,
)
from repro.federation import TopologyConfig

__all__ = [
    "fault_storm_units",
    "fault_storm_run_unit",
    "fault_storm_aggregate",
    "fault_storm_sweep",
]

#: Per-attempt failure probability of each passive party.
STORM_RATES = (0.0, 0.15, 0.3)

#: Retry attempt budgets (1 = the fail-fast baseline with metering on).
STORM_RETRIES = (1, 3)

#: Quorum fractions of the 3-party deployment: 2/3 needs one passive
#: party alive, 1/3 lets the active party answer entirely from imputation.
STORM_QUORUMS = (2 / 3, 1 / 3)

#: Deployment shape: dataset, model, attack, party count, serving batch.
STORM_DATASET = "bank"
STORM_MODEL = "nn"
STORM_ATTACK = "grna"
N_PARTIES = 3
STORM_BATCH = 16


def fault_storm_units(
    scale: "str | ScaleConfig",
    *,
    rates: tuple = STORM_RATES,
    retries: tuple = STORM_RETRIES,
    quorums: tuple = STORM_QUORUMS,
    seed: int = 29,
) -> list[TrialSpec]:
    """One unit per (fault rate, retry budget, quorum, trial) cell."""
    scale = get_scale(scale)
    trial_seeds = derive_trial_seeds(seed, scale.n_trials)
    return [
        TrialSpec.make(
            "fault_storm",
            f"r{round(rate * 100)}:a{budget}:q{round(quorum * 100)}:t{t}",
            trial_seed,
            rate=rate,
            retries=budget,
            quorum=quorum,
        )
        for rate in rates
        for budget in retries
        for quorum in quorums
        for t, trial_seed in enumerate(trial_seeds)
    ]


def fault_storm_run_unit(spec: TrialSpec, scale: ScaleConfig) -> dict:
    """Run one storm cell end to end; report survival, MSE, and the bill."""
    params = spec.kwargs
    rate = float(params["rate"])
    fault_seeds = derive_trial_seeds(spec.seed, N_PARTIES - 1)
    faults = tuple(
        ("flaky", {"party": party, "p": rate, "seed": fault_seeds[party - 1]})
        for party in range(1, N_PARTIES)
        if rate > 0.0
    )
    config = ScenarioConfig(
        dataset=STORM_DATASET,
        model=STORM_MODEL,
        attack=STORM_ATTACK,
        scale=scale,
        seed=spec.seed,
        topology=TopologyConfig(n_parties=N_PARTIES, faults=faults),
        batch_size=STORM_BATCH,
        retry=int(params["retries"]),
        quorum=float(params["quorum"]),
        degradation="last_known",
    )
    try:
        report = run_scenario(config)
    except PartyUnavailableError as exc:
        # Below quorum even after the retry budget: the scenario aborts
        # and the cell records a service failure instead of an MSE.
        return {"failed": True, "reason": type(exc).__name__}
    availability = report.availability
    rounds_total = max(1, int(availability["rounds_total"]))
    return {
        "failed": False,
        "mse": float(report.metrics["mse"]),
        "bytes": int(report.comm_cost["bytes"]),
        "retries": int(report.comm_cost["retries"]),
        "timeouts": int(report.comm_cost["timeouts"]),
        "rounds_total": rounds_total,
        "rounds_degraded": int(availability["rounds_degraded"]),
    }


def fault_storm_aggregate(
    scale: "str | ScaleConfig",
    units: list[TrialSpec],
    results: dict[str, dict],
    *,
    seed: int = 29,
) -> ExperimentResult:
    """Fold trials into the per-(rate, retries, quorum) resilience table."""
    scale = get_scale(scale)
    rows = []
    for (rate, budget, quorum), payloads in _group_by(
        units, results, "rate", "retries", "quorum"
    ).items():
        survived = [p for p in payloads if not p["failed"]]
        rows.append(
            (
                float(rate),
                int(budget),
                round(float(quorum), 4),
                float(np.mean([p["failed"] for p in payloads])),
                (
                    float(np.mean([p["mse"] for p in survived]))
                    if survived
                    else float("nan")
                ),
                (
                    float(np.mean([p["bytes"] for p in survived]))
                    if survived
                    else float("nan")
                ),
                int(sum(p["retries"] for p in survived)),
                int(sum(p["timeouts"] for p in survived)),
                (
                    float(
                        np.mean(
                            [p["rounds_degraded"] / p["rounds_total"] for p in survived]
                        )
                    )
                    if survived
                    else float("nan")
                ),
            )
        )
    return ExperimentResult(
        experiment_id="fault_storm",
        title=f"Fault storm: {STORM_ATTACK} on {STORM_MODEL}/{STORM_DATASET} "
        f"({N_PARTIES} parties) vs fault rate × retry budget × quorum",
        columns=[
            "fault_rate",
            "retry_budget",
            "quorum",
            "failure_rate",
            "mse",
            "comm_bytes",
            "retries",
            "timeouts",
            "degraded_fraction",
        ],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


def fault_storm_sweep(
    scale: "str | ScaleConfig" = "default",
    *,
    rates: tuple = STORM_RATES,
    retries: tuple = STORM_RETRIES,
    quorums: tuple = STORM_QUORUMS,
    seed: int = 29,
) -> ExperimentResult:
    """Attack MSE and comm cost across the storm grid."""
    scale = get_scale(scale)
    units = fault_storm_units(
        scale, rates=rates, retries=retries, quorums=quorums, seed=seed
    )
    return _run_serial(units, fault_storm_run_unit, fault_storm_aggregate, scale, seed=seed)


register_experiment(
    ExperimentSpec(
        "fault_storm", fault_storm_units, fault_storm_run_unit, fault_storm_aggregate
    )
)
