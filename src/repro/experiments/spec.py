"""Trial-unit decomposition of experiments.

Every figure/table runner used to be one monolithic loop; this module
defines the split that makes parallelism and caching possible. Each
experiment is described by an :class:`ExperimentSpec` triple:

``trial_units(scale)``
    Decompose the experiment into independent :class:`TrialSpec` units
    (typically one per ``(dataset, fraction, trial_seed)`` cell). Every
    unit carries its own deterministically derived seed, so units can run
    in any order — or in different processes — and still reproduce the
    serial result bit-for-bit.

``run_unit(spec, scale)``
    Execute one unit and return a JSON-serializable payload dict. This is
    the function the batch runner fans out across a process pool; it must
    be a module-level callable (picklable) with no shared state.

``aggregate(scale, units, results)``
    Fold the per-unit payloads back into the paper's
    :class:`~repro.experiments.reporting.ExperimentResult` table, in the
    exact row order of the original serial loop.

The registry (:data:`EXPERIMENT_SPECS`) is populated when
:mod:`repro.experiments.figures` / :mod:`repro.experiments.tables` are
imported; :func:`get_experiment_spec` imports them lazily so worker
processes that only import this module still resolve every experiment.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Callable

from repro.exceptions import ValidationError
from repro.config import ScaleConfig
from repro.experiments.reporting import ExperimentResult
from repro.utils.random import check_random_state


@dataclass(frozen=True)
class TrialSpec:
    """One independently runnable unit of an experiment.

    Attributes
    ----------
    experiment_id:
        Paper reference of the owning experiment (``"fig5"`` ...).
    unit_id:
        Key unique within the experiment, e.g. ``"bank:40:t0"``.
    seed:
        The unit's own trial seed, derived deterministically from the
        experiment's master seed (see :func:`derive_trial_seeds`) so the
        unit is self-contained and order-independent.
    params:
        Sorted ``(name, value)`` pairs with everything ``run_unit`` needs
        (dataset, fraction, model kind, ...). Kept as a tuple so specs are
        hashable and picklable.
    """

    experiment_id: str
    unit_id: str
    seed: int
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls, experiment_id: str, unit_id: str, seed: int, **params: Any
    ) -> "TrialSpec":
        """Build a spec from keyword parameters (canonically sorted)."""
        return cls(experiment_id, unit_id, int(seed), tuple(sorted(params.items())))

    @property
    def kwargs(self) -> dict[str, Any]:
        """The unit parameters as a plain dict."""
        return dict(self.params)


@dataclass(frozen=True)
class ExperimentSpec:
    """The decomposed form of one experiment (units / run / aggregate).

    ``shard_unit`` / ``merge_shards`` (optional, declared together)
    split one trial unit into finer independently runnable — and
    independently *cacheable* — sub-units: ``shard_unit(unit, scale)``
    returns the ordered shard specs (ids conventionally
    ``f"{unit.unit_id}@{part}"``) and ``merge_shards(unit, shards,
    results)`` folds their payloads back into the unit payload the
    aggregate step expects. An interrupted batch then resumes at shard
    granularity: finished shards are served from the results store and
    only unfinished ones are redone.
    """

    experiment_id: str
    trial_units: Callable[[ScaleConfig], list[TrialSpec]]
    run_unit: Callable[[TrialSpec, ScaleConfig], dict]
    aggregate: Callable[[ScaleConfig, list[TrialSpec], dict[str, dict]], ExperimentResult]
    shard_unit: "Callable[[TrialSpec, ScaleConfig], list[TrialSpec]] | None" = None
    merge_shards: (
        "Callable[[TrialSpec, list[TrialSpec], dict[str, dict]], dict] | None"
    ) = None

    def __post_init__(self) -> None:
        if (self.shard_unit is None) != (self.merge_shards is None):
            raise ValidationError(
                f"experiment {self.experiment_id!r} declares only one of "
                "shard_unit/merge_shards; sharding needs both the split "
                "and the fold"
            )


#: Registry of decomposed experiments, keyed by paper id.
EXPERIMENT_SPECS: dict[str, ExperimentSpec] = {}


def register_experiment(spec: ExperimentSpec) -> ExperimentSpec:
    """Add ``spec`` to the registry (last registration wins)."""
    EXPERIMENT_SPECS[spec.experiment_id] = spec
    return spec


def _ensure_registered() -> None:
    """Import the modules whose import side-effect fills the registry."""
    import repro.experiments.fault_storm  # noqa: F401
    import repro.experiments.figures  # noqa: F401
    import repro.experiments.tables  # noqa: F401
    import repro.experiments.traffic  # noqa: F401


def get_experiment_spec(experiment_id: str) -> ExperimentSpec:
    """Look up a decomposed experiment, importing the runners if needed."""
    if experiment_id not in EXPERIMENT_SPECS:
        _ensure_registered()
    try:
        return EXPERIMENT_SPECS[experiment_id]
    except KeyError:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(EXPERIMENT_SPECS)}"
        ) from None


def ensure_unique_unit_ids(units: "list[TrialSpec]") -> "list[TrialSpec]":
    """Reject decompositions whose unit ids collide.

    Results are keyed by unit id, so any collision — two fractions that
    round to the same display percent, or a dataset listed twice — would
    silently merge distinct cells into one mis-weighted row. Fail loudly
    instead.
    """
    seen: dict[str, TrialSpec] = {}
    for unit in units:
        other = seen.get(unit.unit_id)
        if other is not None:
            raise ValidationError(
                f"duplicate unit id {unit.unit_id!r} in {unit.experiment_id}: "
                f"{dict(other.params)} vs {dict(unit.params)}"
            )
        seen[unit.unit_id] = unit
    return units


def group_payloads(
    units: "list[TrialSpec]", results: dict[str, dict], *names: str
) -> dict[tuple, list[dict]]:
    """Group unit payloads by the named params, preserving unit order.

    The shared aggregation helper: insertion order of the returned dict is
    the row order of the original serial loops.
    """
    grouped: dict[tuple, list[dict]] = {}
    for unit in units:
        params = unit.kwargs
        grouped.setdefault(tuple(params[n] for n in names), []).append(
            results[unit.unit_id]
        )
    return grouped


def derive_trial_seeds(seed: int, n_trials: int) -> list[int]:
    """Derive one deterministic trial seed per repetition from a master seed.

    This is the seed schedule the original serial loops used, so decomposed
    runs (serial, parallel, or resumed from a store) reproduce identical
    tables.
    """
    rng = check_random_state(seed)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=n_trials)]


def config_hash(scale: ScaleConfig, spec: TrialSpec) -> str:
    """Hash everything that determines a unit's payload except its seed.

    The hash covers the full :class:`ScaleConfig` and the unit parameters,
    so changing any size knob (epochs, trees, hidden sizes, ...) or any
    experiment parameter invalidates cached results for that unit.
    """
    blob = json.dumps(
        {"scale": asdict(scale), "params": spec.kwargs},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
