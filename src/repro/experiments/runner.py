"""Experiment registry and command-line entry point.

Usage::

    python -m repro.experiments fig5 --scale smoke
    python -m repro.experiments all --scale default
    python -m repro.experiments fig7 --scale smoke --jobs 4 --store-dir out/
    python -m repro.experiments list

``--jobs N`` fans trial units out over N worker processes; ``--store-dir``
makes runs resumable (completed units are cached on disk and skipped on
the next run; ``--force`` recomputes them). ``--jobs 1`` without a store
is the classic serial in-process path; every mode produces identical
tables for a given scale and seeds.

``list`` prints the scenario API's component registries — every attack,
model, defense, and dataset key with its one-line description — which is
the full vocabulary accepted by ``ScenarioConfig``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.exceptions import ValidationError
from repro.experiments import fault_storm, figures, tables, traffic
from repro.experiments.batch import run_batch
from repro.config import PRESETS
from repro.experiments.reporting import ExperimentResult
from repro.experiments.store import ResultsStore

#: Every registry entry accepts one positional ``scale`` argument
#: (a preset name or a :class:`~repro.config.ScaleConfig`).
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table2": tables.table2_datasets,
    "table3": tables.table3_ablation,
    "fig5": figures.fig5_esa,
    "fig6": figures.fig6_pra,
    "fig7": figures.fig7_grna,
    "fig8": figures.fig8_grna_rf_cbr,
    "fig9": figures.fig9_num_predictions,
    "fig10": figures.fig10_correlations,
    "fig11": figures.fig11_defenses,
    "budget": figures.budget_sweep,
    "comm": figures.comm_sweep,
    "traffic": traffic.traffic_sweep,
    "fault_storm": fault_storm.fault_storm_sweep,
}


def print_registries(stream=None) -> None:
    """Print every scenario-API registry: keys + one-line descriptions.

    The ``repro-experiments list`` subcommand — the discoverability
    counterpart of :class:`~repro.api.ScenarioConfig`, whose string
    fields accept exactly these keys.
    """
    # Imported here so the plain experiment path never pays for the api
    # package's registries.
    from repro.api import ATTACKS, DATASETS, DEFENSES, MODELS
    from repro.workload import ARRIVALS

    stream = sys.stdout if stream is None else stream
    sections = (
        ("attacks", ATTACKS),
        ("models", MODELS),
        ("defenses", DEFENSES),
        ("datasets", DATASETS),
        ("arrivals", ARRIVALS),
    )
    for index, (title, registry) in enumerate(sections):
        if index:
            print(file=stream)
        print(f"{title}:", file=stream)
        described = registry.describe()
        width = max(len(key) for key in described)
        for key, description in described.items():
            print(f"  {key:<{width}}  {description}", file=stream)


def run_experiment(
    experiment_id: str,
    scale: str = "default",
    *,
    jobs: int = 1,
    store: "ResultsStore | str | None" = None,
    force: bool = False,
    on_progress=None,
) -> ExperimentResult:
    """Run one experiment by its paper id (``fig5`` ... ``table3``).

    With the defaults this is the classic serial in-process run; ``jobs``
    and ``store`` (a directory path or an open
    :class:`~repro.experiments.store.ResultsStore`) route through the
    batch engine (see :func:`repro.experiments.batch.run_batch`), which
    also validates ``jobs``.
    """
    if experiment_id not in EXPERIMENTS:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        )
    if jobs == 1 and store is None:
        return EXPERIMENTS[experiment_id](scale)
    return run_batch(
        experiment_id,
        scale,
        jobs=jobs,
        store=store,
        force=force,
        on_progress=on_progress,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI: run one experiment (or ``all``) and print its table."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "list"],
        help="experiment id (paper table/figure), 'all', or 'list' to "
        "print the attack/model/defense/dataset registries",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(PRESETS),
        default="default",
        help="size preset (smoke: seconds, default: minutes, full: paper-scale)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for trial units (default: 1, serial)",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="persist per-unit results here; reruns skip completed units",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="recompute units even when the store already has them",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        help="also save each result as <experiment>.csv in this directory",
    )
    args = parser.parse_args(argv)
    if args.experiment == "list":
        print_registries()
        return 0
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    # One store instance for the whole invocation so 'all' shares its cache.
    store = ResultsStore(args.store_dir) if args.store_dir is not None else None

    def progress(line: str) -> None:
        print(f"# {line}", file=sys.stderr)

    for experiment_id in ids:
        result = run_experiment(
            experiment_id,
            args.scale,
            jobs=args.jobs,
            store=store,
            force=args.force,
            on_progress=progress,
        )
        print(result.to_text())
        print()
        if args.output_dir is not None:
            from pathlib import Path

            directory = Path(args.output_dir)
            directory.mkdir(parents=True, exist_ok=True)
            result.save(directory / f"{experiment_id}.csv")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
