"""Experiment registry and command-line entry point.

Usage::

    python -m repro.experiments fig5 --scale smoke
    python -m repro.experiments all --scale default
"""

from __future__ import annotations

import argparse
from typing import Callable

from repro.exceptions import ValidationError
from repro.experiments import figures, tables
from repro.experiments.config import PRESETS
from repro.experiments.reporting import ExperimentResult

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table2": lambda scale: tables.table2_datasets(),
    "table3": tables.table3_ablation,
    "fig5": figures.fig5_esa,
    "fig6": figures.fig6_pra,
    "fig7": figures.fig7_grna,
    "fig8": figures.fig8_grna_rf_cbr,
    "fig9": figures.fig9_num_predictions,
    "fig10": figures.fig10_correlations,
    "fig11": figures.fig11_defenses,
}


def run_experiment(experiment_id: str, scale: str = "default") -> ExperimentResult:
    """Run one experiment by its paper id (``fig5`` ... ``table3``)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(scale)


def main(argv: list[str] | None = None) -> int:
    """CLI: run one experiment (or ``all``) and print its table."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(PRESETS),
        default="default",
        help="size preset (smoke: seconds, default: minutes, full: paper-scale)",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        help="also save each result as <experiment>.csv in this directory",
    )
    args = parser.parse_args(argv)
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        result = run_experiment(experiment_id, args.scale)
        print(result.to_text())
        print()
        if args.output_dir is not None:
            from pathlib import Path

            directory = Path(args.output_dir)
            directory.mkdir(parents=True, exist_ok=True)
            result.save(directory / f"{experiment_id}.csv")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
