"""Runners for the paper's tables (Table II statistics, Table III ablation).

Like the figures, each table is decomposed into trial units
(``*_units`` / ``*_run_unit`` / ``*_aggregate``) so the batch runner can
parallelize and cache them; the public entry points run the same units
serially. Both runners accept a ``scale`` argument uniformly (Table II
ignores everything but the signature — its statistics are fixed).
"""

from __future__ import annotations

import numpy as np

from repro.api import ScenarioConfig, run_scenario
from repro.config import ScaleConfig, get_scale
from repro.datasets import table2_rows
from repro.experiments.reporting import ExperimentResult
from repro.experiments.spec import (
    ExperimentSpec,
    TrialSpec,
    derive_trial_seeds,
    ensure_unique_unit_ids,
    group_payloads,
    register_experiment,
)


# ----------------------------------------------------------------------
# Table II — dataset statistics
# ----------------------------------------------------------------------
def table2_units(scale: "str | ScaleConfig") -> list[TrialSpec]:
    """Table II is one deterministic unit (no trials, no randomness)."""
    get_scale(scale)
    return [TrialSpec.make("table2", "stats", 0)]


def table2_run_unit(spec: TrialSpec, scale: ScaleConfig) -> dict:
    """Materialize the dataset statistics rows."""
    return {
        "rows": [
            [str(name), int(samples), int(classes), int(features)]
            for name, samples, classes, features in table2_rows()
        ]
    }


def table2_aggregate(
    scale: "str | ScaleConfig",
    units: list[TrialSpec],
    results: dict[str, dict],
) -> ExperimentResult:
    """Wrap the statistics rows into the Table II result."""
    rows = [tuple(row) for row in results[units[0].unit_id]["rows"]]
    return ExperimentResult(
        experiment_id="table2",
        title="Statistics of datasets",
        columns=["dataset", "samples", "classes", "features"],
        rows=rows,
        meta={},
    )


def table2_datasets(scale: "str | ScaleConfig" = "default") -> ExperimentResult:
    """Table II: dataset statistics (``scale`` accepted for CLI uniformity)."""
    scale = get_scale(scale)
    units = ensure_unique_unit_ids(table2_units(scale))
    results = {unit.unit_id: table2_run_unit(unit, scale) for unit in units}
    return table2_aggregate(scale, units, results)


# ----------------------------------------------------------------------
# Table III — GRN component ablation
# ----------------------------------------------------------------------
#: The six ablation cases of Table III: which GRN components are enabled.
ABLATION_CASES = [
    # (case index, input x_adv, input noise, variance constraint, generator)
    (1, False, True, True, True),
    (2, True, False, True, True),
    (3, True, True, False, True),
    (4, True, True, True, False),
    (5, True, True, True, True),
]


def table3_units(
    scale: "str | ScaleConfig",
    *,
    dataset: str = "bank",
    target_fraction: float = 0.4,
    seed: int = 3,
) -> list[TrialSpec]:
    """One unit per (ablation case, trial); case 6 is the random guess."""
    scale = get_scale(scale)
    trial_seeds = derive_trial_seeds(seed, scale.n_trials)
    units = []
    for case, use_adv, use_noise, use_constraint, use_generator in ABLATION_CASES:
        for t, trial_seed in enumerate(trial_seeds):
            units.append(
                TrialSpec.make(
                    "table3",
                    f"case{case}:t{t}",
                    trial_seed,
                    case=case,
                    dataset=dataset,
                    target_fraction=target_fraction,
                    use_adv=use_adv,
                    use_noise=use_noise,
                    use_constraint=use_constraint,
                    use_generator=use_generator,
                )
            )
    for t, trial_seed in enumerate(trial_seeds):
        units.append(
            TrialSpec.make(
                "table3",
                f"case6:t{t}",
                trial_seed,
                case=6,
                dataset=dataset,
                target_fraction=target_fraction,
            )
        )
    return units


def table3_run_unit(spec: TrialSpec, scale: ScaleConfig) -> dict:
    """One ablated GRN trial (or one random-guess trial for case 6)."""
    params = spec.kwargs
    if params["case"] == 6:
        report = run_scenario(
            ScenarioConfig(
                dataset=params["dataset"],
                model="lr",
                attack="random_uniform",
                target_fraction=params["target_fraction"],
                scale=scale,
                seed=spec.seed,
            )
        )
        return {"mse": report.metrics["mse"]}
    use_generator = params["use_generator"]
    report = run_scenario(
        ScenarioConfig(
            dataset=params["dataset"],
            model="lr",
            attack="grna",
            target_fraction=params["target_fraction"],
            scale=scale,
            seed=spec.seed,
            attack_params={
                "use_adv_input": params["use_adv"],
                "use_noise": params["use_noise"],
                "variance_penalty": 1.0 if params["use_constraint"] else 0.0,
                "use_generator": use_generator,
                # Case 4 (no generator) is the paper's *naive regression*:
                # unbounded free variables, no output squashing.
                "output_activation": "sigmoid" if use_generator else "linear",
                "clip_to_unit": False if not use_generator else True,
            },
        )
    )
    return {"mse": report.metrics["mse"]}


def table3_aggregate(
    scale: "str | ScaleConfig",
    units: list[TrialSpec],
    results: dict[str, dict],
    *,
    seed: int = 3,
) -> ExperimentResult:
    """Average trials per case into the Table III rows (cases 1-6 in order)."""
    scale = get_scale(scale)
    first = units[0].kwargs
    dataset, target_fraction = first["dataset"], first["target_fraction"]
    flags = {
        unit.kwargs["case"]: tuple(
            unit.kwargs.get(name, False)
            for name in ("use_adv", "use_noise", "use_constraint", "use_generator")
        )
        for unit in units
    }
    rows = [
        (case, *flags[case], float(np.mean([p["mse"] for p in payloads])))
        for (case,), payloads in group_payloads(units, results, "case").items()
    ]
    return ExperimentResult(
        experiment_id="table3",
        title=f"GRN ablation on {dataset} (LR, d_target={int(target_fraction*100)}%)",
        columns=["case", "input_xadv", "input_noise", "constraint", "generator", "mse"],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


def table3_ablation(
    scale: "str | ScaleConfig" = "default",
    *,
    dataset: str = "bank",
    target_fraction: float = 0.4,
    seed: int = 3,
) -> ExperimentResult:
    """Table III: GRN component ablation (LR model, bank, d_target = 40%)."""
    scale = get_scale(scale)
    units = ensure_unique_unit_ids(
        table3_units(scale, dataset=dataset, target_fraction=target_fraction, seed=seed)
    )
    results = {unit.unit_id: table3_run_unit(unit, scale) for unit in units}
    return table3_aggregate(scale, units, results, seed=seed)


register_experiment(ExperimentSpec("table2", table2_units, table2_run_unit, table2_aggregate))
register_experiment(ExperimentSpec("table3", table3_units, table3_run_unit, table3_aggregate))
