"""Runners for the paper's tables (Table II statistics, Table III ablation)."""

from __future__ import annotations

import numpy as np

from repro.attacks import GenerativeRegressionNetwork, RandomGuessAttack
from repro.datasets import table2_rows
from repro.experiments.common import build_scenario, grna_kwargs_from_scale
from repro.experiments.config import ScaleConfig, get_scale
from repro.experiments.reporting import ExperimentResult
from repro.metrics import mse_per_feature
from repro.utils.random import check_random_state, spawn_rngs


def table2_datasets() -> ExperimentResult:
    """Table II: dataset statistics."""
    return ExperimentResult(
        experiment_id="table2",
        title="Statistics of datasets",
        columns=["dataset", "samples", "classes", "features"],
        rows=list(table2_rows()),
        meta={},
    )


#: The six ablation cases of Table III: which GRN components are enabled.
ABLATION_CASES = [
    # (case index, input x_adv, input noise, variance constraint, generator)
    (1, False, True, True, True),
    (2, True, False, True, True),
    (3, True, True, False, True),
    (4, True, True, True, False),
    (5, True, True, True, True),
]


def table3_ablation(
    scale: "str | ScaleConfig" = "default",
    *,
    dataset: str = "bank",
    target_fraction: float = 0.4,
    seed: int = 3,
) -> ExperimentResult:
    """Table III: GRN component ablation (LR model, bank, d_target = 40%)."""
    scale = get_scale(scale)
    trial_seeds = [
        int(s)
        for s in check_random_state(seed).integers(0, 2**31 - 1, size=scale.n_trials)
    ]
    rows = []
    for case, use_adv, use_noise, use_constraint, use_generator in ABLATION_CASES:
        mses = []
        for trial_seed in trial_seeds:
            scenario = build_scenario(dataset, "lr", target_fraction, scale, trial_seed)
            grna_rng = spawn_rngs(trial_seed + 1, 1)[0]
            attack = GenerativeRegressionNetwork(
                scenario.model,
                scenario.view,
                use_adv_input=use_adv,
                use_noise=use_noise,
                variance_penalty=1.0 if use_constraint else 0.0,
                use_generator=use_generator,
                # Case 4 (no generator) is the paper's *naive regression*:
                # unbounded free variables, no output squashing.
                output_activation="sigmoid" if use_generator else "linear",
                clip_to_unit=False if not use_generator else True,
                **grna_kwargs_from_scale(scale, grna_rng),
            )
            result = attack.run(scenario.X_adv, scenario.V)
            mses.append(mse_per_feature(result.x_target_hat, scenario.X_target))
        rows.append(
            (case, use_adv, use_noise, use_constraint, use_generator, float(np.mean(mses)))
        )

    # Case 6: random guess.
    rg_mses = []
    for trial_seed in trial_seeds:
        scenario = build_scenario(dataset, "lr", target_fraction, scale, trial_seed)
        guess = RandomGuessAttack(
            scenario.view, distribution="uniform", rng=trial_seed
        ).run(scenario.X_adv)
        rg_mses.append(mse_per_feature(guess.x_target_hat, scenario.X_target))
    rows.append((6, False, False, False, False, float(np.mean(rg_mses))))

    return ExperimentResult(
        experiment_id="table3",
        title=f"GRN ablation on {dataset} (LR, d_target={int(target_fraction*100)}%)",
        columns=["case", "input_xadv", "input_noise", "constraint", "generator", "mse"],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )
