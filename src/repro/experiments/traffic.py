"""The ``traffic`` experiment: needle-in-traffic attacker isolation.

The paper's threat model has an auditing blind spot the ROADMAP calls
out: every attack consumer in the evaluation is served *alone*, so
"could a defender have noticed?" is untestable. This experiment poses
the question properly. For each attack family (GRNA/PRA/ESA on its
paper model) and each arrival shape in the workload league
(poisson/bursty/diurnal), a deployment serves ≥1000 benign tenants
interleaved with the attacker's accumulation through a 4-shard
:class:`~repro.workload.ShardedPredictionService` stacked with
``query_audit``, and the defender's view — the merged
:class:`~repro.workload.WorkloadReport` — ranks every consumer by
anomaly score. The claim under test: the attacker ranks **top-1**,
because accumulating a pool and re-querying it (to average per-query
noise away) is an outlier in both volume and duplicate rate.

Each unit also replays the same trace through a single serial shard and
asserts the per-consumer accounting is bit-identical
(``shard_identical``), and repeats the run with a ``rate_limit`` policy
sized to bind under attack-inflated load — the refusal counts show the
blunt deployment-wide defense punishing benign tenants on the
attacker's shard alongside the attacker, which is the case for the
anomaly-score route.
"""

from __future__ import annotations

import numpy as np

from repro.api import build_scenario
from repro.config import ScaleConfig, get_scale
from repro.experiments.figures import _pct, _run_serial  # noqa: F401 (shared helpers)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.spec import (
    ExperimentSpec,
    TrialSpec,
    derive_trial_seeds,
    group_payloads as _group_by,
    register_experiment,
)
from repro.workload import ShardedPredictionService, attacker_trace, make_trace

__all__ = ["traffic_units", "traffic_run_unit", "traffic_aggregate", "traffic_sweep"]

#: Attack families and the paper model each one targets.
TRAFFIC_ATTACKS = (("grna", "nn"), ("pra", "dt"), ("esa", "lr"))

#: The league of arrival shapes the benign population is drawn from.
TRAFFIC_PROCESSES = ("poisson", "bursty", "diurnal")

#: Benign population: tenants, request events (one sample each).
N_BENIGN = 1000
N_BENIGN_EVENTS = 4000

#: The attacker's accumulation: pool size, re-query rounds, event batch.
ATTACK_POOL = 48
ATTACK_REPEATS = 6
ATTACK_BATCH = 16

#: Serving layout under test.
N_SHARDS = 4


def traffic_units(
    scale: "str | ScaleConfig",
    *,
    attacks: tuple = TRAFFIC_ATTACKS,
    processes: tuple[str, ...] = TRAFFIC_PROCESSES,
    seed: int = 23,
) -> list[TrialSpec]:
    """One unit per (attack family, arrival process, trial) cell."""
    scale = get_scale(scale)
    trial_seeds = derive_trial_seeds(seed, scale.n_trials)
    return [
        TrialSpec.make(
            "traffic",
            f"{attack}:{process}:t{t}",
            trial_seed,
            attack=attack,
            model=model,
            process=process,
        )
        for attack, model in attacks
        for process in processes
        for t, trial_seed in enumerate(trial_seeds)
    ]


def traffic_run_unit(spec: TrialSpec, scale: ScaleConfig) -> dict:
    """Serve one attacker inside benign traffic; report the audit verdict."""
    params = spec.kwargs
    scenario = build_scenario("bank", params["model"], 0.3, scale, spec.seed)
    vfl = scenario.vfl
    benign_seed, attack_seed = derive_trial_seeds(spec.seed, 2)
    benign = make_trace(
        N_BENIGN,
        N_BENIGN_EVENTS,
        n_samples=vfl.n_samples,
        process=params["process"],
        seed=benign_seed,
    )
    attacker = f"{params['attack']}-attacker"
    trace = benign.merge(
        attacker_trace(
            attacker,
            np.arange(min(ATTACK_POOL, vfl.n_samples)),
            repeats=ATTACK_REPEATS,
            batch_size=ATTACK_BATCH,
            seed=attack_seed,
        )
    )

    def deploy(n_shards: int, *, cache: bool, specs: tuple) -> ShardedPredictionService:
        return ShardedPredictionService(
            vfl,
            n_shards=n_shards,
            defense_specs=specs,
            max_batch=32,
            cache=cache,
            cache_size=256 if cache else None,
            seed=spec.seed,
        )

    # The audited deployment: concurrent 4-shard replay, plus the serial
    # single-shard oracle the per-consumer accounting must match exactly.
    audited = deploy(N_SHARDS, cache=True, specs=("query_audit",))
    report = audited.replay(trace, mode="threads")
    oracle = deploy(1, cache=True, specs=("query_audit",)).replay(
        trace, mode="serial"
    )
    ranked = report.ranked_consumers()
    scores = report.anomaly_scores()
    benign_top = max(
        (score for name, score in scores.items() if name != attacker),
        default=0.0,
    )

    # The blunt alternative: a per-shard rate limit sized to bind under
    # attack-inflated load (cache off so the attacker's repeats charge).
    cap = max(1, int(1.05 * benign.n_queries / N_SHARDS))
    limited = deploy(
        N_SHARDS,
        cache=False,
        specs=("query_audit", ("rate_limit", {"max_queries": cap})),
    ).replay(trace, mode="threads")

    return {
        "attacker_rank": 1 + ranked.index(attacker),
        "attacker_score": float(scores[attacker]),
        "benign_top_score": float(benign_top),
        "shard_identical": report.consumer_accounting()
        == oracle.consumer_accounting(),
        "attacker_refusals": int(limited.refusals.get(attacker, 0)),
        "benign_refusals": int(
            sum(n for name, n in limited.refusals.items() if name != attacker)
        ),
        "queries_per_second": float(report.queries_per_second),
    }


def traffic_aggregate(
    scale: "str | ScaleConfig",
    units: list[TrialSpec],
    results: dict[str, dict],
    *,
    seed: int = 23,
) -> ExperimentResult:
    """Fold trials into the per-(attack, process) isolation table."""
    scale = get_scale(scale)
    rows = []
    for (attack, model, process), payloads in _group_by(
        units, results, "attack", "model", "process"
    ).items():
        rows.append(
            (
                attack,
                model,
                process,
                N_BENIGN,
                float(np.mean([p["attacker_rank"] == 1 for p in payloads])),
                float(np.mean([p["attacker_score"] for p in payloads])),
                float(np.mean([p["benign_top_score"] for p in payloads])),
                bool(all(p["shard_identical"] for p in payloads)),
                int(np.mean([p["attacker_refusals"] for p in payloads])),
                int(np.mean([p["benign_refusals"] for p in payloads])),
            )
        )
    return ExperimentResult(
        experiment_id="traffic",
        title="Needle in traffic: audit ranking of the attack consumer "
        f"among {N_BENIGN} benign tenants ({N_SHARDS} shards)",
        columns=[
            "attack",
            "model",
            "process",
            "n_benign",
            "top1_rate",
            "attacker_score",
            "benign_top_score",
            "shard_identical",
            "attacker_refusals",
            "benign_refusals",
        ],
        rows=rows,
        meta={"scale": scale.name, "trials": scale.n_trials, "seed": seed},
    )


def traffic_sweep(
    scale: "str | ScaleConfig" = "default",
    *,
    attacks: tuple = TRAFFIC_ATTACKS,
    processes: tuple[str, ...] = TRAFFIC_PROCESSES,
    seed: int = 23,
) -> ExperimentResult:
    """Attacker isolation by anomaly score, across attacks and arrivals."""
    scale = get_scale(scale)
    units = traffic_units(scale, attacks=attacks, processes=processes, seed=seed)
    return _run_serial(units, traffic_run_unit, traffic_aggregate, scale, seed=seed)


register_experiment(
    ExperimentSpec("traffic", traffic_units, traffic_run_unit, traffic_aggregate)
)
