"""Parallel, resumable batch execution of experiments.

:func:`run_batch` decomposes one experiment into trial units (see
:mod:`repro.experiments.spec`), skips every unit already present in the
:class:`~repro.experiments.store.ResultsStore`, fans the rest out across
a :class:`~concurrent.futures.ProcessPoolExecutor`, persists each
completed unit as it lands, and aggregates the payloads into the paper's
table. Because each unit carries its own deterministic seed, a
``--jobs 8`` run produces a table identical to ``--jobs 1``.

Usage::

    from repro.experiments import ResultsStore, run_batch

    store = ResultsStore("/tmp/results")
    result = run_batch("fig7", "smoke", jobs=4, store=store)
    result = run_batch("fig7", "smoke", jobs=4, store=store)  # all cache hits
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Callable

from repro.exceptions import ValidationError
from repro.config import ScaleConfig, get_scale
from repro.experiments.reporting import ExperimentResult
from repro.experiments.spec import (
    TrialSpec,
    config_hash,
    ensure_unique_unit_ids,
    get_experiment_spec,
)
from repro.experiments.store import ResultsStore, RunSummary

ProgressFn = Callable[[str], None]


def _execute_unit(
    experiment_id: str, spec: TrialSpec, scale: ScaleConfig
) -> tuple[dict, float]:
    """Worker entry point: run one unit, return (payload, elapsed seconds).

    Module-level so it pickles into pool workers; experiment lookup happens
    inside the worker, importing the runner modules on demand.
    """
    start = time.perf_counter()
    payload = get_experiment_spec(experiment_id).run_unit(spec, scale)
    return payload, time.perf_counter() - start


def run_batch(
    experiment_id: str,
    scale: "str | ScaleConfig" = "default",
    *,
    jobs: int = 1,
    store: "ResultsStore | str | None" = None,
    force: bool = False,
    on_progress: "ProgressFn | None" = None,
    tracer=None,
) -> ExperimentResult:
    """Run one experiment over its trial units, in parallel and resumably.

    Parameters
    ----------
    experiment_id:
        Paper id (``"fig5"`` ... ``"table3"``).
    scale:
        Preset name or explicit :class:`ScaleConfig`.
    jobs:
        Worker processes. ``1`` (the default) runs every unit serially in
        this process — identical to the classic runners.
    store:
        Optional :class:`ResultsStore` (or a directory path for one).
        Units whose key is already stored are served from cache; newly
        computed units are persisted as they complete.
    force:
        Recompute every unit even on a cache hit (fresh results still
        overwrite the stored ones).
    on_progress:
        Optional callback receiving human-readable progress lines.
    tracer:
        Optional :class:`~repro.telemetry.Tracer`. Emits one
        ``batch.unit`` event per unit in the parent process — status
        ``"hit"`` (served from the store), ``"start"`` (dispatched) or
        ``"finish"`` (persisted) — plus a ``batch.cache_hits`` counter.
        Operational telemetry: with ``jobs > 1`` the finish order
        follows pool completion, so it sits outside the determinism
        contract the serving/federation spans honor.

    Experiments that declare ``shard_unit``/``merge_shards`` (see
    :class:`~repro.experiments.spec.ExperimentSpec`) are cached at
    *shard* granularity: a unit missing from the store is expanded into
    its shards, every already-stored shard is served from cache, only
    the missing shards execute, and the merged unit payload is persisted
    alongside the shards. The progress line reports the shard-level
    hit/miss split, so an interrupted-and-resumed batch shows exactly
    which work was redone (none, when every shard landed).
    """
    if jobs < 1:
        raise ValidationError(f"jobs must be >= 1, got {jobs}")
    if isinstance(store, (str, Path)):
        store = ResultsStore(store)
    experiment = get_experiment_spec(experiment_id)
    scale = get_scale(scale)
    units = ensure_unique_unit_ids(experiment.trial_units(scale))

    def trace_unit(unit_id: str, status: str) -> None:
        if tracer is not None:
            tracer.event("batch.unit", unit=unit_id, status=status)
            if status == "hit":
                tracer.count("batch.cache_hits")

    def lookup(spec: TrialSpec, digest: str) -> "dict | None":
        if store is None or force:
            return None
        cached = store.get(experiment_id, scale.name, spec.unit_id, digest)
        if cached is not None and cached.seed != spec.seed:
            # The unit id and config hash survive a seed-schedule change;
            # the recorded seed does not. Stale → recompute.
            return None
        return None if cached is None else cached.payload

    results: dict[str, dict] = {}
    pending: list[tuple[TrialSpec, str]] = []
    # Units whose payload must be merged from shards after execution.
    to_merge: list[tuple[TrialSpec, str, list[TrialSpec]]] = []
    shard_hits = shard_misses = unit_hits = 0
    for unit in units:
        digest = config_hash(scale, unit)
        payload = lookup(unit, digest)
        if payload is not None:
            results[unit.unit_id] = payload
            unit_hits += 1
            trace_unit(unit.unit_id, "hit")
        elif experiment.shard_unit is None:
            pending.append((unit, digest))
        else:
            shards = ensure_unique_unit_ids(experiment.shard_unit(unit, scale))
            to_merge.append((unit, digest, shards))
            for shard in shards:
                shard_digest = config_hash(scale, shard)
                shard_payload = lookup(shard, shard_digest)
                if shard_payload is not None:
                    results[shard.unit_id] = shard_payload
                    shard_hits += 1
                    trace_unit(shard.unit_id, "hit")
                else:
                    pending.append((shard, shard_digest))
                    shard_misses += 1
    if on_progress is not None:
        line = (
            f"{experiment_id}: {len(units)} unit(s), "
            f"{unit_hits} cached, {len(pending)} to run (jobs={jobs})"
        )
        if to_merge:
            line += (
                f"; shards: {shard_hits + shard_misses} expanded, "
                f"{shard_hits} cached, {shard_misses} to run"
            )
        on_progress(line)

    elapsed_by_id: dict[str, float] = {}

    def record(unit: TrialSpec, digest: str, payload: dict, elapsed: float) -> None:
        trace_unit(unit.unit_id, "finish")
        results[unit.unit_id] = payload
        elapsed_by_id[unit.unit_id] = elapsed
        if store is not None:
            store.put(
                RunSummary(
                    experiment_id=experiment_id,
                    unit_id=unit.unit_id,
                    scale=scale.name,
                    seed=unit.seed,
                    config_hash=digest,
                    payload=payload,
                    elapsed_s=round(elapsed, 6),
                )
            )

    if jobs == 1 or len(pending) <= 1:
        for unit, digest in pending:
            trace_unit(unit.unit_id, "start")
            payload, elapsed = _execute_unit(experiment_id, unit, scale)
            record(unit, digest, payload, elapsed)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {}
            for unit, digest in pending:
                trace_unit(unit.unit_id, "start")
                futures[
                    pool.submit(_execute_unit, experiment_id, unit, scale)
                ] = (unit, digest)
            for future in as_completed(futures):
                unit, digest = futures[future]
                payload, elapsed = future.result()
                record(unit, digest, payload, elapsed)

    for unit, digest, shards in to_merge:
        merged = experiment.merge_shards(unit, shards, results)
        record(
            unit,
            digest,
            merged,
            sum(elapsed_by_id.get(shard.unit_id, 0.0) for shard in shards),
        )

    return experiment.aggregate(scale, units, results)


def run_batch_experiments(
    experiment_ids: "list[str] | None" = None,
    scale: "str | ScaleConfig" = "default",
    *,
    jobs: int = 1,
    store: "ResultsStore | str | None" = None,
    force: bool = False,
    on_progress: "ProgressFn | None" = None,
) -> dict[str, ExperimentResult]:
    """Run several experiments (default: all registered) through one store."""
    from repro.experiments.spec import EXPERIMENT_SPECS, _ensure_registered

    if experiment_ids is None:
        _ensure_registered()
        experiment_ids = list(EXPERIMENT_SPECS)
    if isinstance(store, (str, Path)):
        store = ResultsStore(store)
    return {
        experiment_id: run_batch(
            experiment_id,
            scale,
            jobs=jobs,
            store=store,
            force=force,
            on_progress=on_progress,
        )
        for experiment_id in experiment_ids
    }
