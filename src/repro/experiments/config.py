"""Experiment scale presets — compatibility shim.

The :class:`~repro.config.ScaleConfig` presets moved to the top-level
:mod:`repro.config` module so that :mod:`repro.api` (which sits *below*
the experiments layer) can consume them without importing the experiments
package. This module re-exports everything for existing callers.
"""

from repro.config import (  # noqa: F401
    DEFAULT,
    FULL,
    PAPER_FRACTIONS,
    PRESETS,
    SMOKE,
    ScaleConfig,
    get_scale,
)

__all__ = [
    "DEFAULT",
    "FULL",
    "PAPER_FRACTIONS",
    "PRESETS",
    "SMOKE",
    "ScaleConfig",
    "get_scale",
]
