"""Experiment harness regenerating every table and figure of the paper.

Two ways to run an experiment:

**Classic serial call** — each ``figN``/``tableN`` function runs its trial
units in-process and returns an
:class:`~repro.experiments.reporting.ExperimentResult`::

    from repro.experiments import fig5_esa

    result = fig5_esa("smoke")
    print(result.to_text())

**Batch engine** — :func:`~repro.experiments.batch.run_batch` fans the
same trial units out over worker processes and caches each completed
unit in a :class:`~repro.experiments.store.ResultsStore`, so interrupted
runs resume where they stopped and repeated runs are near-instant::

    from repro.experiments import ResultsStore, run_batch

    store = ResultsStore("results/")
    result = run_batch("fig7", "smoke", jobs=4, store=store)
    result = run_batch("fig7", "smoke", jobs=4, store=store)  # cache hits

Both paths produce identical tables: every unit carries its own
deterministic seed (see :mod:`repro.experiments.spec`), so execution
order and process boundaries cannot change the numbers.

The same engine backs the CLI::

    python -m repro.experiments fig7 --scale smoke --jobs 4 --store-dir results/
"""

from repro.config import (
    DEFAULT,
    FULL,
    PAPER_FRACTIONS,
    PRESETS,
    SMOKE,
    ScaleConfig,
    get_scale,
)
from repro.experiments.common import VFLScenario, build_scenario, make_model
from repro.experiments.reporting import ExperimentResult
from repro.experiments.spec import (
    EXPERIMENT_SPECS,
    ExperimentSpec,
    TrialSpec,
    config_hash,
    derive_trial_seeds,
    get_experiment_spec,
)
from repro.experiments.store import ResultsStore, RunSummary
from repro.experiments.figures import (
    fig5_esa,
    fig6_pra,
    fig7_grna,
    fig8_grna_rf_cbr,
    fig9_num_predictions,
    fig10_correlations,
    fig11_defenses,
)
from repro.experiments.tables import table2_datasets, table3_ablation
from repro.experiments.batch import run_batch, run_batch_experiments
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = [
    "ScaleConfig",
    "SMOKE",
    "DEFAULT",
    "FULL",
    "PRESETS",
    "PAPER_FRACTIONS",
    "get_scale",
    "VFLScenario",
    "build_scenario",
    "make_model",
    "ExperimentResult",
    "TrialSpec",
    "ExperimentSpec",
    "EXPERIMENT_SPECS",
    "get_experiment_spec",
    "derive_trial_seeds",
    "config_hash",
    "ResultsStore",
    "RunSummary",
    "run_batch",
    "run_batch_experiments",
    "fig5_esa",
    "fig6_pra",
    "fig7_grna",
    "fig8_grna_rf_cbr",
    "fig9_num_predictions",
    "fig10_correlations",
    "fig11_defenses",
    "table2_datasets",
    "table3_ablation",
    "EXPERIMENTS",
    "run_experiment",
]
