"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.config import (
    DEFAULT,
    FULL,
    PAPER_FRACTIONS,
    PRESETS,
    SMOKE,
    ScaleConfig,
    get_scale,
)
from repro.experiments.common import VFLScenario, build_scenario, make_model
from repro.experiments.reporting import ExperimentResult
from repro.experiments.figures import (
    fig5_esa,
    fig6_pra,
    fig7_grna,
    fig8_grna_rf_cbr,
    fig9_num_predictions,
    fig10_correlations,
    fig11_defenses,
)
from repro.experiments.tables import table2_datasets, table3_ablation
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = [
    "ScaleConfig",
    "SMOKE",
    "DEFAULT",
    "FULL",
    "PRESETS",
    "PAPER_FRACTIONS",
    "get_scale",
    "VFLScenario",
    "build_scenario",
    "make_model",
    "ExperimentResult",
    "fig5_esa",
    "fig6_pra",
    "fig7_grna",
    "fig8_grna_rf_cbr",
    "fig9_num_predictions",
    "fig10_correlations",
    "fig11_defenses",
    "table2_datasets",
    "table3_ablation",
    "EXPERIMENTS",
    "run_experiment",
]
