"""Mini-batch iteration utilities (a tiny stand-in for torch DataLoader)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ShapeError, ValidationError
from repro.utils.random import check_random_state


def batch_indices(
    n_samples: int,
    batch_size: int,
    *,
    shuffle: bool = True,
    drop_last: bool = False,
    rng: np.random.Generator | int = 0,
) -> Iterator[np.ndarray]:
    """Yield index arrays that partition ``range(n_samples)`` into batches."""
    if n_samples <= 0:
        raise ValidationError(f"n_samples must be positive, got {n_samples}")
    if batch_size <= 0:
        raise ValidationError(f"batch_size must be positive, got {batch_size}")
    order = np.arange(n_samples)
    if shuffle:
        check_random_state(rng).shuffle(order)
    for start in range(0, n_samples, batch_size):
        batch = order[start : start + batch_size]
        if drop_last and batch.shape[0] < batch_size:
            return
        yield batch


def iterate_batches(
    arrays: tuple[np.ndarray, ...] | list[np.ndarray],
    batch_size: int,
    *,
    shuffle: bool = True,
    drop_last: bool = False,
    rng: np.random.Generator | int = 0,
) -> Iterator[tuple[np.ndarray, ...]]:
    """Yield aligned mini-batches from several equally-long arrays."""
    arrays = [np.asarray(a) for a in arrays]
    if not arrays:
        raise ValidationError("iterate_batches needs at least one array")
    n = arrays[0].shape[0]
    for a in arrays[1:]:
        if a.shape[0] != n:
            raise ShapeError(
                f"arrays have inconsistent lengths: {n} vs {a.shape[0]}"
            )
    for idx in batch_indices(n, batch_size, shuffle=shuffle, drop_last=drop_last, rng=rng):
        yield tuple(a[idx] for a in arrays)


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    test_fraction: float = 0.5,
    rng: np.random.Generator | int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split ``(X, y)`` into train and test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ShapeError(f"X and y lengths differ: {X.shape[0]} vs {y.shape[0]}")
    n = X.shape[0]
    order = check_random_state(rng).permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    if train_idx.size == 0:
        raise ValidationError("split left no training samples")
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]
