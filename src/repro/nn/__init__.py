"""Neural-network framework substrate (stands in for ``torch.nn``)."""

from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    Dropout,
    LayerNorm,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
    mlp,
)
from repro.nn.optim import SGD, Adam, Optimizer, make_optimizer
from repro.nn.init import kaiming_uniform, normal_init, xavier_uniform
from repro.nn.data import batch_indices, iterate_batches, train_test_split

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "LeakyReLU",
    "Softmax",
    "Sequential",
    "LayerNorm",
    "Dropout",
    "mlp",
    "Optimizer",
    "SGD",
    "Adam",
    "make_optimizer",
    "xavier_uniform",
    "kaiming_uniform",
    "normal_init",
    "batch_indices",
    "iterate_batches",
    "train_test_split",
]
