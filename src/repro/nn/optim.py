"""First-order optimizers: SGD (with momentum/weight decay) and Adam.

Algorithm 2 of the paper trains the generator with mini-batch SGD; Adam is
provided as the laptop-scale default because it reaches the same optima in
far fewer epochs (the choice is exposed as a config knob and ablated in the
benches).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.nn.module import Parameter


class Optimizer:
    """Base class holding a parameter list and the ``zero_grad`` helper."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        params = list(params)
        if not params:
            raise ValidationError("optimizer got an empty parameter list")
        for p in params:
            if not isinstance(p, Parameter):
                raise ValidationError(
                    f"optimizer expects Parameters, got {type(p).__name__}"
                )
        if lr <= 0:
            raise ValidationError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValidationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValidationError(f"weight_decay must be >= 0, got {weight_decay}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, vel, buf in zip(self.params, self._velocity, self._scratch):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            # lr * grad staged through the per-parameter scratch buffer:
            # same multiply and subtract, no per-step allocations.
            np.multiply(grad, self.lr, out=buf)
            p.data -= buf


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValidationError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValidationError(f"eps must be positive, got {eps}")
        if weight_decay < 0.0:
            raise ValidationError(f"weight_decay must be >= 0, got {weight_decay}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [
            (np.empty_like(p.data), np.empty_like(p.data)) for p in self.params
        ]
        self._t = 0

    #: Flip to False to run the retained allocating seed step
    #: (`_step_reference`); the scratch-buffer step is bit-identical.
    _fast_step = True

    def _step_reference(self) -> None:
        """Seed reference: allocating textbook update; kept as the oracle."""
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self) -> None:
        """One bias-corrected update, staged through scratch buffers.

        Every multiply/divide below targets a preallocated per-parameter
        buffer with ``out=``; the arithmetic (operations and their order)
        is unchanged from the textbook formulation, so parameter
        trajectories are bit-identical — the step just stops allocating
        ~7 temporaries per parameter, which dominates small-batch
        training loops like GRNA's generator.
        """
        if not self._fast_step:
            self._step_reference()
            return
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v, (buf_m, buf_v) in zip(
            self.params, self._m, self._v, self._scratch
        ):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=buf_m)
            m += buf_m
            v *= self.beta2
            np.multiply(grad, 1.0 - self.beta2, out=buf_v)
            buf_v *= grad
            v += buf_v
            np.divide(m, bias1, out=buf_m)  # m_hat
            np.divide(v, bias2, out=buf_v)  # v_hat
            np.sqrt(buf_v, out=buf_v)
            buf_v += self.eps
            buf_m *= self.lr
            buf_m /= buf_v
            p.data -= buf_m


OPTIMIZERS = {"sgd": SGD, "adam": Adam}


def make_optimizer(name: str, params: Sequence[Parameter], lr: float, **kwargs) -> Optimizer:
    """Build an optimizer by name (``"sgd"`` or ``"adam"``)."""
    try:
        cls = OPTIMIZERS[name]
    except KeyError:
        raise ValidationError(
            f"unknown optimizer {name!r}; choose from {sorted(OPTIMIZERS)}"
        ) from None
    return cls(params, lr=lr, **kwargs)
