"""Module/Parameter abstractions for the neural-network framework.

Mirrors the ``torch.nn.Module`` contract at the scale this reproduction
needs: parameter registration via attribute assignment, recursive parameter
collection, train/eval mode switching, and state-dict (de)serialization.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ValidationError
from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; always created with ``requires_grad=True``."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural-network modules.

    Subclasses implement :meth:`forward`; parameters and sub-modules
    assigned as attributes are discovered automatically.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Compute the module's output; must be overridden."""
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs recursively."""
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                yield f"{prefix}{name}", value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{prefix}{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{prefix}{name}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{prefix}{name}.{i}", item

    def parameters(self) -> list[Parameter]:
        """All trainable parameters, depth-first."""
        return [p for _, p in self.named_parameters()]

    def n_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def modules(self) -> Iterator["Module"]:
        """Yield this module and every sub-module recursively."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def train(self, mode: bool = True) -> "Module":
        """Switch all sub-modules into training (or eval) mode."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Switch all sub-modules into evaluation mode."""
        return self.train(False)

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by its dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values by name; shapes must match exactly."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise ValidationError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            value = np.asarray(value, dtype=np.float64)
            if value.shape != params[name].data.shape:
                raise ValidationError(
                    f"shape mismatch for {name}: {value.shape} vs {params[name].data.shape}"
                )
            params[name].data = value.copy()
