"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.random import check_random_state


def xavier_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator | int = 0
) -> np.ndarray:
    """Glorot/Xavier uniform init: ``U(-a, a)`` with ``a = sqrt(6/(in+out))``.

    Suited to sigmoid/tanh layers (used by the GRNA generator).
    """
    _check_fans(fan_in, fan_out)
    rng = check_random_state(rng)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def kaiming_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator | int = 0
) -> np.ndarray:
    """He/Kaiming uniform init: ``U(-a, a)`` with ``a = sqrt(6/in)``.

    Suited to ReLU layers (used by the VFL NN model and the RF surrogate).
    """
    _check_fans(fan_in, fan_out)
    rng = check_random_state(rng)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def normal_init(
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator | int = 0,
    std: float = 0.01,
) -> np.ndarray:
    """Small-variance Gaussian init ``N(0, std^2)`` (Algorithm 2, line 1)."""
    _check_fans(fan_in, fan_out)
    if std <= 0:
        raise ValidationError(f"std must be positive, got {std}")
    rng = check_random_state(rng)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


INITIALIZERS = {
    "xavier": xavier_uniform,
    "kaiming": kaiming_uniform,
    "normal": normal_init,
}


def get_initializer(name: str):
    """Look up an initializer by name."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise ValidationError(
            f"unknown initializer {name!r}; choose from {sorted(INITIALIZERS)}"
        ) from None


def _check_fans(fan_in: int, fan_out: int) -> None:
    if fan_in <= 0 or fan_out <= 0:
        raise ValidationError(f"fans must be positive, got ({fan_in}, {fan_out})")
