"""Neural-network layers: Linear, activations, containers, LayerNorm, Dropout.

Together with :mod:`repro.nn.module` these replace the slice of
``torch.nn`` the paper's models need:

- the VFL neural network (input → 600 → 300 → 100 → c, ReLU);
- the GRNA generator (d → 600 → 200 → 100 → d_target, LayerNorm after each
  hidden layer, §VI-C);
- the RF surrogate (d → 2000 → 200 → c, §V-B).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, ValidationError
from repro.nn.init import get_initializer
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.utils.random import check_random_state
from repro.utils.validation import check_positive_int


class Linear(Module):
    """Affine map ``y = x W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        init: str = "kaiming",
        rng: np.random.Generator | int = 0,
    ) -> None:
        super().__init__()
        self.in_features = check_positive_int(in_features, name="in_features")
        self.out_features = check_positive_int(out_features, name="out_features")
        initializer = get_initializer(init)
        rng = check_random_state(rng)
        self.weight = Parameter(initializer(self.in_features, self.out_features, rng))
        self.bias = Parameter(np.zeros(self.out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"Linear({self.in_features}->{self.out_features}) got input shape {x.shape}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    """Elementwise ReLU activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Sigmoid(Module):
    """Elementwise logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    """Elementwise tanh activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ValidationError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = float(negative_slope)

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class Softmax(Module):
    """Softmax along the last axis."""

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=-1)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        for layer in layers:
            if not isinstance(layer, Module):
                raise ValidationError(f"Sequential expects Modules, got {type(layer).__name__}")
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def append(self, layer: Module) -> "Sequential":
        """Append a layer, returning self for chaining."""
        if not isinstance(layer, Module):
            raise ValidationError(f"Sequential expects Modules, got {type(layer).__name__}")
        self.layers.append(layer)
        return self


class LayerNorm(Module):
    """Layer normalization over the last axis (Ba et al., 2016).

    The paper applies LayerNorm after each hidden layer of the GRNA
    generator "to stabilize the hidden states" (§VI-C).
    """

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = check_positive_int(normalized_shape, name="normalized_shape")
        if eps <= 0:
            raise ValidationError(f"eps must be positive, got {eps}")
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(self.normalized_shape))
        self.beta = Parameter(np.zeros(self.normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.normalized_shape:
            raise ShapeError(
                f"LayerNorm({self.normalized_shape}) got input shape {x.shape}"
            )
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalized = (x - mu) / (var + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    Used both inside the VFL NN when evaluating the dropout countermeasure
    (Fig. 11e-f) and available for the generator.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValidationError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self.rng = check_random_state(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


def mlp(
    layer_sizes: list[int],
    *,
    activation: str = "relu",
    layer_norm: bool = False,
    dropout: float = 0.0,
    init: str = "kaiming",
    rng: np.random.Generator | int = 0,
) -> Sequential:
    """Build a multilayer perceptron from a list of layer widths.

    ``layer_sizes = [in, h1, ..., out]``; an activation (and optionally
    LayerNorm / Dropout) follows every hidden layer but not the output.
    """
    if len(layer_sizes) < 2:
        raise ValidationError("layer_sizes needs at least input and output widths")
    activations = {"relu": ReLU, "sigmoid": Sigmoid, "tanh": Tanh, "leaky_relu": LeakyReLU}
    if activation not in activations:
        raise ValidationError(
            f"unknown activation {activation!r}; choose from {sorted(activations)}"
        )
    rng = check_random_state(rng)
    layers: list[Module] = []
    for i, (fan_in, fan_out) in enumerate(zip(layer_sizes[:-1], layer_sizes[1:])):
        layers.append(Linear(fan_in, fan_out, init=init, rng=rng))
        is_hidden = i < len(layer_sizes) - 2
        if is_hidden:
            if layer_norm:
                layers.append(LayerNorm(fan_out))
            layers.append(activations[activation]())
            if dropout > 0.0:
                layers.append(Dropout(dropout, rng=rng))
    return Sequential(*layers)
