"""The deterministic chaos engine: stochastic faults as pure functions.

Every stochastic fault decision — does party ``p`` flake in round ``r``
on attempt ``a``? how long does its reply take? which byte of the frame
flips? — is a *pure function* of ``(seed, party, round, attempt)``.
Nothing is mutated between decisions, so the answers cannot depend on
scheduler interleaving, on which other parties are still retrying, or
on where a checkpoint cut the run: the three properties that make a
storm bit-reproducible fall out of statelessness rather than careful
locking.

The per-party stream derivation reuses the library's
:func:`~repro.utils.random.spawn_rngs` prefix scheme: party ``p``'s
base seed is the ``p``-th integer of the spawn draw for ``seed``, so
the fault streams of a 3-party storm are a prefix of the same storm
widened to 10 parties. Each decision then seeds a fresh generator with
``[base, round, attempt, salt]`` — numpy hashes the sequence through
``SeedSequence``, so neighbouring rounds and attempts are decorrelated.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.utils.random import check_random_state

__all__ = ["FaultOutcome", "decision_rng", "party_stream_base"]

#: Salt values partitioning one (party, round, attempt) cell into
#: independent decision streams.
FAULT_SALT = 0
JITTER_SALT = 1


@dataclass(frozen=True)
class FaultOutcome:
    """What the chaos engine decided for one (party, round, attempt).

    Attributes
    ----------
    kind:
        ``"ok"`` (the attempt succeeds), ``"drop"``/``"crash"`` (the
        party is permanently gone — retrying is pointless), ``"flaky"``
        (this attempt fails, another may succeed), or ``"corrupt"``
        (the reply frame is bit-flipped in flight).
    latency:
        Simulated seconds the reply takes; the resilient exchange
        advances its :class:`~repro.resilience.SimClock` by the wave's
        slowest reply and compares each latency against the retry
        policy's per-attempt timeout.
    token:
        A deterministic 63-bit draw accompanying ``"corrupt"`` outcomes;
        the runtime derives the flipped byte/bit position from it so the
        corruption itself is reproducible.
    """

    kind: str
    latency: float = 0.0
    token: int = 0

    @property
    def permanent(self) -> bool:
        """True when retrying this party cannot help."""
        return self.kind in ("drop", "crash")

    @property
    def failed(self) -> bool:
        """True when this attempt produced no usable reply by itself.

        Timeouts are not included: a slow reply only *becomes* a failure
        against a retry policy's timeout, which the runtime owns.
        """
        return self.kind in ("drop", "crash", "flaky", "corrupt")


#: The "nothing happened" outcome shared by every un-faulted party.
OK = FaultOutcome(kind="ok")


@lru_cache(maxsize=1024)
def party_stream_base(seed: int, party: int) -> int:
    """Party ``party``'s base seed under the spawn-prefix scheme.

    The ``party``-th integer of :func:`spawn_rngs`' seed draw for
    ``seed`` — prefix-stable, so adding parties to a topology never
    changes the fault streams of the existing ones. Cached: the draw is
    O(party) and the resilient exchange asks per attempt.
    """
    draws = check_random_state(int(seed)).integers(0, 2**63 - 1, size=int(party) + 1)
    return int(draws[party])


def decision_rng(
    seed: int, party: int, round_id: int, attempt: int, salt: int = FAULT_SALT
) -> np.random.Generator:
    """A fresh generator for one fault decision cell.

    Pure in its arguments: the same cell always yields the same stream,
    regardless of which other cells were evaluated before it or on
    which thread — the statelessness the module docstring leans on.
    """
    return np.random.default_rng(
        [party_stream_base(seed, party), int(round_id), int(attempt), int(salt)]
    )
