"""Resilience layer: deterministic fault storms, retries, degradation.

Real federated deployments lose parties mid-protocol, and the paper's
attacks are only as interesting as the serving stack that survives long
enough to answer queries. This package makes failure a *first-class,
reproducible* input: a storm of flaky parties, crashes, corrupted
frames and timeouts is just another seeded scenario — bit-identical
across schedulers, across checkpoint/resume, and free of wall-clock
time.

- :mod:`~repro.resilience.chaos` — every stochastic fault decision is a
  pure function of ``(seed, party, round, attempt)`` under the library's
  spawn-prefix seeding scheme; statelessness, not locking, is what makes
  storms reproducible;
- :mod:`~repro.resilience.clock` — :class:`SimClock`, simulated time as
  counter arithmetic so timeouts and backoff cost no wall time;
- :mod:`~repro.resilience.retry` — :class:`RetryPolicy`: bounded
  attempts, exponential backoff with seeded jitter, per-attempt timeout;
- :mod:`~repro.resilience.degrade` — the :data:`DEGRADATIONS` registry
  (``zero_fill``, ``last_known``) imputing a missing party's block when
  the surviving coalition still meets quorum;
- :mod:`~repro.resilience.breaker` — request-counted per-consumer
  circuit breakers for the serving layer;
- :mod:`~repro.resilience.state` — checkpoint codecs so a SIGKILL
  mid-storm resumes byte-for-byte.

The layer sits just above :mod:`repro.utils` in the import DAG: the
federation runtime and serving layer *consume* these primitives, never
the reverse.

::

    from repro import run_scenario, ScenarioConfig

    report = run_scenario(ScenarioConfig(
        dataset="bank", model="nn", attack="grna",
        topology={"n_parties": 3,
                  "faults": [{"kind": "flaky", "party": 1, "p": 0.3}]},
        retry=3, quorum=2 / 3,
    ))
    print(report.availability)   # which rounds degraded, retry/timeout counts
"""

from repro.resilience.breaker import BreakerPolicy, CircuitBreaker
from repro.resilience.chaos import FaultOutcome, decision_rng, party_stream_base
from repro.resilience.clock import SimClock
from repro.resilience.degrade import DEGRADATIONS, ReplyCache
from repro.resilience.retry import RetryPolicy

# Register this layer's checkpoint codecs (clock/cache state, breakers)
# on import.
from repro.resilience import state as _state  # noqa: F401
from repro.resilience.state import ResilienceState

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "DEGRADATIONS",
    "FaultOutcome",
    "ReplyCache",
    "ResilienceState",
    "RetryPolicy",
    "SimClock",
    "decision_rng",
    "party_stream_base",
]
