"""Checkpoint codecs for resilience state: clock, availability, breakers.

Registered in :data:`repro.checkpoint.CHECKPOINTS` on resilience-package
import, mirroring :mod:`repro.serving.state` one layer down. A SIGKILL
mid-storm must resume bit-identically: the simulated clock reading, the
record of already-degraded rounds, the per-party reply cache feeding the
``last_known`` strategy, and every consumer's breaker trajectory are all
part of that contract, so they all ride in snapshots.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.checkpoint.codec import CHECKPOINTS, StateCodec
from repro.exceptions import CheckpointError
from repro.resilience.breaker import BREAKER_STATES, BreakerPolicy, CircuitBreaker
from repro.resilience.clock import SimClock
from repro.resilience.degrade import ReplyCache

__all__ = ["CircuitBreakerCodec", "ResilienceState", "ResilienceStateCodec"]


class ResilienceState:
    """The mutable companion of a resilient exchange.

    Attributes
    ----------
    clock:
        The run's :class:`SimClock`; backoffs and reply latencies accrue
        here instead of costing wall time.
    availability:
        One entry per *degraded* round:
        ``{"round", "missing", "attempts", "strategy"}`` in round order
        — the raw record behind
        :meth:`~repro.federation.FederationRuntime.availability_report`.
    cache:
        The bounded per-party :class:`ReplyCache` the ``last_known``
        degradation strategy reads from.
    """

    def __init__(self) -> None:
        self.clock = SimClock()
        self.availability: list[dict[str, Any]] = []
        self.cache = ReplyCache()


@CHECKPOINTS.register("resilience/runtime")
class ResilienceStateCodec(StateCodec):
    """Snapshot a :class:`ResilienceState`: clock, degradations, cache."""

    kind = "resilience/runtime"
    target = ResilienceState
    state_fields = ("clock", "availability", "cache")

    def capture(self, obj: Any) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        meta = {
            "sim_seconds": obj.clock.now,
            "availability": [dict(entry) for entry in obj.availability],
            "cached_parties": obj.cache.parties(),
        }
        arrays = {
            f"party{party}": obj.cache.get(party) for party in obj.cache.parties()
        }
        return meta, arrays

    def restore(
        self, obj: Any, meta: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> None:
        obj.clock = SimClock(float(meta["sim_seconds"]))
        obj.availability = [dict(entry) for entry in meta["availability"]]
        obj.cache = ReplyCache()
        for party in meta["cached_parties"]:
            obj.cache.put(int(party), arrays[f"party{party}"])


@CHECKPOINTS.register("resilience/breaker")
class CircuitBreakerCodec(StateCodec):
    """Snapshot a :class:`CircuitBreaker`: policy plus machine counters."""

    kind = "resilience/breaker"
    target = CircuitBreaker
    state_fields = ("policy", "state", "failures", "cooldown_left")

    def capture(self, obj: Any) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        meta = {
            "policy": obj.policy.to_payload(),
            "state": obj.state,
            "failures": obj.failures,
            "cooldown_left": obj.cooldown_left,
        }
        return meta, {}

    def restore(
        self, obj: Any, meta: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> None:
        if meta["state"] not in BREAKER_STATES:
            raise CheckpointError(
                f"snapshot declares breaker state {meta['state']!r}; legal "
                f"states are {BREAKER_STATES}"
            )
        policy = BreakerPolicy(
            failure_threshold=int(meta["policy"]["failure_threshold"]),
            cooldown=int(meta["policy"]["cooldown"]),
        )
        policy.validate()
        obj.policy = policy
        obj.state = str(meta["state"])
        obj.failures = int(meta["failures"])
        obj.cooldown_left = int(meta["cooldown_left"])
