"""Retry policies: bounded attempts, seeded backoff, simulated timeouts.

A :class:`RetryPolicy` is plain frozen data consumed by the federation
runtime's resilient exchange: how many attempts a party gets per round,
how long (in *simulated* seconds) the exchange backs off between retry
waves, how much seeded jitter decorrelates the backoffs, and the
per-attempt latency bound past which a reply counts as timed out. The
jitter draw comes from the chaos engine's pure decision streams
(:func:`~repro.resilience.chaos.decision_rng` with the jitter salt), so
two schedulers — or a checkpoint-resumed run — compute byte-identical
backoff schedules.

Policies JSON round-trip (:meth:`to_payload` / :meth:`from_payload`)
so :class:`~repro.api.ScenarioConfig` can persist them; the
:meth:`from_spec` normalizer additionally accepts the ``int`` shorthand
(``retry=3`` means three attempts with the default backoff).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.exceptions import ValidationError
from repro.resilience.chaos import JITTER_SALT, decision_rng

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the resilient exchange spends attempts on a failing party.

    Attributes
    ----------
    max_attempts:
        Total attempts per party per round (1 = no retries).
    backoff_base:
        Simulated seconds slept before the first retry wave.
    backoff_factor:
        Multiplier applied per further wave (exponential backoff).
    jitter:
        Fraction of the backoff added as a seeded uniform draw in
        ``[0, jitter]`` — decorrelates per-party retry schedules
        without wall-clock entropy. ``0.0`` disables jitter.
    timeout:
        Per-attempt simulated-latency bound; a reply slower than this
        is discarded and the attempt counts as a timeout. ``None``
        waits forever (latency still accrues on the clock).
    seed:
        Seed for the jitter decision streams.
    """

    max_attempts: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.0
    timeout: "float | None" = None
    seed: int = 0

    def validate(self) -> None:
        """Reject malformed policies with actionable messages."""
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ValidationError(
                f"retry max_attempts must be an int >= 1, got {self.max_attempts!r}"
            )
        if self.backoff_base < 0.0:
            raise ValidationError(
                f"retry backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ValidationError(
                "retry backoff_factor must be >= 1 (backoff never shrinks), "
                f"got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValidationError(
                f"retry jitter must lie in [0, 1], got {self.jitter}"
            )
        if self.timeout is not None and self.timeout <= 0.0:
            raise ValidationError(
                f"retry timeout must be positive seconds or None, got {self.timeout}"
            )
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValidationError(
                f"retry seed must be a non-negative int, got {self.seed!r}"
            )

    def backoff(self, party: int, round_id: int, attempt: int) -> float:
        """Simulated backoff before ``attempt`` (>= 1) at one party.

        ``base * factor**(attempt-1)``, stretched by the party's seeded
        jitter draw for this exact ``(round, attempt)`` cell — a pure
        function, like every chaos decision.
        """
        if attempt < 1:
            raise ValidationError(
                f"backoff precedes retry attempts only; attempt must be >= 1, "
                f"got {attempt}"
            )
        delay = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if self.jitter > 0.0:
            draw = decision_rng(self.seed, party, round_id, attempt, JITTER_SALT)
            delay *= 1.0 + self.jitter * float(draw.random())
        return delay

    # ------------------------------------------------------------------
    # Persistence / normalization
    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """JSON-ready dict mirroring the field layout."""
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "jitter": self.jitter,
            "timeout": self.timeout,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "RetryPolicy":
        """Rebuild (and validate) a policy from :meth:`to_payload` output."""
        policy = cls(
            max_attempts=int(payload["max_attempts"]),
            backoff_base=float(payload["backoff_base"]),
            backoff_factor=float(payload["backoff_factor"]),
            jitter=float(payload["jitter"]),
            timeout=(
                None if payload.get("timeout") is None else float(payload["timeout"])
            ),
            seed=int(payload.get("seed", 0)),
        )
        policy.validate()
        return policy

    @classmethod
    def from_spec(cls, spec: "RetryPolicy | int | dict | None") -> "RetryPolicy":
        """Normalize the scenario-facing shorthand into a valid policy.

        ``None`` means the single-attempt default, an ``int`` is
        ``max_attempts`` with default backoff, a dict is a
        :meth:`to_payload`-shaped payload (missing keys defaulted), and
        a policy instance passes through validated.
        """
        if spec is None:
            policy = cls()
        elif isinstance(spec, RetryPolicy):
            policy = spec
        elif isinstance(spec, bool):
            raise ValidationError(f"retry spec {spec!r} is not a policy")
        elif isinstance(spec, int):
            policy = cls(max_attempts=spec)
        elif isinstance(spec, dict):
            defaults = cls().to_payload()
            unknown = set(spec) - set(defaults)
            if unknown:
                raise ValidationError(
                    f"unknown retry policy keys {sorted(unknown)}; choose from "
                    f"{sorted(defaults)}"
                )
            policy = cls.from_payload({**defaults, **spec})
        else:
            raise ValidationError(
                f"retry must be a RetryPolicy, an int attempt count, a payload "
                f"dict, or None, got {type(spec).__name__}"
            )
        policy.validate()
        return policy
