"""Simulated time for fault storms: latency as arithmetic, not sleep.

A storm scenario must be able to model timeouts, backoff delays, and
straggling replies without costing wall-clock time or reading wall-clock
sources (the ``wallclock-entropy`` lint rule confines those to the
timing tier). :class:`SimClock` is the whole answer: a monotone float
counter the resilient exchange advances by the *declared* latency of
each wave — the slowest surviving reply, plus any backoff between retry
attempts. Because advancing is pure arithmetic over deterministic
inputs, the clock reading after any round is bit-identical across
schedulers and survives checkpoint/resume exactly.
"""

from __future__ import annotations

from repro.exceptions import ValidationError

__all__ = ["SimClock"]


class SimClock:
    """A monotone simulated clock (seconds as a float counter)."""

    def __init__(self, now: float = 0.0) -> None:
        if now < 0.0:
            raise ValidationError(f"simulated time must be >= 0, got {now}")
        self._now = float(now)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since the run started."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds``; returns the new reading."""
        seconds = float(seconds)
        if seconds < 0.0:
            raise ValidationError(
                f"simulated time only moves forward; cannot advance by {seconds}"
            )
        self._now += seconds
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"SimClock(now={self._now:.6f})"
