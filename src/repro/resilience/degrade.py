"""Degradation strategies: serving a round without one of its parties.

When retries are exhausted but the surviving coalition still meets the
configured quorum, the resilient exchange *imputes* the missing party's
feature block instead of failing the round. The imputation strategies
live in the :data:`DEGRADATIONS` registry so scenarios select them by
name (``degradation="zero_fill"``) and extensions can register new ones
without touching the runtime.

A strategy is a function ``(party, shape, cache) -> ndarray`` returning
a float64 block of exactly ``shape``. The :class:`ReplyCache` passed in
holds the most recent successfully decoded block per party — bounded by
construction at one entry per party — which is what makes the
``last_known`` strategy possible without unbounded memory growth.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.registry import Registry

__all__ = ["DEGRADATIONS", "ReplyCache", "last_known", "zero_fill"]

#: Named imputation strategies for quorum-degraded rounds.
DEGRADATIONS = Registry("degradation strategy")


class ReplyCache:
    """Last successfully decoded reply block, per party.

    One slot per party — ``put`` overwrites, so memory is bounded by the
    topology size no matter how many rounds a storm runs. Blocks are
    copied on the way in and out: a cached block must stay byte-stable
    even if the caller later mutates its array, or degraded rounds would
    stop being reproducible.
    """

    def __init__(self) -> None:
        self._blocks: dict[int, np.ndarray] = {}

    def put(self, party: int, block: np.ndarray) -> None:
        """Remember ``block`` as party ``party``'s latest good reply."""
        self._blocks[int(party)] = np.array(block, dtype=np.float64, copy=True)

    def get(self, party: int) -> "np.ndarray | None":
        """Party's latest good block (a copy), or ``None`` if never seen."""
        block = self._blocks.get(int(party))
        return None if block is None else block.copy()

    def parties(self) -> list[int]:
        """Parties with a cached block, sorted for stable iteration."""
        return sorted(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)


def _check_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    shape = tuple(int(dim) for dim in shape)
    if any(dim < 0 for dim in shape):
        raise ValidationError(f"degraded block shape must be non-negative: {shape}")
    return shape


@DEGRADATIONS.register("zero_fill")
def zero_fill(party: int, shape: tuple[int, ...], cache: ReplyCache) -> np.ndarray:
    """Impute the missing party's block as all zeros.

    The conservative default: a zero block contributes nothing to the
    score sum, equivalent to marginalizing the party out at the origin
    of its feature space.
    """
    return np.zeros(_check_shape(shape), dtype=np.float64)


@DEGRADATIONS.register("last_known")
def last_known(party: int, shape: tuple[int, ...], cache: ReplyCache) -> np.ndarray:
    """Impute with the party's most recent good block of the same shape.

    Falls back to :func:`zero_fill` when the cache has no block for the
    party yet (it failed its very first round) or the cached block was
    produced for a different batch shape — a stale mismatched block
    would be worse than an honest zero.
    """
    shape = _check_shape(shape)
    block = cache.get(party)
    if block is None or block.shape != shape:
        return np.zeros(shape, dtype=np.float64)
    return block
