"""Per-consumer circuit breakers for the serving layer.

A breaker sits between one consumer and the federation runtime: after
``failure_threshold`` consecutive runtime failures the breaker *opens*
and the service refuses that consumer's queries outright (a
:class:`~repro.exceptions.ServiceUnavailableError`, not a protocol
error), instead of spending protocol rounds — and communication budget —
on a coalition that keeps failing. After ``cooldown`` refused requests
the breaker goes *half-open*: exactly one probe query is allowed
through, and its outcome decides between closing (recovery) and
re-opening (another full cooldown).

Everything is counted in requests, not seconds: wall-clock backed
breakers would violate the determinism contract (the ``wallclock-entropy``
lint rule), and request counts make breaker trajectories bit-identical
across schedulers and checkpoint/resume — the breaker state is part of
the serving snapshot via :mod:`repro.resilience.state`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.exceptions import ValidationError

__all__ = ["BreakerPolicy", "CircuitBreaker"]

#: Legal breaker states (see module docstring for the transitions).
BREAKER_STATES = ("closed", "open", "half_open")


@dataclass(frozen=True)
class BreakerPolicy:
    """When a consumer's breaker opens, and how long it stays open.

    Attributes
    ----------
    failure_threshold:
        Consecutive runtime failures that open the breaker.
    cooldown:
        Refused requests the breaker absorbs while open before allowing
        one half-open probe.
    """

    failure_threshold: int = 3
    cooldown: int = 8

    def validate(self) -> None:
        """Reject malformed policies with actionable messages."""
        if not isinstance(self.failure_threshold, int) or self.failure_threshold < 1:
            raise ValidationError(
                "breaker failure_threshold must be an int >= 1, got "
                f"{self.failure_threshold!r}"
            )
        if not isinstance(self.cooldown, int) or self.cooldown < 1:
            raise ValidationError(
                f"breaker cooldown must be an int >= 1, got {self.cooldown!r}"
            )

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready dict mirroring the field layout."""
        return {
            "failure_threshold": self.failure_threshold,
            "cooldown": self.cooldown,
        }

    @classmethod
    def from_spec(cls, spec: "BreakerPolicy | int | dict | None") -> "BreakerPolicy | None":
        """Normalize the scenario-facing shorthand.

        ``None`` disables breakers entirely (the default — serving
        behaves exactly as before this layer existed). An ``int`` is a
        ``failure_threshold`` with the default cooldown; a dict is a
        :meth:`to_payload`-shaped payload with missing keys defaulted.
        """
        if spec is None:
            return None
        if isinstance(spec, BreakerPolicy):
            policy = spec
        elif isinstance(spec, bool):
            raise ValidationError(f"breaker spec {spec!r} is not a policy")
        elif isinstance(spec, int):
            policy = cls(failure_threshold=spec)
        elif isinstance(spec, dict):
            defaults = cls().to_payload()
            unknown = set(spec) - set(defaults)
            if unknown:
                raise ValidationError(
                    f"unknown breaker policy keys {sorted(unknown)}; choose "
                    f"from {sorted(defaults)}"
                )
            merged = {**defaults, **spec}
            policy = cls(
                failure_threshold=int(merged["failure_threshold"]),
                cooldown=int(merged["cooldown"]),
            )
        else:
            raise ValidationError(
                "breaker must be a BreakerPolicy, an int failure threshold, a "
                f"payload dict, or None, got {type(spec).__name__}"
            )
        policy.validate()
        return policy


class CircuitBreaker:
    """One consumer's breaker: closed → open → half-open → closed/open.

    Driven by exactly three events — ``allow`` (a request arrives),
    ``record_success``, ``record_failure`` — all pure state-machine
    transitions over integer counters, so replaying the same request
    sequence reproduces the same refusals byte-for-byte.
    """

    def __init__(self, policy: BreakerPolicy) -> None:
        policy.validate()
        self.policy = policy
        self.state = "closed"
        self.failures = 0
        self.cooldown_left = 0

    def allow(self) -> bool:
        """Gate one incoming request; ``False`` means refuse it.

        While open, each refused request burns one cooldown unit; the
        request that finds the cooldown exhausted transitions to
        half-open and is allowed through as the probe.
        """
        if self.state == "closed" or self.state == "half_open":
            return True
        self.cooldown_left -= 1
        if self.cooldown_left <= 0:
            self.state = "half_open"
            return True
        return False

    def record_success(self) -> None:
        """An allowed request completed: close and reset the failure run."""
        self.state = "closed"
        self.failures = 0
        self.cooldown_left = 0

    def record_failure(self) -> None:
        """An allowed request failed against the runtime.

        A half-open probe failing re-opens immediately; in the closed
        state the breaker opens once the consecutive-failure run reaches
        the policy threshold.
        """
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.policy.failure_threshold:
            self.state = "open"
            self.cooldown_left = self.policy.cooldown

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"CircuitBreaker(state={self.state!r}, failures={self.failures}, "
            f"cooldown_left={self.cooldown_left})"
        )
