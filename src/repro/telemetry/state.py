"""Checkpoint codec for tracer state: a resumed trace concatenates exactly.

Registered in :data:`repro.checkpoint.CHECKPOINTS` on telemetry-package
import. The codec captures every deterministic counter a
:class:`~repro.telemetry.Tracer` holds — next span id, tick, step, seq,
named counters, per-kind record counts — plus the *open-span stack*:
a snapshot taken mid-span (the serving accumulation suspends inside
``scenario.build``, GRNA inside its epoch loop) must restore the
enclosing spans so their eventual closes emit with the original ids,
ticks, and attrs. The resumed process's own rebuild spans are popped
and replaced wholesale; combined with the JSONL sink's skip-by-seq
append policy, the resumed file ends up byte-identical to an
uninterrupted run's.

The bound clock callable and the sink are deliberately *not* state:
both are live wiring the owner re-establishes after restore (the
resilience codec replaces the SimClock object itself, so a captured
reference would dangle).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.checkpoint.codec import CHECKPOINTS, StateCodec
from repro.telemetry.tracer import Tracer, TraceSpan

__all__ = ["TracerCodec"]


@CHECKPOINTS.register("telemetry/tracer")
class TracerCodec(StateCodec):
    """Snapshot a :class:`Tracer`: counters, seq position, open spans."""

    kind = "telemetry/tracer"
    target = Tracer
    state_fields = (
        "_next_span",
        "_tick",
        "_step",
        "_seq",
        "_counters",
        "_by_kind",
        "_stack",
        "_sim_last",
    )

    def capture(self, obj: Any) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        meta = {
            "next_span": obj._next_span,
            "tick": obj._tick,
            "step": obj._step,
            "seq": obj._seq,
            "counters": dict(obj._counters),
            "by_kind": dict(obj._by_kind),
            "sim_last": obj._sim_last,
            "stack": [
                {
                    "span": span.span,
                    "kind": span.kind,
                    "step": span.step,
                    "t0": span.t0,
                    "sim0": span.sim0,
                    "attrs": dict(span.attrs),
                }
                for span in obj._stack
            ],
        }
        return meta, {}

    def restore(
        self, obj: Any, meta: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> None:
        obj._next_span = int(meta["next_span"])
        obj._tick = int(meta["tick"])
        obj._step = int(meta["step"])
        obj._seq = int(meta["seq"])
        obj._counters = {name: int(n) for name, n in meta["counters"].items()}
        obj._by_kind = {kind: int(n) for kind, n in meta["by_kind"].items()}
        obj._sim_last = (
            None if meta["sim_last"] is None else float(meta["sim_last"])
        )
        # Wall open-times restart now: durations of spans that straddle
        # a resume are meaningless, and the wall field is quarantined
        # from every determinism check anyway.
        obj._stack = [
            TraceSpan(
                span=int(entry["span"]),
                kind=entry["kind"],
                step=int(entry["step"]),
                t0=int(entry["t0"]),
                sim0=None if entry["sim0"] is None else float(entry["sim0"]),
                attrs=dict(entry["attrs"]),
                wall0=obj._wall_now(),
            )
            for entry in meta["stack"]
        ]
