"""The :class:`Tracer`: ordered spans, events, and counters, deterministically.

Every record a tracer emits is a plain dict with a fixed schema::

    {"seq":    <emission index, 0-based, the sink order>,
     "span":   <unique id of this span/event>,
     "parent": <enclosing span id, or None at top level>,
     "type":   "span" | "event",
     "kind":   "serving.chunk" | "federation.round" | ...,
     "step":   <the owner-set logical step counter at open>,
     "t0":     <logical tick at open>,
     "t1":     <logical tick at close (== t0 for events)>,
     "sim0":   <SimClock seconds at open, or None when no clock is bound>,
     "sim1":   <SimClock seconds at close>,
     "attrs":  {<deterministic key/values set by the instrumentation>},
     "wall":   <wall-clock duration in seconds, or None>}

Everything except ``wall`` is a pure function of (config, seed): ticks
are a monotone counter advanced on every open/close/event, ``sim``
seconds come from whatever clock callable the owner binds (the
resilience layer's ``SimClock``, duck-typed so telemetry never imports
a sibling layer), and ``step`` is set by the instrumented loop (chunk
index, trace event index, epoch). ``wall`` is populated only when the
tracer is built with ``wall=True``, exclusively through
:mod:`repro.telemetry.wall`, and is ignored by every determinism check.

Span records are emitted at *close* time, so the sink order is the
close order — itself deterministic because spans are only opened and
closed from coordinator code, never inside scheduler worker tasks.
Closing pops the top of the open-span stack regardless of which handle
the ``with`` block holds: a checkpoint restore may have rewritten the
stack mid-span (see :mod:`repro.telemetry.state`), and the restored
span is the one whose close must hit the trace.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.exceptions import CheckpointPause
from repro.telemetry import wall as _wall
from repro.telemetry.sinks import TRACE_SINKS, JsonlSink, MemorySink, TraceSink

__all__ = ["Tracer", "TraceSpan", "make_tracer"]


class TraceSpan:
    """One open span: identity plus everything captured at open time.

    Mutate ``attrs`` freely while the span is open — the dict is
    emitted at close. ``span["key"] = value`` is shorthand for
    ``span.attrs["key"] = value``.
    """

    __slots__ = ("span", "kind", "step", "t0", "sim0", "attrs", "wall0")

    def __init__(
        self,
        span: int,
        kind: str,
        step: int,
        t0: int,
        sim0: "float | None",
        attrs: dict[str, Any],
        wall0: "float | None",
    ) -> None:
        self.span = span
        self.kind = kind
        self.step = step
        self.t0 = t0
        self.sim0 = sim0
        self.attrs = attrs
        self.wall0 = wall0

    def __setitem__(self, key: str, value: Any) -> None:
        self.attrs[key] = value


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_kind", "_attrs")

    def __init__(self, tracer: "Tracer", kind: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._kind = kind
        self._attrs = attrs

    def __enter__(self) -> TraceSpan:
        return self._tracer._open(self._kind, self._attrs)

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None and issubclass(exc_type, CheckpointPause):
            # A deliberate suspension: the span never completes in this
            # process — its close belongs to the resumed run, which
            # restores the open-span stack from the snapshot. Emitting
            # here would append records the fresh run never writes.
            self._tracer._abandon()
        else:
            self._tracer._close(error=exc_type is not None)


class Tracer:
    """Emit ordered, deterministic spans/events and keep running counters.

    Parameters
    ----------
    sink:
        Destination for emitted records; defaults to a fresh
        :class:`~repro.telemetry.sinks.MemorySink`.
    wall:
        When True, span records carry their wall-clock duration in the
        quarantined ``wall`` field (read through
        :mod:`repro.telemetry.wall` only). Default False: ``wall`` is
        None on every record and no wall clock is ever consulted.
    """

    def __init__(self, sink: "TraceSink | None" = None, *, wall: bool = False) -> None:
        self.sink = sink if sink is not None else MemorySink()
        self.wall = bool(wall)
        self._clock: "Callable[[], float] | None" = None
        self._next_span = 0
        self._tick = 0
        self._step = 0
        self._seq = 0
        self._counters: dict[str, int] = {}
        self._by_kind: dict[str, int] = {}
        self._stack: list[TraceSpan] = []
        self._sim_last: "float | None" = None

    # -- clock / step -------------------------------------------------

    def bind_clock(self, clock: "Callable[[], float] | None") -> None:
        """Bind a zero-argument callable returning simulated seconds.

        Duck-typed on purpose: the resilience layer's ``SimClock`` sits
        at the same DAG rank as telemetry, so the owner passes e.g.
        ``lambda: runtime.resilience.clock.now`` and may rebind after a
        checkpoint restore replaces the clock object.
        """
        self._clock = clock

    @property
    def step(self) -> int:
        """The owner-maintained logical step stamped on new records."""
        return self._step

    @step.setter
    def step(self, value: int) -> None:
        self._step = int(value)

    def _sim(self) -> "float | None":
        if self._clock is None:
            return self._sim_last
        self._sim_last = float(self._clock())
        return self._sim_last

    def _wall_now(self) -> "float | None":
        return _wall.now() if self.wall else None

    # -- spans / events / counters ------------------------------------

    def span(self, kind: str, **attrs: Any) -> _SpanContext:
        """Open a span as a context manager; yields the :class:`TraceSpan`."""
        return _SpanContext(self, kind, attrs)

    def _open(self, kind: str, attrs: dict[str, Any]) -> TraceSpan:
        self._tick += 1
        span = TraceSpan(
            span=self._next_span,
            kind=kind,
            step=self._step,
            t0=self._tick,
            sim0=self._sim(),
            attrs=dict(attrs),
            wall0=self._wall_now(),
        )
        self._next_span += 1
        self._stack.append(span)
        return span

    def _close(self, *, error: bool = False) -> None:
        span = self._stack.pop()
        self._tick += 1
        if error:
            span.attrs["error"] = True
        wall_now = self._wall_now()
        self._emit(
            {
                "seq": None,
                "span": span.span,
                "parent": self._stack[-1].span if self._stack else None,
                "type": "span",
                "kind": span.kind,
                "step": span.step,
                "t0": span.t0,
                "t1": self._tick,
                "sim0": span.sim0,
                "sim1": self._sim(),
                "attrs": span.attrs,
                "wall": (
                    wall_now - span.wall0
                    if wall_now is not None and span.wall0 is not None
                    else None
                ),
            }
        )

    def _abandon(self) -> None:
        """Drop the top open span without emitting (suspension unwind)."""
        self._stack.pop()

    def event(self, kind: str, **attrs: Any) -> None:
        """Emit a zero-duration record immediately."""
        self._tick += 1
        sim = self._sim()
        span_id = self._next_span
        self._next_span += 1
        self._emit(
            {
                "seq": None,
                "span": span_id,
                "parent": self._stack[-1].span if self._stack else None,
                "type": "event",
                "kind": kind,
                "step": self._step,
                "t0": self._tick,
                "t1": self._tick,
                "sim0": sim,
                "sim1": sim,
                "attrs": dict(attrs),
                "wall": None,
            }
        )

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named counter (no record; surfaces in :meth:`summary`)."""
        self._counters[name] = self._counters.get(name, 0) + int(n)

    def _emit(self, record: dict[str, Any]) -> None:
        record["seq"] = self._seq
        self._seq += 1
        kind = record["kind"]
        self._by_kind[kind] = self._by_kind.get(kind, 0) + 1
        self.sink.emit(record)

    # -- introspection ------------------------------------------------

    @property
    def records_emitted(self) -> int:
        """Total records emitted so far (== the next record's ``seq``)."""
        return self._seq

    @property
    def counters(self) -> dict[str, int]:
        """Live view of the named counters."""
        return self._counters

    def summary(self) -> dict[str, Any]:
        """Deterministic roll-up for reports: counts by kind plus counters."""
        return {
            "records": self._seq,
            "by_kind": dict(sorted(self._by_kind.items())),
            "counters": dict(sorted(self._counters.items())),
            "sim_seconds": self._sim_last,
        }

    def close(self) -> None:
        """Close the underlying sink (open spans stay un-emitted)."""
        self.sink.close()


def make_tracer(spec: "bool | dict[str, Any] | None") -> "Tracer | None":
    """Build a tracer from a ``ScenarioConfig.telemetry`` knob value.

    ``None``/``False`` → no tracer; ``True`` → memory sink, no wall;
    a dict → ``{"sink": "memory" | "jsonl", "path": <jsonl file>,
    "wall": <bool>}`` with memory/False defaults.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return Tracer(MemorySink())
    name = spec.get("sink", "memory")
    sink_cls = TRACE_SINKS.get(name)
    if sink_cls is JsonlSink:
        sink: TraceSink = JsonlSink(spec["path"])
    else:
        sink = sink_cls()
    return Tracer(sink, wall=bool(spec.get("wall", False)))
