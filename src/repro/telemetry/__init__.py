"""Deterministic telemetry: spans, events, counters, and trace tooling.

The observability layer the rest of the stack reports into. A
:class:`Tracer` emits ordered records — ``scenario.build``,
``serving.chunk``, ``federation.round``, ``resilience.retry_wave``,
``breaker.transition``, ``checkpoint.snapshot``, ``grna.epoch`` — whose
canonical content (logical ticks, steps, simulated-clock seconds,
attrs) is a pure function of (config, seed): the same scenario traced
on the sequential and the threaded scheduler, or across shard counts,
or killed and resumed, produces the same records. Wall-clock durations
ride in a quarantined ``wall`` field sourced exclusively from
:mod:`repro.telemetry.wall` (the lint timing tier's only telemetry
member) and ignored by every determinism check.

Records flow into a sink from :data:`TRACE_SINKS` — ``"memory"`` for
tests and benchmarks, ``"jsonl"`` for durable traces (append-only,
fsync'd per record, resume-aware by sequence number so a checkpointed
run's trace concatenates byte-identically with a fresh run's). The
``repro-trace`` console script (``summarize`` / ``critical-path`` /
``diff``) inspects recorded JSONL traces; scenario runs opt in through
the ``ScenarioConfig.telemetry`` knob and surface the roll-up on
``ScenarioReport.telemetry``.
"""

from repro.telemetry.sinks import (
    TRACE_SINKS,
    JsonlSink,
    MemorySink,
    TraceSink,
    load_trace,
)
from repro.telemetry.tracer import Tracer, TraceSpan, make_tracer

# Register the tracer checkpoint codec on package import, mirroring the
# serving/resilience state modules.
from repro.telemetry import state as _state  # noqa: F401

__all__ = [
    "TRACE_SINKS",
    "JsonlSink",
    "MemorySink",
    "TraceSink",
    "TraceSpan",
    "Tracer",
    "load_trace",
    "make_tracer",
]
