"""Wall-clock quarantine: the only telemetry code allowed to read real time.

The determinism contract bans wall-clock sources everywhere outside the
benchmark timing tier (the ``wallclock-entropy`` lint rule). Telemetry
still wants wall durations — profiling a federation round is the whole
point — so this module is the single sanctioned leak: it is listed in
:data:`repro.analysis.config.DEFAULT_TIMING_MODULES`, and everything it
returns is quarantined in the trace record's ``wall`` field, which the
canonical tooling (``repro-trace diff``, the determinism oracles)
ignores. The rest of :mod:`repro.telemetry` never touches a wall clock;
a tracer constructed with ``wall=False`` (the default) calls nothing in
this module and emits ``wall: null`` on every record.
"""

from __future__ import annotations

import time

__all__ = ["now"]


def now() -> float:
    """Seconds since the epoch, from the real (non-deterministic) clock.

    Deliberately ``time.time`` — a banned call everywhere else — so the
    lint timing tier provably fences the only wall-clock read telemetry
    performs.
    """
    return time.time()
