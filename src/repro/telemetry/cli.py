"""``repro-trace``: inspect recorded JSONL traces from the command line.

Three subcommands::

    repro-trace summarize RUN.jsonl            # per-kind count/total/self table
    repro-trace critical-path RUN.jsonl        # slowest chain through a round
    repro-trace diff A.jsonl B.jsonl           # compare, ignoring wall fields

``summarize`` aggregates every record by kind: how many, total ticks
(logical open→close distance), self ticks (total minus direct
children), and total simulated seconds where a clock was bound.
``critical-path`` picks the slowest span of the requested kind
(``federation.round`` by default, falling back to the slowest root) and
descends through the slowest child at each level. ``diff`` compares two
traces record by record with every ``wall`` field stripped — the
determinism contract in executable form; exit code 1 on divergence.
"""

from __future__ import annotations

import argparse
from typing import Any

from repro.telemetry.sinks import load_trace

__all__ = ["main", "summarize_lines", "critical_path", "trace_diff"]


def _ticks(record: dict[str, Any]) -> int:
    return int(record["t1"]) - int(record["t0"])


def _sim(record: dict[str, Any]) -> float:
    if record["sim0"] is None or record["sim1"] is None:
        return 0.0
    return float(record["sim1"]) - float(record["sim0"])


def _children(records: list[dict[str, Any]]) -> dict[Any, list[dict[str, Any]]]:
    children: dict[Any, list[dict[str, Any]]] = {}
    for record in records:
        children.setdefault(record["parent"], []).append(record)
    return children


def summarize_lines(records: list[dict[str, Any]]) -> list[str]:
    """The ``summarize`` table as printable lines."""
    children = _children(records)
    per_kind: dict[str, dict[str, float]] = {}
    for record in records:
        row = per_kind.setdefault(
            record["kind"], {"count": 0, "ticks": 0, "self": 0, "sim": 0.0, "wall": 0.0}
        )
        ticks = _ticks(record)
        child_ticks = sum(_ticks(c) for c in children.get(record["span"], []))
        row["count"] += 1
        row["ticks"] += ticks
        row["self"] += ticks - child_ticks
        row["sim"] += _sim(record)
        if record.get("wall") is not None:
            row["wall"] += float(record["wall"])
    header = f"{'kind':<24} {'count':>7} {'ticks':>8} {'self':>8} {'sim_s':>10} {'wall_s':>10}"
    lines = [header, "-" * len(header)]
    for kind in sorted(per_kind):
        row = per_kind[kind]
        lines.append(
            f"{kind:<24} {int(row['count']):>7} {int(row['ticks']):>8} "
            f"{int(row['self']):>8} {row['sim']:>10.3f} {row['wall']:>10.3f}"
        )
    lines.append(f"{len(records)} records, {len(per_kind)} kinds")
    return lines


def critical_path(
    records: list[dict[str, Any]], kind: str = "federation.round"
) -> list[dict[str, Any]]:
    """The slowest chain: worst span of ``kind``, then worst child, down.

    Falls back to the slowest root span when no record of ``kind``
    exists; returns ``[]`` for an empty trace.
    """
    children = _children(records)
    candidates = [r for r in records if r["kind"] == kind]
    if not candidates:
        candidates = [r for r in records if r["parent"] is None]
    if not candidates:
        return []
    node = max(candidates, key=lambda r: (_ticks(r), _sim(r), -r["seq"]))
    path = [node]
    while True:
        below = [c for c in children.get(node["span"], []) if c["type"] == "span"]
        if not below:
            return path
        node = max(below, key=lambda r: (_ticks(r), _sim(r), -r["seq"]))
        path.append(node)


def _canonical(record: dict[str, Any]) -> dict[str, Any]:
    return {key: value for key, value in record.items() if key != "wall"}


def trace_diff(
    a: list[dict[str, Any]], b: list[dict[str, Any]]
) -> "tuple[int, dict[str, Any] | None, dict[str, Any] | None] | None":
    """First divergence between two traces, wall fields ignored.

    Returns ``None`` when identical, else ``(index, record_a, record_b)``
    with ``None`` standing in for a missing record past the shorter end.
    """
    for i in range(max(len(a), len(b))):
        left = _canonical(a[i]) if i < len(a) else None
        right = _canonical(b[i]) if i < len(b) else None
        if left != right:
            return i, left, right
    return None


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-kind count/total/self-time table")
    p_sum.add_argument("trace", help="JSONL trace file")

    p_crit = sub.add_parser("critical-path", help="slowest chain through a round")
    p_crit.add_argument("trace", help="JSONL trace file")
    p_crit.add_argument(
        "--kind",
        default="federation.round",
        help="span kind to start from (default: federation.round)",
    )

    p_diff = sub.add_parser("diff", help="compare two traces, ignoring wall fields")
    p_diff.add_argument("trace_a", help="first JSONL trace file")
    p_diff.add_argument("trace_b", help="second JSONL trace file")

    args = parser.parse_args(argv)

    if args.command == "summarize":
        for line in summarize_lines(load_trace(args.trace)):
            print(line)
        return 0

    if args.command == "critical-path":
        path = critical_path(load_trace(args.trace), kind=args.kind)
        if not path:
            print("empty trace")
            return 0
        for depth, record in enumerate(path):
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(record["attrs"].items())
            )
            print(
                f"{'  ' * depth}{record['kind']} [span {record['span']}] "
                f"ticks={_ticks(record)} sim={_sim(record):.3f}"
                + (f" {attrs}" if attrs else "")
            )
        return 0

    divergence = trace_diff(load_trace(args.trace_a), load_trace(args.trace_b))
    if divergence is None:
        print("traces identical (wall fields ignored)")
        return 0
    index, left, right = divergence
    print(f"traces diverge at record {index}:")
    print(f"  a: {left}")
    print(f"  b: {right}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
