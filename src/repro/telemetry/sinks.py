"""Trace sinks: where emitted records go.

Two registered sinks cover every use:

- ``"memory"`` — :class:`MemorySink`, a plain list; the default for
  tests, benchmarks, and in-process summaries.
- ``"jsonl"`` — :class:`JsonlSink`, one JSON object per line, appended
  and fsync'd per record with the same crash-safety idiom as
  :class:`~repro.experiments.ResultsStore`: a SIGKILL mid-write leaves
  at most one partial trailing line, which the next open quarantines
  with an atomic rewrite.

The JSONL sink is *resume-aware by sequence number*: every record
carries the tracer's monotone ``seq``, and a record whose ``seq`` is
already durable in the file is skipped instead of re-appended. A
resumed run therefore replays its deterministic prefix (scenario
rebuild, fast-forwarded rounds) without duplicating lines, and the
final file is byte-identical to an uninterrupted run's — the
concatenation contract the kill-resume smoke proves end to end.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.exceptions import TelemetryError
from repro.utils.registry import Registry

__all__ = ["TRACE_SINKS", "TraceSink", "MemorySink", "JsonlSink", "load_trace"]

#: Registry of trace sink factories, keyed by the ``telemetry`` knob's
#: ``sink`` name.
TRACE_SINKS = Registry("trace sink")


class TraceSink:
    """Base class: a destination for emitted trace records."""

    def emit(self, record: dict[str, Any]) -> None:
        """Persist one record. Records arrive in strictly increasing ``seq``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources. Idempotent."""


@TRACE_SINKS.register("memory")
class MemorySink(TraceSink):
    """Append every record to an in-process list (``.records``)."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def clear(self) -> None:
        """Drop all held records (benchmark reuse)."""
        self.records = []


@TRACE_SINKS.register("jsonl")
class JsonlSink(TraceSink):
    """Append-only JSONL trace file, fsync'd per record, resume-aware.

    On open, the existing file is scanned: decodable lines count as
    durable records, a partial trailing line (torn write from a kill)
    is quarantined by atomic rewrite. Emits whose ``seq`` falls below
    the durable count are skipped — under the determinism contract they
    are byte-for-byte the lines already on disk — and a ``seq`` beyond
    the durable count plus the skips is a corrupted resume, refused
    loudly.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._committed = self._repair()
        self._fh = open(self.path, "a", encoding="utf-8")

    def _repair(self) -> int:
        """Count durable records, quarantining a torn trailing line."""
        if not self.path.exists():
            return 0
        raw = self.path.read_bytes()
        if not raw:
            return 0
        lines = raw.split(b"\n")
        tail = lines.pop()  # b"" when the file ends in a newline
        good = []
        for line in lines:
            try:
                json.loads(line)
            except ValueError:
                tail = line  # torn mid-file line: cut here
                break
            good.append(line)
        if tail == b"" and len(good) == len(lines):
            return len(good)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            for line in good:
                fh.write(line + b"\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        return len(good)

    def emit(self, record: dict[str, Any]) -> None:
        seq = record["seq"]
        if seq < self._committed:
            return  # deterministic replay of an already-durable record
        if seq > self._committed:
            raise TelemetryError(
                f"trace record seq {seq} skips ahead of the {self._committed} "
                f"durable records in {self.path}; the trace file does not "
                "belong to this run — point the tracer at a fresh path"
            )
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._committed += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def load_trace(path: "str | Path") -> list[dict[str, Any]]:
    """Read a JSONL trace back as a list of records.

    Tolerates one torn trailing line (dropped), same as the sink's own
    repair; any earlier undecodable line raises
    :class:`~repro.exceptions.TelemetryError`.
    """
    records: list[dict[str, Any]] = []
    lines = Path(path).read_bytes().split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    for i, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except ValueError:
            if i == len(lines) - 1:
                break  # torn trailing line from a kill
            raise TelemetryError(
                f"{path}: line {i + 1} is not valid JSON mid-file; "
                "the trace is corrupt"
            ) from None
    return records
