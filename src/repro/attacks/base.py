"""Attack interfaces and result containers.

Every attack consumes only what the threat model grants the adversary
(§III-B/C): the released model parameters ``θ``, the confidence scores
``v``, and the adversary's own feature columns ``x_adv``. Ground truth
never enters an attack — it is used exclusively by the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.federated.partition import AdversaryView


@dataclass
class AttackResult:
    """Outcome of a feature-inference attack.

    Attributes
    ----------
    x_target_hat:
        Reconstructed target features, shape ``(n_samples, d_target)``.
        ``None`` for attacks that produce structural constraints instead of
        point estimates (PRA exposes its own result type).
    view:
        The adversary/target column split the attack ran under.
    info:
        Attack-specific diagnostics (losses, equation ranks, ...).
    """

    x_target_hat: np.ndarray | None
    view: AdversaryView
    info: dict[str, Any] = field(default_factory=dict)


class FeatureInferenceAttack:
    """Base class fixing the attack call signature of Eqn 2.

    ``x̂_target = A(x_adv, v, θ)`` — subclasses implement :meth:`run`.
    """

    def run(self, x_adv: np.ndarray, v: np.ndarray) -> AttackResult:
        """Execute the attack on accumulated predictions."""
        raise NotImplementedError
