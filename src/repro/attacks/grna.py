"""Generative Regression Network Attack (GRNA) — §V, Algorithm 2.

The adversary accumulates the prediction outputs of many samples, then
trains a *generator* network ``G(x_adv, r; θ_G) → x̂_target`` such that the
released VFL model's prediction on the generated sample
``f(x_adv ∪ x̂_target; θ)`` matches the observed confidence scores. Because
``f`` is differentiable (an NN, an LR, or a distilled surrogate of an RF),
the prediction loss back-propagates *through the frozen model* into the
generator (Eqn 9):

    min_{θ_G}  (1/n) Σ_t ℓ( f(x^t_adv, G(x^t_adv, r^t; θ_G); θ), v^t ) + Ω(f_G)

The regularizer Ω penalizes the generator when the variance of its outputs
is "too large", preventing meaningless samples (§V-A); no prior information
about the target data is used.

Ablation switches (Table III):

- ``use_adv_input=False`` → case 1 (generator sees only noise);
- ``use_noise=False``     → case 2 (no random input vector);
- ``variance_penalty=0``  → case 3 (no constraint on x̂_target);
- ``use_generator=False`` → case 4 (naive regression: optimize x̂_target
  directly as free variables, no generator network).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackResult, FeatureInferenceAttack
from repro.checkpoint import (
    CheckpointPlan,
    capture_state,
    content_fingerprint,
    raw_fragment,
    restore_state,
)
from repro.exceptions import AttackError, CheckpointError, ValidationError
from repro.federated.partition import AdversaryView
from repro.models.base import BaseClassifier, DifferentiableClassifier
from repro.models.distill import RandomForestDistiller
from repro.nn.data import batch_indices
from repro.nn.module import Parameter
from repro.nn.optim import make_optimizer
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, assemble_columns, concat
from repro.utils.random import check_random_state
from repro.utils.validation import check_in_range, check_matrix, check_positive_int

#: Variance of U(0, 1); outputs spread wider than the feature range itself
#: are considered "too large" by the default regularizer.
UNIFORM_VARIANCE = 1.0 / 12.0


class GenerativeRegressionNetwork(FeatureInferenceAttack):
    """GRNA: learn feature correlations from accumulated predictions.

    Parameters
    ----------
    model:
        A fitted :class:`DifferentiableClassifier` — the released VFL model
        (or the NN surrogate of a random forest).
    view:
        Adversary/target column split.
    hidden_sizes:
        Generator widths; paper default ``(600, 200, 100)`` with LayerNorm
        after each hidden layer (§VI-C).
    epochs, batch_size, lr, optimizer:
        Generator training hyper-parameters. Algorithm 2 specifies
        mini-batch SGD; Adam is the default here because it reaches the
        same optima in far fewer epochs at identical attack accuracy (the
        choice is benchmarked in the ablation suite).
    variance_penalty:
        Weight λ of the variance regularizer Ω; 0 disables it.
    variance_threshold:
        Per-feature variance above which the hinge penalty activates
        (default: the variance of U(0,1), i.e. outputs may spread as much
        as the normalized feature range itself but no further).
    use_adv_input / use_noise / use_generator:
        Ablation switches, see module docstring.
    output_activation:
        ``"sigmoid"`` (default) bounds generated values to the known (0, 1)
        feature range — legitimate because the threat model grants the
        adversary knowledge of feature value ranges (§III-B) and all
        features are min-max normalized (§VI-A). ``"linear"`` leaves the
        output unbounded (relying purely on the variance regularizer, the
        weakest reading of the paper); it is ablated in the benches.
    clip_to_unit:
        Clip reconstructions into [0, 1] — justified by the same range
        knowledge; only relevant for the linear output head.
    checkpoint:
        Optional :class:`~repro.checkpoint.CheckpointPlan`. When given,
        the epoch loop emits a snapshot (generator or direct-estimate
        parameters, optimizer moments, rng stream position, loss
        history) at the plan's cadence, and ``fit`` resumes from the
        latest matching snapshot instead of epoch 0. A resumed fit is
        bit-identical to an uninterrupted one — every post-restore draw
        comes from the restored rng position, including the fresh noise
        draw :meth:`reconstruct` makes after training.
    tracer:
        Optional :class:`~repro.telemetry.Tracer`. When attached, the
        epoch loop emits a ``grna.epoch`` event per epoch and each
        snapshot a ``checkpoint.snapshot`` event; the tracer's own
        counters ride the snapshot, so a resumed run's trace continues
        the interrupted one record for record.
    """

    def __init__(
        self,
        model: DifferentiableClassifier,
        view: AdversaryView,
        *,
        hidden_sizes: tuple[int, ...] = (600, 200, 100),
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 2e-3,
        optimizer: str = "adam",
        variance_penalty: float = 1.0,
        variance_threshold: float = UNIFORM_VARIANCE,
        use_adv_input: bool = True,
        use_noise: bool = True,
        use_generator: bool = True,
        output_activation: str = "sigmoid",
        clip_to_unit: bool = True,
        rng: np.random.Generator | int = 0,
        checkpoint: CheckpointPlan | None = None,
        tracer=None,
    ) -> None:
        if not isinstance(model, DifferentiableClassifier):
            raise AttackError(
                "GRNA needs a differentiable model; distill random forests "
                "first (see attack_random_forest)"
            )
        model._check_fitted()
        if view.n_features != model.n_features_:
            raise AttackError(
                f"view covers {view.n_features} features, model uses {model.n_features_}"
            )
        if not use_adv_input and not use_noise:
            raise ValidationError("generator needs at least one of x_adv / noise inputs")
        self.model = model
        self.view = view
        self.hidden_sizes = tuple(
            check_positive_int(h, name="hidden size") for h in hidden_sizes
        )
        self.epochs = check_positive_int(epochs, name="epochs")
        self.batch_size = check_positive_int(batch_size, name="batch_size")
        self.lr = check_in_range(lr, name="lr", low=0.0, inclusive=False)
        self.optimizer_name = optimizer
        self.variance_penalty = check_in_range(
            variance_penalty, name="variance_penalty", low=0.0
        )
        self.variance_threshold = check_in_range(
            variance_threshold, name="variance_threshold", low=0.0
        )
        self.use_adv_input = bool(use_adv_input)
        self.use_noise = bool(use_noise)
        self.use_generator = bool(use_generator)
        if output_activation not in ("sigmoid", "linear"):
            raise ValidationError(
                f"output_activation must be 'sigmoid' or 'linear', got {output_activation!r}"
            )
        self.output_activation = output_activation
        self.clip_to_unit = bool(clip_to_unit)
        self.checkpoint = checkpoint
        self.tracer = tracer
        self.rng = check_random_state(rng)
        self.generator_ = None
        self._direct_estimate: Parameter | None = None
        self.loss_history_: list[float] = []
        # Column permutation restoring original feature order after
        # concat([x_adv, x̂_target]) — Algorithm 2 line 9's "x_adv ∪ x̂".
        self._perm = view.permutation_to_original()
        # Inverse permutation, split into the original-order column
        # positions of the adversary block and the generated block: the
        # hot loop assembles x_full with one scatter and back-propagates
        # with one gather instead of permuting the full joint width.
        inv_perm = np.argsort(self._perm)
        self._adv_positions = inv_perm[: view.d_adv]
        self._target_positions = inv_perm[view.d_adv :]
        self._input_buffer: np.ndarray | None = None

    #: Flip to False (per instance or class-wide in tests) to train through
    #: the retained composed-graph loss (`_prediction_loss_reference`); the
    #: fused path is bit-identical.
    _fast_loss = True

    # ------------------------------------------------------------------
    # Training (Algorithm 2)
    # ------------------------------------------------------------------
    def fit(self, X_adv: np.ndarray, V: np.ndarray) -> "GenerativeRegressionNetwork":
        """Train the generator on accumulated (x_adv, v) pairs."""
        X_adv, V = self._validate_inputs(X_adv, V)
        frozen = self._freeze_model()
        try:
            if self.use_generator:
                self._fit_generator(X_adv, V)
            else:
                self._fit_direct(X_adv, V)
        finally:
            self._restore_model(frozen)
        return self

    def _validate_inputs(self, X_adv, V) -> tuple[np.ndarray, np.ndarray]:
        X_adv = check_matrix(np.atleast_2d(X_adv), name="X_adv")
        V = check_matrix(np.atleast_2d(V), name="V")
        if X_adv.shape[0] != V.shape[0]:
            raise AttackError(
                f"X_adv has {X_adv.shape[0]} rows but V has {V.shape[0]}"
            )
        if X_adv.shape[1] != self.view.d_adv:
            raise AttackError(
                f"X_adv has {X_adv.shape[1]} columns, expected d_adv={self.view.d_adv}"
            )
        if V.shape[1] != self.model.n_classes_:
            raise AttackError(
                f"V has {V.shape[1]} columns, model has {self.model.n_classes_} classes"
            )
        return X_adv, V

    def _freeze_model(self) -> list[tuple]:
        """Stop gradient accumulation into the (constant) VFL model."""
        frozen = []
        network = getattr(self.model, "network_", None)
        if network is not None:
            for param in network.parameters():
                frozen.append((param, param.requires_grad))
                param.requires_grad = False
        return frozen

    @staticmethod
    def _restore_model(frozen: list[tuple]) -> None:
        for param, state in frozen:
            param.requires_grad = state

    def _generator_input_width(self) -> int:
        width = 0
        if self.use_adv_input:
            width += self.view.d_adv
        if self.use_noise:
            width += self.view.d_target
        return width

    def _build_generator(self):
        """Generator MLP: hidden layers with LayerNorm, paper §VI-C.

        The output layer uses a small-variance normal init so the sigmoid
        head starts unsaturated at ~0.5 (the midpoint of the normalized
        feature range); a saturated head would receive vanishing gradients
        and freeze the attack at its initialization.
        """
        from repro.nn.layers import LayerNorm, Linear, ReLU, Sequential, Sigmoid

        sizes = [self._generator_input_width(), *self.hidden_sizes]
        layers = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            layers.append(Linear(fan_in, fan_out, init="xavier", rng=self.rng))
            layers.append(LayerNorm(fan_out))
            layers.append(ReLU())
        layers.append(
            Linear(sizes[-1], self.view.d_target, init="normal", rng=self.rng)
        )
        if self.output_activation == "sigmoid":
            layers.append(Sigmoid())
        return Sequential(*layers)

    def _generator_batch_input(self, x_adv_batch: np.ndarray) -> Tensor:
        """Generator input for one batch, reusing the training concat buffer.

        The noise draw stays a single ``rng.normal(size=...)`` call so the
        random stream (and therefore every generated value) is unchanged;
        only the destination of the copy moves from a fresh ``np.hstack``
        allocation into the persistent per-fit buffer.
        """
        rows = x_adv_batch.shape[0]
        buffer = self._input_buffer
        if buffer is None or buffer.shape[0] < rows:
            buffer = np.empty((rows, self._generator_input_width()))
        out = buffer[:rows]
        offset = 0
        if self.use_adv_input:
            out[:, : self.view.d_adv] = x_adv_batch
            offset = self.view.d_adv
        if self.use_noise:
            out[:, offset:] = self.rng.normal(size=(rows, self.view.d_target))
        return Tensor(out)

    def _prediction_loss(self, x_adv_batch: np.ndarray, x_hat: Tensor, v_batch: np.ndarray) -> Tensor:
        """ℓ(f(x_adv ∪ x̂_target), v) + Ω — Algorithm 2 lines 9-10.

        Hot-path formulation: one scatter assembles x_full (backward is a
        single gather of the generated columns), and the MSE and variance
        reductions are fused single-node kernels. Training is bit-identical
        to :meth:`_prediction_loss_reference`, the retained composed-graph
        seed implementation (regression-tested under the oracle harness).
        """
        if not self._fast_loss:
            return self._prediction_loss_reference(x_adv_batch, x_hat, v_batch)
        x_full = assemble_columns(
            x_adv_batch, x_hat, self._adv_positions, self._target_positions
        )
        v_hat = self.model.forward_tensor(x_full)
        loss = F.fused_mse_loss(v_hat, v_batch)
        if self.variance_penalty > 0.0 and x_hat.shape[0] > 1:
            loss = loss + F.hinged_variance_penalty(
                x_hat, self.variance_threshold, self.variance_penalty
            )
        return loss

    def _prediction_loss_reference(
        self, x_adv_batch: np.ndarray, x_hat: Tensor, v_batch: np.ndarray
    ) -> Tensor:
        """Seed reference: the op-by-op composed autodiff graph."""
        x_full = concat([Tensor(x_adv_batch), x_hat], axis=1)
        x_full = x_full[:, self._perm]
        v_hat = self.model.forward_tensor(x_full)
        loss = F.mse_loss(v_hat, Tensor(v_batch))
        if self.variance_penalty > 0.0 and x_hat.shape[0] > 1:
            excess = (x_hat.var(axis=0) - self.variance_threshold).relu()
            loss = loss + excess.mean() * self.variance_penalty
        return loss

    def _fit_fingerprint(self, X_adv: np.ndarray, V: np.ndarray) -> str:
        """Bind snapshots to the exact training problem being resumed."""
        # Traced and untraced runs may not share snapshots: the traced
        # fragments carry tracer counters the untraced resume would drop.
        return content_fingerprint(
            {
                "attack": "grna",
                "telemetry": self.tracer is not None,
                "model": {
                    "class": type(self.model).__name__,
                    "n_features": self.model.n_features_,
                    "n_classes": self.model.n_classes_,
                },
                "hidden_sizes": list(self.hidden_sizes),
                "epochs": self.epochs,
                "batch_size": self.batch_size,
                "lr": self.lr,
                "optimizer": self.optimizer_name,
                "variance_penalty": self.variance_penalty,
                "variance_threshold": self.variance_threshold,
                "use_adv_input": self.use_adv_input,
                "use_noise": self.use_noise,
                "use_generator": self.use_generator,
                "output_activation": self.output_activation,
                "X_adv": X_adv,
                "V": V,
            }
        )

    def _fit_fragments(self, optimizer) -> dict:
        """Everything the epoch loop needs to continue bit-identically."""
        fragments = {
            "rng": capture_state(self.rng),
            "optimizer": capture_state(optimizer),
            "progress": raw_fragment(meta={"loss_history": list(self.loss_history_)}),
        }
        if self.tracer is not None:
            fragments["telemetry"] = capture_state(self.tracer)
        if self.use_generator:
            fragments["generator"] = raw_fragment(
                arrays=self.generator_.state_dict()
            )
        else:
            fragments["estimate"] = raw_fragment(
                arrays={"estimate": self._direct_estimate.data.copy()}
            )
        return fragments

    def _resume_epoch(self, optimizer, X_adv: np.ndarray, V: np.ndarray) -> int:
        """Restore the latest matching snapshot; return the start epoch.

        Called after the fresh-run construction already consumed its rng
        init draws, so a miss (empty store) leaves the fresh trajectory
        untouched and a hit overwrites every piece of trajectory state —
        parameters, optimizer moments, rng position, loss history.
        """
        plan = self.checkpoint
        if plan is None:
            return 0
        plan.bind_fingerprint(self._fit_fingerprint(X_adv, V))
        snapshot = plan.latest()
        if snapshot is None:
            return 0
        if self.use_generator:
            self.generator_.load_state_dict(
                dict(snapshot.fragment("generator")["arrays"])
            )
        else:
            self._direct_estimate.data[...] = snapshot.fragment("estimate")[
                "arrays"
            ]["estimate"]
        restore_state(optimizer, snapshot.fragment("optimizer"))
        snapshot.restore("rng", self.rng)
        self.loss_history_ = [
            float(x) for x in snapshot.fragment("progress")["meta"]["loss_history"]
        ]
        if "telemetry" in snapshot.fragments:
            if self.tracer is None:
                raise CheckpointError(
                    "snapshot holds tracer state but this attack has no "
                    "tracer attached; rerun with the same telemetry knob "
                    "the snapshot was taken under"
                )
            restore_state(self.tracer, snapshot.fragment("telemetry"))
        return int(snapshot.meta["epoch"]) + 1

    def _fit_generator(self, X_adv: np.ndarray, V: np.ndarray) -> None:
        self.generator_ = self._build_generator()
        optimizer = make_optimizer(
            self.optimizer_name, self.generator_.parameters(), self.lr
        )
        self.loss_history_ = []
        n = X_adv.shape[0]
        self._input_buffer = np.empty(
            (min(self.batch_size, n), self._generator_input_width())
        )
        start_epoch = self._resume_epoch(optimizer, X_adv, V)
        for epoch in range(start_epoch, self.epochs):
            epoch_loss, n_batches = 0.0, 0
            for idx in batch_indices(n, self.batch_size, rng=self.rng):
                optimizer.zero_grad()
                x_adv_batch = X_adv[idx]
                x_hat = self.generator_(self._generator_batch_input(x_adv_batch))
                loss = self._prediction_loss(x_adv_batch, x_hat, V[idx])
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            self.loss_history_.append(epoch_loss / max(n_batches, 1))
            self._trace_epoch(epoch)
            if self.checkpoint is not None:
                self.checkpoint.maybe_emit(
                    epoch,
                    self._traced_fragments(optimizer, epoch),
                    meta={"epoch": epoch},
                )

    def _fit_direct(self, X_adv: np.ndarray, V: np.ndarray) -> None:
        """Table III case 4: optimize x̂_target directly, no generator."""
        n = X_adv.shape[0]
        self._direct_estimate = Parameter(
            self.rng.normal(0.0, 1.0, size=(n, self.view.d_target))
        )
        optimizer = make_optimizer(
            self.optimizer_name, [self._direct_estimate], self.lr
        )
        self.loss_history_ = []
        start_epoch = self._resume_epoch(optimizer, X_adv, V)
        for epoch in range(start_epoch, self.epochs):
            epoch_loss, n_batches = 0.0, 0
            for idx in batch_indices(n, self.batch_size, rng=self.rng):
                optimizer.zero_grad()
                x_hat = self._direct_estimate[idx]
                loss = self._prediction_loss(X_adv[idx], x_hat, V[idx])
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            self.loss_history_.append(epoch_loss / max(n_batches, 1))
            self._trace_epoch(epoch)
            if self.checkpoint is not None:
                self.checkpoint.maybe_emit(
                    epoch,
                    self._traced_fragments(optimizer, epoch),
                    meta={"epoch": epoch},
                )

    def _trace_epoch(self, epoch: int) -> None:
        if self.tracer is not None:
            self.tracer.event(
                "grna.epoch", epoch=epoch, loss=self.loss_history_[-1]
            )

    def _traced_fragments(self, optimizer, epoch: int):
        """Snapshot builder that logs the snapshot it rides in.

        The ``checkpoint.snapshot`` event fires inside the lazily-called
        closure *before* the fragments (and the tracer's own counters)
        are captured, so the captured seq counts it and a resumed run's
        trace lines up record for record with the interrupted one.
        """

        def fragments() -> dict:
            if self.tracer is not None:
                self.tracer.event("checkpoint.snapshot", scope="grna", epoch=epoch)
            return self._fit_fragments(optimizer)

        return fragments

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def reconstruct(self, X_adv: np.ndarray) -> np.ndarray:
        """Generate x̂_target for each row of ``X_adv`` (fresh noise draw)."""
        if self.use_generator:
            if self.generator_ is None:
                raise AttackError("generator not trained; call fit first")
            X_adv = check_matrix(np.atleast_2d(X_adv), name="X_adv")
            if X_adv.shape[1] != self.view.d_adv:
                raise AttackError(
                    f"X_adv has {X_adv.shape[1]} columns, expected {self.view.d_adv}"
                )
            self.generator_.eval()
            x_hat = self.generator_(self._generator_batch_input(X_adv)).numpy()
            self.generator_.train()
        else:
            if self._direct_estimate is None:
                raise AttackError("direct estimate not optimized; call fit first")
            x_hat = self._direct_estimate.numpy()
        if self.clip_to_unit:
            x_hat = np.clip(x_hat, 0.0, 1.0)
        return x_hat

    def run(self, x_adv: np.ndarray, v: np.ndarray) -> AttackResult:
        """Fit on the accumulated predictions, then reconstruct them.

        Per §V-A, "the samples to be attacked are exactly the samples for
        training the generator model".
        """
        x_adv, v = self._validate_inputs(
            np.atleast_2d(x_adv), np.atleast_2d(v)
        )
        self.fit(x_adv, v)
        x_hat = self.reconstruct(x_adv)
        return AttackResult(
            x_target_hat=x_hat,
            view=self.view,
            info={
                "final_loss": self.loss_history_[-1] if self.loss_history_ else None,
                "epochs": self.epochs,
                "use_generator": self.use_generator,
                # GRNA's serving-boundary cost is its accumulated pool:
                # one prediction query per generator training sample (§V-A);
                # generator epochs re-use the pool and cost nothing more.
                "n_predictions_used": int(v.shape[0]),
            },
        )


def attack_random_forest(
    forest: BaseClassifier,
    view: AdversaryView,
    X_adv: np.ndarray,
    V: np.ndarray,
    *,
    distiller: RandomForestDistiller | None = None,
    grna_kwargs: dict | None = None,
    rng: np.random.Generator | int = 0,
) -> tuple[AttackResult, RandomForestDistiller]:
    """GRNA against a (non-differentiable) random forest, §V-B.

    Distills the forest into a neural surrogate, then runs GRNA against the
    surrogate. Returns the attack result and the surrogate (for fidelity
    inspection).

    Besides the paper's uniform dummy samples, the dummy set includes
    samples whose adversary columns are the *real* accumulated ``x_adv``
    values (target columns drawn uniformly): the adversary owns both the
    plaintext forest and its own feature values, so conditioning the
    surrogate's training data on them is within the threat model and makes
    the surrogate accurate exactly where the generator queries it.
    """
    rng = check_random_state(rng)
    if distiller is None:
        distiller = RandomForestDistiller(rng=rng)
    if distiller.network_ is None:
        X_adv_arr = np.atleast_2d(np.asarray(X_adv, dtype=np.float64))
        repeats = max(1, distiller.n_dummy // max(X_adv_arr.shape[0], 1))
        tiled_adv = np.repeat(X_adv_arr, repeats, axis=0)
        conditioned = view.assemble(
            tiled_adv, rng.random((tiled_adv.shape[0], view.d_target))
        )
        distiller.distill(forest, forest.n_features_, extra_inputs=conditioned)
    grna_kwargs = dict(grna_kwargs or {})
    grna_kwargs.setdefault("rng", rng)
    grna = GenerativeRegressionNetwork(distiller, view, **grna_kwargs)
    return grna.run(X_adv, V), distiller
