"""Path Restriction Attack (PRA) on decision-tree predictions (§IV-B).

Algorithm 1 of the paper, implemented on the full-binary-tree layout
exported by :meth:`repro.models.tree.DecisionTreeClassifier.tree_structure`:

1. Propagate an indicator vector β from the root: at nodes testing an
   *adversary* feature, only the branch consistent with the adversary's own
   value stays live; at target-feature nodes both branches stay live.
2. Intersect with the indicator α of leaves labeled with the observed
   predicted class.
3. The surviving leaves are the candidate prediction paths; the adversary
   picks one uniformly at random and reads the branch constraints on the
   target's features off that path.

Beyond the paper's CBR evaluation, :meth:`PathRestrictionAttack.infer_intervals`
converts a candidate path into per-feature value intervals — the concrete
leakage ("deposit > 5K" in the paper's Example 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import AttackError
from repro.federated.partition import AdversaryView
from repro.metrics.branching import path_branch_decisions
from repro.models.tree import TreeStructure
from repro.utils.random import check_random_state
from repro.utils.validation import check_vector


@dataclass
class PathRestrictionResult:
    """Outcome of PRA for a single sample.

    Attributes
    ----------
    candidate_leaves:
        Full-tree slot indices of leaves compatible with the adversary's
        features and the predicted class.
    selected_path:
        The uniformly-selected candidate path (root → leaf slot indices).
    n_paths_total / n_paths_restricted:
        Leaf counts before and after restriction (the n_p → n_r reduction
        the paper quotes in Example 2).
    indicator:
        Final β vector of Algorithm 1 (after the α intersection).
    queries_used:
        Serving-boundary cost of this restriction: PRA is a
        single-prediction attack, so each per-sample run consumes
        exactly one query of the adversary's budget.
    """

    candidate_leaves: np.ndarray
    selected_path: list[int]
    n_paths_total: int
    n_paths_restricted: int
    indicator: np.ndarray = field(repr=False)
    queries_used: int = 1


class PathRestrictionAttack:
    """Restrict a decision tree's prediction paths from one prediction.

    Parameters
    ----------
    structure:
        Full-binary-tree export of the released DT model.
    view:
        Adversary/target column split over the joint feature space.
    """

    def __init__(self, structure: TreeStructure, view: AdversaryView) -> None:
        self.structure = structure
        self.view = view
        self._adv_features = set(int(i) for i in view.adversary_indices)
        # Flat-array precomputation for the vectorized Algorithm 1: per
        # tree level, the existing internal slots, whether each tests an
        # adversary feature, the position of that feature inside x_adv,
        # and the split threshold. `restrict` then propagates β one whole
        # level per numpy op instead of one Python BFS step per node.
        adv_lookup = np.zeros(view.n_features, dtype=bool)
        adv_lookup[view.adversary_indices] = True
        pos_lookup = np.zeros(view.n_features, dtype=np.int64)
        pos_lookup[view.adversary_indices] = np.arange(view.d_adv)
        self._levels: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        for level in range(structure.depth):
            idx = np.arange(2**level - 1, 2 ** (level + 1) - 1)
            idx = idx[structure.exists[idx] & ~structure.is_leaf[idx]]
            if idx.size == 0:
                continue
            feat = structure.feature[idx]
            is_adv = adv_lookup[feat]
            # Position is only read where is_adv holds; 0 elsewhere.
            adv_pos = np.where(is_adv, pos_lookup[feat], 0)
            self._levels.append((idx, is_adv, adv_pos, structure.threshold[idx]))
        leaf_mask = structure.exists & structure.is_leaf
        self._alpha_cache: dict[int, np.ndarray] = {}
        self._leaf_mask = leaf_mask
        self._n_paths = int(np.flatnonzero(leaf_mask).size)
        self._leaf_paths: dict[int, list[int]] = {}
        self._interval_cache: dict[tuple, dict[int, tuple[float, float]]] = {}

    def restrict(self, x_adv: np.ndarray, predicted_class: int) -> np.ndarray:
        """Algorithm 1: return β over all tree slots (1 = live leaf).

        Level-order vectorized over the flat :class:`TreeStructure`
        arrays; output identical to the retained per-node reference
        :meth:`_restrict_slow`.

        Parameters
        ----------
        x_adv:
            The adversary's feature values, indexed by ``view.adversary_indices``
            order (i.e. as returned by ``AdversaryView.split``).
        predicted_class:
            The class label revealed by the prediction output.
        """
        x_adv = check_vector(x_adv, name="x_adv")
        if x_adv.shape[0] != self.view.d_adv:
            raise AttackError(
                f"x_adv has {x_adv.shape[0]} entries, expected d_adv={self.view.d_adv}"
            )
        beta = np.zeros(self.structure.n_nodes, dtype=np.int8)  # line 1
        beta[0] = 1  # line 3: the root is always evaluated
        for idx, is_adv, adv_pos, thresholds in self._levels:  # lines 4-14
            live = beta[idx]
            go_left = x_adv[adv_pos] <= thresholds  # lines 6-10
            left = 2 * idx + 1
            beta[left] = live * (~is_adv | go_left)  # line 12 when ~is_adv
            beta[left + 1] = live * (~is_adv | ~go_left)
        # line 15: α marks leaves carrying the predicted class.
        alpha = self._alpha(predicted_class)
        return (alpha * beta).astype(np.int8)  # lines 16-17

    def restrict_batch(
        self, X_adv: np.ndarray, predicted_classes: np.ndarray
    ) -> np.ndarray:
        """Algorithm 1 for a whole sample pool in one pass, ``(n, n_nodes)``.

        Row ``i`` equals ``restrict(X_adv[i], predicted_classes[i])``; the
        β propagation runs once per tree level for all samples, so an
        n-sample restriction costs ``O(depth)`` numpy ops instead of ``n``
        Python tree walks. This is the serving-pool hot path used by the
        scenario adapter.
        """
        X_adv = np.atleast_2d(np.asarray(X_adv, dtype=np.float64))
        if X_adv.shape[1] != self.view.d_adv:
            raise AttackError(
                f"X_adv has {X_adv.shape[1]} columns, expected d_adv={self.view.d_adv}"
            )
        classes = np.asarray(predicted_classes, dtype=np.int64).ravel()
        if classes.shape[0] != X_adv.shape[0]:
            raise AttackError(
                f"{X_adv.shape[0]} samples but {classes.shape[0]} predicted classes"
            )
        beta = np.zeros((X_adv.shape[0], self.structure.n_nodes), dtype=np.int8)
        beta[:, 0] = 1
        for idx, is_adv, adv_pos, thresholds in self._levels:
            live = beta[:, idx]
            go_left = X_adv[:, adv_pos] <= thresholds
            beta[:, 2 * idx + 1] = live * (~is_adv | go_left)
            beta[:, 2 * idx + 2] = live * (~is_adv | ~go_left)
        alpha = self._leaf_mask & (self.structure.leaf_label == classes[:, None])
        return (alpha * beta).astype(np.int8)

    def _alpha(self, predicted_class: int) -> np.ndarray:
        alpha = self._alpha_cache.get(predicted_class)
        if alpha is None:
            alpha = np.zeros(self.structure.n_nodes, dtype=np.int8)
            alpha[self._leaf_mask & (self.structure.leaf_label == predicted_class)] = 1
            self._alpha_cache[predicted_class] = alpha
        return alpha

    def _restrict_slow(self, x_adv: np.ndarray, predicted_class: int) -> np.ndarray:
        """Seed reference: per-node Python BFS; kept as the restrict oracle."""
        x_adv = check_vector(x_adv, name="x_adv")
        if x_adv.shape[0] != self.view.d_adv:
            raise AttackError(
                f"x_adv has {x_adv.shape[0]} entries, expected d_adv={self.view.d_adv}"
            )
        structure = self.structure
        adv_value = {
            int(feat): float(val)
            for feat, val in zip(self.view.adversary_indices, x_adv)
        }

        beta = np.zeros(structure.n_nodes, dtype=np.int8)  # line 1
        beta[0] = 1  # line 3: the root is always evaluated
        queue = [0]  # line 2
        while queue:  # lines 4-14
            i = queue.pop(0)
            if structure.is_leaf[i] or not structure.exists[i]:
                continue
            feature = int(structure.feature[i])
            left, right = 2 * i + 1, 2 * i + 2
            if feature in self._adv_features:  # lines 6-10
                if adv_value[feature] <= structure.threshold[i]:
                    beta[left], beta[right] = beta[i], 0
                else:
                    beta[left], beta[right] = 0, beta[i]
            else:  # line 12: target feature, both branches possible
                beta[left] = beta[right] = beta[i]
            queue.append(left)  # lines 13-14
            queue.append(right)

        # line 15: α marks leaves carrying the predicted class.
        alpha = np.zeros(structure.n_nodes, dtype=np.int8)
        leaf_mask = structure.exists & structure.is_leaf
        alpha[leaf_mask & (structure.leaf_label == predicted_class)] = 1
        return (alpha * beta).astype(np.int8)  # lines 16-17

    def run(
        self,
        x_adv: np.ndarray,
        predicted_class: int,
        rng: np.random.Generator | int = 0,
    ) -> PathRestrictionResult:
        """Restrict paths and select one candidate uniformly at random."""
        indicator = self.restrict(x_adv, predicted_class)
        candidates = np.flatnonzero(indicator)
        if candidates.size == 0:
            raise AttackError(
                "no candidate paths survive restriction; the observed class and "
                "the adversary's features are inconsistent with this tree"
            )
        rng = check_random_state(rng)
        leaf = int(rng.choice(candidates))
        return PathRestrictionResult(
            candidate_leaves=candidates,
            selected_path=self.cached_path(leaf),
            n_paths_total=self._n_paths,
            n_paths_restricted=int(candidates.size),
            indicator=indicator,
        )

    def cached_path(self, leaf: int) -> list[int]:
        """Root-to-leaf slot path, memoized per leaf (fresh list per call)."""
        path = self._leaf_paths.get(leaf)
        if path is None:
            path = self.structure.path_to(leaf)
            self._leaf_paths[leaf] = path
        return list(path)

    def infer_intervals(
        self,
        path: list[int],
        *,
        low: float = 0.0,
        high: float = 1.0,
    ) -> dict[int, tuple[float, float]]:
        """Target-feature value intervals implied by a candidate path.

        Every target-feature decision on ``path`` tightens that feature's
        interval: going left imposes ``value <= threshold``, going right
        ``value > threshold``. Features the path never tests keep the full
        ``(low, high)`` range and are omitted.

        Results are memoized per ``(path, low, high)`` — the restriction
        loop revisits the same few candidate leaves for every sample, so
        the hot path pays one walk per distinct leaf. Each call returns a
        fresh dict; the intervals themselves are unchanged.
        """
        key = (tuple(path), low, high)
        cached = self._interval_cache.get(key)
        if cached is None:
            cached = {}
            for feature, threshold, went_left in path_branch_decisions(self.structure, path):
                if feature in self._adv_features:
                    continue
                lo, hi = cached.get(feature, (low, high))
                if went_left:
                    hi = min(hi, threshold)
                else:
                    lo = max(lo, threshold)
                cached[feature] = (lo, hi)
            self._interval_cache[key] = cached
        return dict(cached)
