"""Path Restriction Attack (PRA) on decision-tree predictions (§IV-B).

Algorithm 1 of the paper, implemented on the full-binary-tree layout
exported by :meth:`repro.models.tree.DecisionTreeClassifier.tree_structure`:

1. Propagate an indicator vector β from the root: at nodes testing an
   *adversary* feature, only the branch consistent with the adversary's own
   value stays live; at target-feature nodes both branches stay live.
2. Intersect with the indicator α of leaves labeled with the observed
   predicted class.
3. The surviving leaves are the candidate prediction paths; the adversary
   picks one uniformly at random and reads the branch constraints on the
   target's features off that path.

Beyond the paper's CBR evaluation, :meth:`PathRestrictionAttack.infer_intervals`
converts a candidate path into per-feature value intervals — the concrete
leakage ("deposit > 5K" in the paper's Example 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import AttackError
from repro.federated.partition import AdversaryView
from repro.metrics.branching import path_branch_decisions
from repro.models.tree import TreeStructure
from repro.utils.random import check_random_state
from repro.utils.validation import check_vector


@dataclass
class PathRestrictionResult:
    """Outcome of PRA for a single sample.

    Attributes
    ----------
    candidate_leaves:
        Full-tree slot indices of leaves compatible with the adversary's
        features and the predicted class.
    selected_path:
        The uniformly-selected candidate path (root → leaf slot indices).
    n_paths_total / n_paths_restricted:
        Leaf counts before and after restriction (the n_p → n_r reduction
        the paper quotes in Example 2).
    indicator:
        Final β vector of Algorithm 1 (after the α intersection).
    queries_used:
        Serving-boundary cost of this restriction: PRA is a
        single-prediction attack, so each per-sample run consumes
        exactly one query of the adversary's budget.
    """

    candidate_leaves: np.ndarray
    selected_path: list[int]
    n_paths_total: int
    n_paths_restricted: int
    indicator: np.ndarray = field(repr=False)
    queries_used: int = 1


class PathRestrictionAttack:
    """Restrict a decision tree's prediction paths from one prediction.

    Parameters
    ----------
    structure:
        Full-binary-tree export of the released DT model.
    view:
        Adversary/target column split over the joint feature space.
    """

    def __init__(self, structure: TreeStructure, view: AdversaryView) -> None:
        self.structure = structure
        self.view = view
        self._adv_features = set(int(i) for i in view.adversary_indices)

    def restrict(self, x_adv: np.ndarray, predicted_class: int) -> np.ndarray:
        """Algorithm 1: return β over all tree slots (1 = live leaf).

        Parameters
        ----------
        x_adv:
            The adversary's feature values, indexed by ``view.adversary_indices``
            order (i.e. as returned by ``AdversaryView.split``).
        predicted_class:
            The class label revealed by the prediction output.
        """
        x_adv = check_vector(x_adv, name="x_adv")
        if x_adv.shape[0] != self.view.d_adv:
            raise AttackError(
                f"x_adv has {x_adv.shape[0]} entries, expected d_adv={self.view.d_adv}"
            )
        structure = self.structure
        adv_value = {
            int(feat): float(val)
            for feat, val in zip(self.view.adversary_indices, x_adv)
        }

        beta = np.zeros(structure.n_nodes, dtype=np.int8)  # line 1
        beta[0] = 1  # line 3: the root is always evaluated
        queue = [0]  # line 2
        while queue:  # lines 4-14
            i = queue.pop(0)
            if structure.is_leaf[i] or not structure.exists[i]:
                continue
            feature = int(structure.feature[i])
            left, right = 2 * i + 1, 2 * i + 2
            if feature in self._adv_features:  # lines 6-10
                if adv_value[feature] <= structure.threshold[i]:
                    beta[left], beta[right] = beta[i], 0
                else:
                    beta[left], beta[right] = 0, beta[i]
            else:  # line 12: target feature, both branches possible
                beta[left] = beta[right] = beta[i]
            queue.append(left)  # lines 13-14
            queue.append(right)

        # line 15: α marks leaves carrying the predicted class.
        alpha = np.zeros(structure.n_nodes, dtype=np.int8)
        leaf_mask = structure.exists & structure.is_leaf
        alpha[leaf_mask & (structure.leaf_label == predicted_class)] = 1
        return (alpha * beta).astype(np.int8)  # lines 16-17

    def run(
        self,
        x_adv: np.ndarray,
        predicted_class: int,
        rng: np.random.Generator | int | None = None,
    ) -> PathRestrictionResult:
        """Restrict paths and select one candidate uniformly at random."""
        indicator = self.restrict(x_adv, predicted_class)
        candidates = np.flatnonzero(indicator)
        if candidates.size == 0:
            raise AttackError(
                "no candidate paths survive restriction; the observed class and "
                "the adversary's features are inconsistent with this tree"
            )
        rng = check_random_state(rng)
        leaf = int(rng.choice(candidates))
        return PathRestrictionResult(
            candidate_leaves=candidates,
            selected_path=self.structure.path_to(leaf),
            n_paths_total=self.structure.n_prediction_paths(),
            n_paths_restricted=int(candidates.size),
            indicator=indicator,
        )

    def infer_intervals(
        self,
        path: list[int],
        *,
        low: float = 0.0,
        high: float = 1.0,
    ) -> dict[int, tuple[float, float]]:
        """Target-feature value intervals implied by a candidate path.

        Every target-feature decision on ``path`` tightens that feature's
        interval: going left imposes ``value <= threshold``, going right
        ``value > threshold``. Features the path never tests keep the full
        ``(low, high)`` range and are omitted.
        """
        intervals: dict[int, tuple[float, float]] = {}
        for feature, threshold, went_left in path_branch_decisions(self.structure, path):
            if feature in self._adv_features:
                continue
            lo, hi = intervals.get(feature, (low, high))
            if went_left:
                hi = min(hi, threshold)
            else:
                lo = max(lo, threshold)
            intervals[feature] = (lo, hi)
        return intervals
