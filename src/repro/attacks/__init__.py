"""Feature-inference attacks on VFL model predictions (the paper's core)."""

from repro.attacks.base import AttackResult, FeatureInferenceAttack
from repro.attacks.baselines import RandomGuessAttack, random_path
from repro.attacks.esa import EqualitySolvingAttack
from repro.attacks.pra import PathRestrictionAttack, PathRestrictionResult
from repro.attacks.grna import (
    GenerativeRegressionNetwork,
    attack_random_forest,
)

__all__ = [
    "AttackResult",
    "FeatureInferenceAttack",
    "RandomGuessAttack",
    "random_path",
    "EqualitySolvingAttack",
    "PathRestrictionAttack",
    "PathRestrictionResult",
    "GenerativeRegressionNetwork",
    "attack_random_forest",
]
