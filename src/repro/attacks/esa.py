"""Equality Solving Attack (ESA) on logistic-regression predictions (§IV-A).

Single code path for binary and multi-class LR, exploiting the log-ratio
identity ``ln v_k − ln v_{k+1} = z_k − z_{k+1}`` (Eqn 7): with per-class
linear scores ``z_k = x·θ^(k) + b_k``, subtracting adjacent equations
cancels the softmax normalizer and yields ``c − 1`` *linear* equations in
the unknown ``x_target`` (Eqn 8):

    x_target · (θ^(k)_target − θ^(k+1)_target)
        = ln v_k − ln v_{k+1} − x_adv · (θ^(k)_adv − θ^(k+1)_adv) − (b_k − b_{k+1})

The binary sigmoid model is the c = 2 special case (class-0 score 0,
class-1 score x·w + b), so ``ln v_0 − ln v_1 = −x·w − b`` reproduces
Eqn 3's logit equation.

The system ``Θ_target x_target = a`` is solved with the Moore–Penrose
pseudo-inverse: exact whenever ``d_target ≤ c − 1`` (and Θ_target has full
row rank); otherwise the minimum-norm least-squares estimate, whose MSE the
paper bounds in Eqns 11–15.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackResult, FeatureInferenceAttack
from repro.exceptions import AttackError
from repro.federated.partition import AdversaryView
from repro.models.logistic import LogisticRegression
from repro.utils.numeric import EPS, stable_log
from repro.utils.validation import check_matrix


class EqualitySolvingAttack(FeatureInferenceAttack):
    """Reconstruct target features from one LR prediction per sample.

    Parameters
    ----------
    model:
        The released (plaintext) logistic-regression model θ.
    view:
        Adversary/target column split.
    clip_to_unit:
        Clip estimates into [0, 1]. Disabled by default: the paper's
        reported ESA numbers (and its Eqn 11–15 MSE bound) are for the raw
        pseudo-inverse solution.
    """

    def __init__(
        self,
        model: LogisticRegression,
        view: AdversaryView,
        *,
        clip_to_unit: bool = False,
    ) -> None:
        model._check_fitted()
        if view.n_features != model.n_features_:
            raise AttackError(
                f"view covers {view.n_features} features, model uses {model.n_features_}"
            )
        self.model = model
        self.view = view
        self.clip_to_unit = bool(clip_to_unit)
        self._prepare_equations()

    def _prepare_equations(self) -> None:
        """Precompute the fixed parts of the linear system.

        ``Θ_target`` (the (c−1) × d_target coefficient matrix) and the
        per-class weight/intercept differences are prediction-independent,
        so the pseudo-inverse is computed once and reused for every sample.
        """
        W = self.model.class_weight_matrix()  # (d, c)
        b = self.model.class_intercepts()  # (c,)
        # Adjacent-class differences, Eqn 8.
        W_diff = W[:, :-1] - W[:, 1:]  # (d, c-1)
        self._theta_adv_diff = W_diff[self.view.adversary_indices]  # (d_adv, c-1)
        self._theta_target = W_diff[self.view.target_indices].T  # (c-1, d_target)
        self._intercept_diff = b[:-1] - b[1:]  # (c-1,)
        self._pinv = np.linalg.pinv(self._theta_target)  # (d_target, c-1)
        self._rank = int(np.linalg.matrix_rank(self._theta_target))

    @property
    def is_exact(self) -> bool:
        """Whether the paper's exactness condition holds.

        True when the target unknowns are fully determined:
        ``d_target ≤ c − 1`` *and* Θ_target has full column rank.
        """
        return self._rank >= self.view.d_target

    def _solve(self, a: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Per-sample weighted minimum-norm solve of ``Θ_target x = a``.

        Each sample's system is scaled row-wise by its reliability weights
        and solved with a batched pseudo-inverse. Samples whose weights are
        all zero (every score truncated to 0) fall back to the zero
        estimate — the minimum-norm point of an unconstrained system.
        """
        # Normalize per sample so the pinv cutoff is scale-free.
        scale = weights.max(axis=1, keepdims=True)
        safe_scale = np.where(scale > 0, scale, 1.0)
        w = weights / safe_scale  # (n, c-1)
        systems = w[:, :, None] * self._theta_target[None, :, :]  # (n, c-1, d_t)
        rhs = (w * a)[:, :, None]  # (n, c-1, 1)
        x_hat = (np.linalg.pinv(systems) @ rhs)[:, :, 0]
        x_hat[scale[:, 0] == 0.0] = 0.0
        return x_hat

    def run(self, x_adv: np.ndarray, v: np.ndarray) -> AttackResult:
        """Solve the linear system for each (x_adv row, confidence row) pair."""
        x_adv = check_matrix(np.atleast_2d(x_adv), name="x_adv")
        v = check_matrix(np.atleast_2d(v), name="v")
        if x_adv.shape[0] != v.shape[0]:
            raise AttackError(
                f"x_adv has {x_adv.shape[0]} rows but v has {v.shape[0]}"
            )
        if x_adv.shape[1] != self.view.d_adv:
            raise AttackError(
                f"x_adv has {x_adv.shape[1]} columns, expected d_adv={self.view.d_adv}"
            )
        if v.shape[1] != self.model.n_classes_:
            raise AttackError(
                f"v has {v.shape[1]} columns, model has {self.model.n_classes_} classes"
            )

        # Right-hand side a (one row per sample), Eqn 8.
        logv = stable_log(np.clip(v, EPS, None))
        a = (
            (logv[:, :-1] - logv[:, 1:])  # ln v_k − ln v_{k+1}
            - x_adv @ self._theta_adv_diff  # known-feature contribution
            - self._intercept_diff  # intercept contribution
        )
        # Equation reliability weights. A truncated/noised score v_k carries
        # absolute error up to the rounding granularity, so the error of
        # ln v_k scales like 1/v_k: weighting each Eqn-8 row by the smaller
        # of its two scores (zero drops the row entirely — the log-ratio of
        # a zeroed score is meaningless) makes the least-squares solve
        # robust to the §VII rounding defense. For consistent systems
        # (no defense) positive weights leave the minimum-norm solution
        # unchanged, so this is a strict generalization of the plain solve.
        weights = np.minimum(v[:, :-1], v[:, 1:])
        x_hat = self._solve(a, weights)
        if self.clip_to_unit:
            x_hat = np.clip(x_hat, 0.0, 1.0)
        residual = (a - x_hat @ self._theta_target.T) * (weights > 0)
        return AttackResult(
            x_target_hat=x_hat,
            view=self.view,
            info={
                "n_equations": self._theta_target.shape[0],
                "rank": self._rank,
                "is_exact": self.is_exact,
                "mean_residual_norm": float(np.mean(np.linalg.norm(residual, axis=1))),
                # One prediction query per reconstructed sample — ESA's
                # whole cost at the serving boundary (§IV-A).
                "n_predictions_used": int(v.shape[0]),
            },
        )
