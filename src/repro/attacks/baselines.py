"""Random-guess baselines (§VI-A "Baselines").

Two value-reconstruction baselines: draw feature guesses from ``U(0, 1)``
or from ``N(0.5, 0.25²)`` — the Gaussian is parameterized so "at least 95%
samples are within (0, 1)". For tree attacks the baseline picks a
uniformly random root-to-leaf path.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackResult, FeatureInferenceAttack
from repro.exceptions import ValidationError
from repro.federated.partition import AdversaryView
from repro.models.tree import TreeStructure
from repro.utils.random import check_random_state
from repro.utils.validation import check_matrix


class RandomGuessAttack(FeatureInferenceAttack):
    """Guess every unknown feature value from a fixed distribution.

    Parameters
    ----------
    view:
        The adversary/target split (defines how many columns to guess).
    distribution:
        ``"uniform"`` for U(0,1) or ``"gaussian"`` for N(0.5, 0.25²).
    """

    def __init__(
        self,
        view: AdversaryView,
        *,
        distribution: str = "uniform",
        rng: np.random.Generator | int = 0,
    ) -> None:
        if distribution not in ("uniform", "gaussian"):
            raise ValidationError(
                f"distribution must be 'uniform' or 'gaussian', got {distribution!r}"
            )
        self.view = view
        self.distribution = distribution
        self.rng = check_random_state(rng)

    def run(self, x_adv: np.ndarray, v: np.ndarray | None = None) -> AttackResult:
        """Guess target features for each row of ``x_adv``; ``v`` is unused."""
        x_adv = check_matrix(np.atleast_2d(x_adv), name="x_adv")
        n = x_adv.shape[0]
        shape = (n, self.view.d_target)
        if self.distribution == "uniform":
            guess = self.rng.random(shape)
        else:
            guess = self.rng.normal(0.5, 0.25, size=shape)
        return AttackResult(
            x_target_hat=guess,
            view=self.view,
            info={
                "distribution": self.distribution,
                # Guessing ignores v entirely: the one attack with zero
                # cost at the serving boundary.
                "n_predictions_used": 0,
            },
        )


def random_path(
    structure: TreeStructure, rng: np.random.Generator | int = 0
) -> list[int]:
    """Pick a uniformly random root-to-leaf path (PRA's baseline)."""
    rng = check_random_state(rng)
    leaves = structure.leaf_indices()
    if leaves.size == 0:
        raise ValidationError("tree has no leaves")
    leaf = int(rng.choice(leaves))
    return structure.path_to(leaf)
