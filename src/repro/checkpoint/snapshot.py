"""Snapshot files: atomic, versioned, fingerprinted, self-verifying.

One snapshot is one ``.npz`` archive. A reserved ``__manifest__`` entry
(UTF-8 JSON as a uint8 array — the :mod:`repro.models.serialization`
idiom) records the format version, the monotone step the snapshot was
taken at, a caller-supplied *content fingerprint* binding the snapshot
to its run configuration, free-form loop metadata, and one entry per
fragment mapping array names to flat archive slots with SHA-256
digests.

Writes are crash-safe: the archive is written to a ``.tmp`` sibling,
flushed and fsynced, then :func:`os.replace`'d into place — a reader
never observes a half-written snapshot under the final name. Reads are
paranoid: truncated archives, unknown format versions and digest
mismatches raise :class:`~repro.exceptions.CheckpointError` (corrupt),
as does a fingerprint that does not match the resuming run's (stale).
Refusal over guesswork — resuming from the wrong snapshot would
silently break the resumed-equals-fresh contract.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.checkpoint.codec import restore_state
from repro.exceptions import CheckpointError

FORMAT_VERSION = 1
MANIFEST_KEY = "__manifest__"


def _jsonable(value: Any) -> Any:
    """JSON fallback for numpy scalars and arrays inside metadata."""
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": _digest(value),
            "dtype": value.dtype.str,
            "shape": list(value.shape),
        }
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(f"{type(value).__name__} is not JSON-serializable")


def _digest(arr: np.ndarray) -> str:
    """SHA-256 over dtype, shape and raw bytes of ``arr``."""
    contiguous = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(contiguous.dtype.str.encode())
    h.update(repr(contiguous.shape).encode())
    h.update(contiguous.tobytes())
    return h.hexdigest()


def content_fingerprint(payload: Any) -> str:
    """Deterministic short fingerprint of a JSON-able configuration.

    Arrays hash by content (dtype + shape + bytes), so a traffic trace
    or dataset slice fingerprints stably without embedding the data.
    Used to bind snapshots to the exact run that may resume from them.
    """
    text = json.dumps(payload, sort_keys=True, default=_jsonable)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass
class Snapshot:
    """One decoded snapshot: step, fingerprint, loop meta, fragments."""

    step: int
    fingerprint: str
    meta: dict[str, Any] = field(default_factory=dict)
    fragments: dict[str, dict[str, Any]] = field(default_factory=dict)

    def fragment(self, name: str) -> dict[str, Any]:
        """Return the named fragment, refusing loudly when absent."""
        try:
            return self.fragments[name]
        except KeyError:
            raise CheckpointError(
                f"snapshot at step {self.step} has no fragment {name!r}; "
                f"present: {sorted(self.fragments)}"
            ) from None

    def restore(self, name: str, obj: Any) -> None:
        """Reinstate the named fragment onto ``obj`` via its codec."""
        restore_state(obj, self.fragment(name))


def write_snapshot(
    path: str | os.PathLike[str],
    *,
    step: int,
    fragments: dict[str, dict[str, Any]],
    fingerprint: str,
    meta: dict[str, Any] | None = None,
) -> Path:
    """Atomically write ``fragments`` as one snapshot archive at ``path``."""
    target = Path(path)
    manifest_fragments = []
    flat_arrays: dict[str, np.ndarray] = {}
    for index, (name, fragment) in enumerate(fragments.items()):
        slots: dict[str, dict[str, Any]] = {}
        for key, arr in fragment.get("arrays", {}).items():
            array = np.ascontiguousarray(np.asarray(arr))
            slot = f"{index}:{key}"
            flat_arrays[slot] = array
            slots[key] = {"slot": slot, "sha256": _digest(array)}
        manifest_fragments.append(
            {
                "name": name,
                "kind": fragment["kind"],
                "meta": fragment.get("meta", {}),
                "arrays": slots,
            }
        )
    manifest = {
        "format_version": FORMAT_VERSION,
        "step": int(step),
        "fingerprint": fingerprint,
        "meta": dict(meta or {}),
        "fragments": manifest_fragments,
    }
    manifest_arr = np.frombuffer(
        json.dumps(manifest, default=_jsonable).encode(), dtype=np.uint8
    )
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, **{MANIFEST_KEY: manifest_arr}, **flat_arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)
    # Make the rename itself durable where the platform allows it.
    with contextlib.suppress(OSError):
        dir_fd = os.open(target.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return target


def read_manifest(path: str | os.PathLike[str]) -> dict[str, Any]:
    """Decode and validate only the manifest of a snapshot archive.

    Cheap relative to :func:`read_snapshot` — ``.npz`` members load
    lazily, so inspection tooling can list many snapshots without
    paying for their arrays.
    """
    target = Path(path)
    try:
        # Open the file ourselves: np.load on a corrupt archive raises
        # before its context manager exists, leaking the handle it opened.
        with open(target, "rb") as fh:
            with np.load(fh, allow_pickle=False) as archive:
                raw = bytes(archive[MANIFEST_KEY])
        manifest = json.loads(raw.decode())
    except (OSError, KeyError, ValueError, zipfile.BadZipFile, EOFError) as exc:
        raise CheckpointError(f"corrupt snapshot {target}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise CheckpointError(f"corrupt snapshot {target}: manifest is not a dict")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"snapshot {target} has format_version {version!r}; this build "
            f"reads version {FORMAT_VERSION}"
        )
    return manifest


def read_snapshot(
    path: str | os.PathLike[str],
    *,
    expect_fingerprint: str | None = None,
) -> Snapshot:
    """Read, digest-verify and (optionally) fingerprint-check a snapshot."""
    target = Path(path)
    manifest = read_manifest(target)
    fingerprint = manifest.get("fingerprint", "")
    if expect_fingerprint is not None and fingerprint != expect_fingerprint:
        raise CheckpointError(
            f"stale snapshot {target}: fingerprint {fingerprint!r} does not "
            f"match the resuming run's {expect_fingerprint!r}; refusing to "
            "resume from state produced by a different configuration"
        )
    fragments: dict[str, dict[str, Any]] = {}
    try:
        with open(target, "rb") as fh, np.load(fh, allow_pickle=False) as archive:
            for entry in manifest["fragments"]:
                arrays: dict[str, np.ndarray] = {}
                for key, slot_info in entry["arrays"].items():
                    arr = archive[slot_info["slot"]]
                    if _digest(arr) != slot_info["sha256"]:
                        raise CheckpointError(
                            f"corrupt snapshot {target}: array "
                            f"{entry['name']}/{key} fails its digest"
                        )
                    arrays[key] = arr
                fragments[entry["name"]] = {
                    "kind": entry["kind"],
                    "meta": entry.get("meta", {}),
                    "arrays": arrays,
                }
    except CheckpointError:
        raise
    except (OSError, KeyError, ValueError, zipfile.BadZipFile, EOFError) as exc:
        raise CheckpointError(f"corrupt snapshot {target}: {exc}") from exc
    return Snapshot(
        step=int(manifest["step"]),
        fingerprint=fingerprint,
        meta=dict(manifest.get("meta", {})),
        fragments=fragments,
    )
