"""State codecs: how live objects become snapshot fragments and back.

A *fragment* is the unit of checkpointed state: one plain dict

``{"kind": <codec key>, "meta": <JSON-serializable dict>,
"arrays": {<name>: np.ndarray, ...}}``

produced by :func:`capture_state` and consumed by
:func:`restore_state`. The split mirrors
:mod:`repro.models.serialization`: scalars, nested dicts and rng states
travel as JSON metadata; bulk numeric state travels as named arrays so
snapshots stay a single ``.npz`` file.

Codecs register in the string-keyed :data:`CHECKPOINTS` registry (the
repo's established Registry idiom) from the layer that *owns* the state
— serving registers the ledger/cache codecs, federation the comm-ledger
codec, models the model/optimizer codecs — so this module stays at the
bottom of the layer DAG and never imports upward. Every registered
codec declares ``state_fields``, the attribute names it round-trips;
the ``checkpoint-completeness`` lint rule cross-checks that each
declared field appears in both ``capture`` and ``restore``.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.exceptions import CheckpointError
from repro.utils.registry import Registry

CHECKPOINTS = Registry("checkpoint codec")

#: Fragment kind for objects implementing :class:`Checkpointable`
#: themselves rather than through a registered codec.
SELF_KIND = "self"

#: Fragment kind for loop-local raw data (accumulated rows, cursors)
#: that is not a codec'd object; restored by reading the fragment
#: directly, never through :func:`restore_state`.
RAW_KIND = "raw"


@runtime_checkable
class Checkpointable(Protocol):
    """Duck-typed alternative to a registered codec.

    An object that can serialize its own resumable state implements
    this pair; :func:`capture_state` and :func:`restore_state` use it
    when no registered codec targets the object's exact type.
    """

    def capture_checkpoint(self) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        """Return ``(meta, arrays)`` describing the resumable state."""
        ...

    def restore_checkpoint(
        self, meta: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> None:
        """Reinstate previously captured state onto ``self``."""
        ...


class StateCodec:
    """Base class for registered checkpoint codecs.

    Subclasses set ``kind`` (their :data:`CHECKPOINTS` key), ``target``
    (the exact type they snapshot) and ``state_fields`` (every attribute
    name the codec round-trips — the completeness contract the lint
    rule enforces), then implement :meth:`capture` and :meth:`restore`.
    Codecs are stateless; one instance serves every object.
    """

    kind: str = ""
    target: type | None = None
    state_fields: tuple[str, ...] = ()

    def capture(self, obj: Any) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        """Return ``(meta, arrays)`` for ``obj``'s resumable state."""
        raise NotImplementedError

    def restore(
        self, obj: Any, meta: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> None:
        """Reinstate captured state onto a compatibly constructed ``obj``."""
        raise NotImplementedError


def codec_for(obj: Any) -> StateCodec | None:
    """Resolve the registered codec targeting ``type(obj)`` exactly.

    Exact-type match (not isinstance) keeps restore honest: a subclass
    with extra state must register its own codec or the lookup misses
    and capture fails loudly.
    """
    for key in CHECKPOINTS:
        codec_cls = CHECKPOINTS.get(key)
        codec: StateCodec = codec_cls()
        if codec.target is not None and type(obj) is codec.target:
            return codec
    return None


def capture_state(obj: Any) -> dict[str, Any]:
    """Snapshot ``obj`` into a fragment dict via its codec.

    Prefers a registered codec matching the object's exact type; falls
    back to the :class:`Checkpointable` protocol. Raises
    :class:`~repro.exceptions.CheckpointError` when neither applies —
    silently skipping state is how resumed runs diverge.
    """
    codec = codec_for(obj)
    if codec is not None:
        meta, arrays = codec.capture(obj)
        return {"kind": codec.kind, "meta": meta, "arrays": arrays}
    if isinstance(obj, Checkpointable):
        meta, arrays = obj.capture_checkpoint()
        return {"kind": SELF_KIND, "meta": meta, "arrays": arrays}
    raise CheckpointError(
        f"no checkpoint codec registered for {type(obj).__name__!r} and it "
        f"does not implement the Checkpointable protocol; known codecs: "
        f"{CHECKPOINTS.names()}"
    )


def restore_state(obj: Any, fragment: dict[str, Any]) -> None:
    """Reinstate a captured fragment onto a freshly constructed ``obj``."""
    kind = fragment["kind"]
    if kind == RAW_KIND:
        raise CheckpointError(
            "raw fragments hold loop-local data, not object state; read "
            "fragment['meta'] / fragment['arrays'] directly instead of "
            "calling restore_state"
        )
    if kind == SELF_KIND:
        if not isinstance(obj, Checkpointable):
            raise CheckpointError(
                f"fragment was captured via the Checkpointable protocol but "
                f"{type(obj).__name__!r} does not implement it"
            )
        obj.restore_checkpoint(fragment["meta"], fragment["arrays"])
        return
    codec_cls = CHECKPOINTS.get(kind)
    codec: StateCodec = codec_cls()
    if codec.target is not None and type(obj) is not codec.target:
        raise CheckpointError(
            f"fragment kind {kind!r} targets {codec.target.__name__!r} but "
            f"got {type(obj).__name__!r}"
        )
    codec.restore(obj, fragment["meta"], fragment["arrays"])


def raw_fragment(
    meta: dict[str, Any] | None = None,
    arrays: dict[str, np.ndarray] | None = None,
) -> dict[str, Any]:
    """Build a fragment for loop-local data that is not a codec'd object.

    Accumulated result rows, replay cursors and other in-flight loop
    state ride in snapshots next to codec fragments; the owning loop
    reads them back directly on resume.
    """
    return {"kind": RAW_KIND, "meta": dict(meta or {}), "arrays": dict(arrays or {})}
