"""Codec for :class:`numpy.random.Generator` stream positions.

The repo's determinism contract hands every consumer a named generator
from :func:`repro.utils.spawn_rngs` (prefix-stable child streams of a
root seed). A resumed run therefore restores *stream positions*, not
seeds: ``bit_generator.state`` is a JSON-serializable dict that
round-trips the exact position of a PCG64 stream, so every draw after
restore equals the draw the uninterrupted run would have made.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.checkpoint.codec import CHECKPOINTS, StateCodec
from repro.exceptions import CheckpointError


@CHECKPOINTS.register("rng")
class GeneratorCodec(StateCodec):
    """Snapshot a ``numpy.random.Generator`` via its bit-generator state."""

    kind = "rng"
    target = np.random.Generator
    state_fields = ("bit_generator",)

    def capture(self, obj: Any) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        state = obj.bit_generator.state
        return {"state": state}, {}

    def restore(
        self, obj: Any, meta: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> None:
        state = meta["state"]
        expected = type(obj.bit_generator).__name__
        if state.get("bit_generator") != expected:
            raise CheckpointError(
                f"rng fragment holds {state.get('bit_generator')!r} state but "
                f"the generator to restore uses {expected!r}"
            )
        obj.bit_generator.state = state
