"""Checkpoint plans: the one knob long-running loops accept.

A :class:`CheckpointPlan` bundles *where* snapshots go (a
:class:`~repro.checkpoint.SnapshotStore`), *how often* they are emitted
(``every`` steps), *how many* to retain (``keep``) and — for tests and
deliberate suspension — *when to stop* (``halt_after``). Loops that
support suspend/resume take ``checkpoint: CheckpointPlan | None = None``
and make exactly two calls: :meth:`latest` before the loop to find
state to resume from, and :meth:`maybe_emit` at each step boundary.

Suspension is first-class control flow: after emitting the
``halt_after`` snapshot, :meth:`maybe_emit` raises
:class:`~repro.exceptions.CheckpointPause` so the loop unwinds through
its normal cleanup with the snapshot already durable. A SIGKILL'd run
resumes the same way — from whatever snapshot last hit the disk.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from repro.checkpoint.snapshot import Snapshot
from repro.checkpoint.store import SnapshotStore
from repro.exceptions import CheckpointPause, ValidationError

Fragments = dict[str, dict[str, Any]]


class CheckpointPlan:
    """Emission policy + store + fingerprint binding for one loop."""

    def __init__(
        self,
        store: SnapshotStore | str | os.PathLike[str],
        *,
        every: int = 1,
        keep: int | None = None,
        halt_after: int | None = None,
        fingerprint: str | None = None,
    ) -> None:
        if every < 1:
            raise ValidationError(f"checkpoint every must be >= 1, got {every}")
        if keep is not None and keep < 1:
            raise ValidationError(f"checkpoint keep must be >= 1, got {keep}")
        if halt_after is not None and halt_after < 1:
            raise ValidationError(
                f"checkpoint halt_after must be >= 1, got {halt_after}"
            )
        self.store = store if isinstance(store, SnapshotStore) else SnapshotStore(store)
        self.every = every
        self.keep = keep
        self.halt_after = halt_after
        self.fingerprint = fingerprint

    def bind_fingerprint(self, fingerprint: str) -> str:
        """Adopt the loop-computed fingerprint unless one was pinned.

        A fingerprint set at construction is authoritative (the resume
        driver binds plans to a validated run configuration); otherwise
        the loop's own content fingerprint becomes the binding.
        """
        if self.fingerprint is None:
            self.fingerprint = fingerprint
        return self.fingerprint

    def latest(self) -> Snapshot | None:
        """The newest snapshot matching the bound fingerprint, if any."""
        return self.store.load_latest(expect_fingerprint=self.fingerprint)

    def maybe_emit(
        self,
        step: int,
        build_fragments: Callable[[], Fragments] | Fragments,
        *,
        meta: dict[str, Any] | None = None,
    ) -> bool:
        """Emit a snapshot for ``step`` when the policy says it is due.

        ``build_fragments`` may be the fragments dict itself or a
        zero-argument callable producing it — the callable form lets
        loops skip capture work entirely on non-emitting steps. After a
        due ``halt_after`` step the snapshot is written, old snapshots
        pruned, and :class:`~repro.exceptions.CheckpointPause` raised.
        Returns whether a snapshot was written.
        """
        boundary = step + 1  # snapshots record *completed* steps
        halting = self.halt_after is not None and boundary >= self.halt_after
        due = boundary % self.every == 0 or halting
        if due:
            fragments = build_fragments() if callable(build_fragments) else build_fragments
            self.store.save(
                step,
                fragments,
                fingerprint=self.fingerprint or "",
                meta=meta,
            )
            if self.keep is not None:
                self.store.prune(self.keep)
        if halting:
            raise CheckpointPause(
                f"run suspended after step {step}; snapshot written to "
                f"{self.store.path_for(step)}"
            )
        return due
