"""Snapshot directories: ordered steps, pruning, latest-wins resume.

A :class:`SnapshotStore` owns one directory of snapshot archives named
``step-<NNNNNNNN>.ckpt.npz``. Because every write lands via
write-then-rename, the files present are always complete snapshots;
``load_latest`` therefore treats a corrupt or stale newest file as a
real error rather than silently falling back to an older one — the
caller decides whether to prune and retry.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Any

from repro.checkpoint.snapshot import (
    Snapshot,
    read_manifest,
    read_snapshot,
    write_snapshot,
)

_STEP_PATTERN = re.compile(r"^step-(\d{8})\.ckpt\.npz$")
SNAPSHOT_SUFFIX = ".ckpt.npz"


class SnapshotStore:
    """A directory of ordered snapshots for one resumable run."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)

    def path_for(self, step: int) -> Path:
        """The canonical snapshot filename for ``step``."""
        return self.root / f"step-{step:08d}{SNAPSHOT_SUFFIX}"

    def steps(self) -> list[int]:
        """Steps with a snapshot on disk, ascending."""
        if not self.root.is_dir():
            return []
        found = []
        for entry in sorted(self.root.iterdir()):
            match = _STEP_PATTERN.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return found

    def save(
        self,
        step: int,
        fragments: dict[str, dict[str, Any]],
        *,
        fingerprint: str,
        meta: dict[str, Any] | None = None,
    ) -> Path:
        """Write the snapshot for ``step``, creating the directory."""
        self.root.mkdir(parents=True, exist_ok=True)
        return write_snapshot(
            self.path_for(step),
            step=step,
            fragments=fragments,
            fingerprint=fingerprint,
            meta=meta,
        )

    def load(self, step: int, *, expect_fingerprint: str | None = None) -> Snapshot:
        """Read and verify the snapshot for ``step``."""
        return read_snapshot(self.path_for(step), expect_fingerprint=expect_fingerprint)

    def load_latest(self, *, expect_fingerprint: str | None = None) -> Snapshot | None:
        """Read the newest snapshot, or ``None`` when the store is empty.

        Corruption or staleness of the newest snapshot raises — the
        atomic write protocol means a bad final file is damage, not an
        interrupted write, and quietly resuming from an older step
        would redo work the caller believes done.
        """
        steps = self.steps()
        if not steps:
            return None
        return self.load(steps[-1], expect_fingerprint=expect_fingerprint)

    def prune(self, keep: int) -> list[Path]:
        """Delete all but the newest ``keep`` snapshots; return removals."""
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        removed = []
        for step in self.steps()[:-keep]:
            path = self.path_for(step)
            path.unlink()
            removed.append(path)
        return removed

    def inspect(self) -> list[dict[str, Any]]:
        """Manifest summaries for every snapshot, ascending by step.

        Reads manifests only (arrays stay on disk), so inspection is
        cheap even for large snapshots. Corrupt files are reported
        in-band with an ``"error"`` entry instead of aborting the
        listing — inspection is exactly the tool you reach for when a
        store is damaged.
        """
        from repro.exceptions import CheckpointError

        reports = []
        for step in self.steps():
            path = self.path_for(step)
            try:
                manifest = read_manifest(path)
            except CheckpointError as exc:
                reports.append({"step": step, "path": str(path), "error": str(exc)})
                continue
            reports.append(
                {
                    "step": step,
                    "path": str(path),
                    "fingerprint": manifest["fingerprint"],
                    "meta": manifest["meta"],
                    "fragments": {
                        entry["name"]: entry["kind"]
                        for entry in manifest["fragments"]
                    },
                }
            )
        return reports
