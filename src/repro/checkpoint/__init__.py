"""Checkpoint/resume subsystem: suspend any long-running loop, resume bit-identically.

The contract that makes this subsystem trustworthy is *resumed == fresh
is bit-identical*: a run restored from a snapshot produces exactly the
bytes an uninterrupted run would have — same metrics, same arrays, same
ledger tallies — proven by the oracle tests in
``tests/test_api_equivalence.py``.

Four pieces compose:

- :mod:`~repro.checkpoint.codec` — the :data:`CHECKPOINTS` registry of
  :class:`StateCodec` classes turning live objects (ledgers, caches,
  optimizers, rng streams) into ``(meta, arrays)`` fragments and back,
  plus the :class:`Checkpointable` protocol for self-serializing
  objects;
- :mod:`~repro.checkpoint.snapshot` — one snapshot == one ``.npz`` with
  a versioned manifest, SHA-256 array digests, a content fingerprint
  binding it to its run configuration, and atomic write-then-rename;
  corrupt or stale snapshots are refused via
  :class:`~repro.exceptions.CheckpointError`;
- :mod:`~repro.checkpoint.store` — :class:`SnapshotStore`, a directory
  of ordered steps with ``load_latest``/``prune``/``inspect``;
- :mod:`~repro.checkpoint.plan` — :class:`CheckpointPlan`, the single
  ``checkpoint=`` knob loops accept: emission cadence, retention, and
  deliberate suspension via :class:`~repro.exceptions.CheckpointPause`.

Codecs self-register from the layer that owns the state (serving,
federation, models), so this package sits at the bottom of the layer
DAG next to :mod:`repro.utils` and everything above it may import it.
The ``repro-ckpt`` console script (``inspect``/``prune``/``resume``)
drives stores from the shell.
"""

from repro.checkpoint.codec import (
    CHECKPOINTS,
    Checkpointable,
    StateCodec,
    capture_state,
    codec_for,
    raw_fragment,
    restore_state,
)
from repro.checkpoint.plan import CheckpointPlan
from repro.checkpoint.snapshot import (
    FORMAT_VERSION,
    Snapshot,
    content_fingerprint,
    read_manifest,
    read_snapshot,
    write_snapshot,
)
from repro.checkpoint.store import SNAPSHOT_SUFFIX, SnapshotStore
from repro.exceptions import CheckpointError, CheckpointPause

# Register the rng codec on package import; object-owning layers
# (serving, federation, models) register theirs on their own import.
from repro.checkpoint import rng as _rng  # noqa: F401

__all__ = [
    "CHECKPOINTS",
    "Checkpointable",
    "StateCodec",
    "capture_state",
    "restore_state",
    "codec_for",
    "raw_fragment",
    "CheckpointPlan",
    "Snapshot",
    "SnapshotStore",
    "SNAPSHOT_SUFFIX",
    "FORMAT_VERSION",
    "content_fingerprint",
    "read_manifest",
    "read_snapshot",
    "write_snapshot",
    "CheckpointError",
    "CheckpointPause",
]
