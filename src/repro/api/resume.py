"""Suspend/resume for whole scenarios: ``run_scenario_resumable``.

One directory per resumable scenario run:

- ``scenario.json`` — the canonical JSON encoding of the
  :class:`~repro.api.ScenarioConfig` (the same encoding
  :meth:`~repro.api.ScenarioReport.to_payload` persists), written on the
  first call and *verified* on every later one — resuming a directory
  with a different config is refused, never silently blended;
- ``serving/`` — :class:`~repro.checkpoint.SnapshotStore` of the
  accumulation (one snapshot per protocol round), injected as
  :func:`~repro.api.run_scenario`'s ``serving_checkpoint``;
- ``attack/`` — snapshot store of GRNA's training loop (one snapshot per
  ``every`` epochs), injected as ``attack_params["checkpoint"]``;
- ``report.json`` — the finished :class:`~repro.api.ScenarioReport`
  payload, written only when the run completes.

Kill the process at any point — SIGKILL included — and calling
:func:`run_scenario_resumable` again with the same config and directory
finishes the run, producing a report **bit-identical** to an
uninterrupted one: the deterministic rebuild (dataset, partition,
training) replays from the seed schedule, while the accumulated rows,
ledgers, rng stream positions, and optimizer state resume from the
snapshots. The ``repro-ckpt`` console script wraps this module for the
command line.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.api.scenario import ScenarioConfig, ScenarioReport, run_scenario
from repro.checkpoint import CheckpointPlan
from repro.exceptions import CheckpointError

__all__ = [
    "ATTACK_SUBDIR",
    "REPORT_FILE",
    "SCENARIO_FILE",
    "SERVING_SUBDIR",
    "config_payload",
    "config_from_payload",
    "run_scenario_resumable",
]

SCENARIO_FILE = "scenario.json"
REPORT_FILE = "report.json"
ATTACK_SUBDIR = "attack"
SERVING_SUBDIR = "serving"


def config_payload(config: ScenarioConfig) -> dict:
    """The canonical JSON encoding of a config (see ``to_payload``).

    Round-tripped through JSON so the result compares equal to a payload
    read back from disk (tuples become lists either way).
    """
    payload = ScenarioReport(
        config=config, scenario=None, result=None, metrics={}
    ).to_payload()["config"]
    return json.loads(json.dumps(payload, sort_keys=True))


def config_from_payload(payload: dict) -> ScenarioConfig:
    """Decode :func:`config_payload` output back into a config."""
    return ScenarioReport.from_payload(
        {"config": payload, "metrics": {}, "queries_used": 0}
    ).config


def run_scenario_resumable(
    config: ScenarioConfig,
    *,
    store_dir: "str | Path",
    every: int = 1,
    keep: "int | None" = 3,
    halt_after: "int | None" = None,
) -> ScenarioReport:
    """Run (or finish) one scenario with on-disk suspend/resume.

    Parameters
    ----------
    config:
        The grid cell to run. Must be JSON-serializable (it is pinned to
        ``scenario.json``); in particular ``attack_params`` may not
        already carry a checkpoint plan — this function injects one.
    store_dir:
        The run's directory. Fresh → created and pinned to this config;
        existing → the pinned config must match exactly, else
        :class:`~repro.exceptions.CheckpointError`.
    every, keep:
        Snapshot cadence and retention for both plans (see
        :class:`~repro.checkpoint.CheckpointPlan`).
    halt_after:
        Deliberately suspend GRNA training after this many epochs by
        raising :class:`~repro.exceptions.CheckpointPause` — the
        programmatic stand-in for a kill, used by tests and the smoke
        script. ``None`` runs to completion.

    Scenarios with defenses get no serving plan (checkpointed
    accumulation refuses defense stacks — per-defense tallies are not
    snapshotted); GRNA still resumes its training loop, and the
    deterministic rebuild covers the rest.
    """
    if "checkpoint" in config.attack_params:
        raise CheckpointError(
            "config.attack_params already carries a 'checkpoint' plan; "
            "run_scenario_resumable owns the plan wiring — pass a plain "
            "config and point store_dir at the run's directory"
        )
    store_dir = Path(store_dir)
    store_dir.mkdir(parents=True, exist_ok=True)
    payload = config_payload(config)
    manifest = store_dir / SCENARIO_FILE
    if manifest.exists():
        pinned = json.loads(manifest.read_text(encoding="utf-8"))
        if pinned != payload:
            raise CheckpointError(
                f"{manifest} pins a different scenario config; refusing to "
                "resume its snapshots under this one — use a fresh store_dir"
            )
    else:
        manifest.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    serving_plan = None
    if not config.defenses:
        serving_plan = CheckpointPlan(
            store_dir / SERVING_SUBDIR, every=every, keep=keep
        )
    run_config = config
    if config.attack == "grna":
        attack_plan = CheckpointPlan(
            store_dir / ATTACK_SUBDIR,
            every=every,
            keep=keep,
            halt_after=halt_after,
        )
        run_config = dataclasses.replace(
            config,
            attack_params={**config.attack_params, "checkpoint": attack_plan},
        )
    report = run_scenario(run_config, serving_checkpoint=serving_plan)
    # The report travels with the *plain* config — the injected plan is
    # run machinery, and it would break JSON persistence.
    report = dataclasses.replace(report, config=config)
    (store_dir / REPORT_FILE).write_text(
        report.to_json() + "\n", encoding="utf-8"
    )
    return report
