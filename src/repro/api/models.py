"""Model registry of the scenario API.

Each entry is a builder ``(scale, rng, **overrides) -> BaseClassifier``
that instantiates one of the paper's four VFL model classes at the size
the :class:`~repro.config.ScaleConfig` prescribes. Overrides win over the
scale's defaults, so a scenario can say ``model_params={"epochs": 5}``
without defining a whole new scale preset.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.api.registry import Registry
from repro.config import ScaleConfig
from repro.models import (
    BaseClassifier,
    DecisionTreeClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
)

#: VFL model kinds, keyed as in the paper's grid (``"lr"``/``"nn"``/``"dt"``/``"rf"``).
MODELS = Registry("model")


@MODELS.register("lr")
def build_lr(
    scale: ScaleConfig, rng: np.random.Generator, **overrides: Any
) -> LogisticRegression:
    """Logistic regression at the scale's training budget."""
    params: dict[str, Any] = {"epochs": scale.lr_epochs}
    params.update(overrides)
    return LogisticRegression(rng=rng, **params)


@MODELS.register("nn")
def build_nn(
    scale: ScaleConfig, rng: np.random.Generator, **overrides: Any
) -> MLPClassifier:
    """MLP classifier at the scale's width/epoch budget (dropout overridable)."""
    params: dict[str, Any] = {
        "hidden_sizes": scale.mlp_hidden,
        "epochs": scale.mlp_epochs,
        "dropout": 0.0,
    }
    params.update(overrides)
    return MLPClassifier(rng=rng, **params)


@MODELS.register("dt")
def build_dt(
    scale: ScaleConfig, rng: np.random.Generator, **overrides: Any
) -> DecisionTreeClassifier:
    """Decision tree at the scale's depth."""
    params: dict[str, Any] = {"max_depth": scale.dt_depth}
    params.update(overrides)
    return DecisionTreeClassifier(rng=rng, **params)


@MODELS.register("rf")
def build_rf(
    scale: ScaleConfig, rng: np.random.Generator, **overrides: Any
) -> RandomForestClassifier:
    """Random forest at the scale's tree count/depth."""
    params: dict[str, Any] = {"n_trees": scale.rf_trees, "max_depth": scale.rf_depth}
    params.update(overrides)
    return RandomForestClassifier(rng=rng, **params)


#: Model kinds in registration (paper) order — the legacy constant.
MODEL_KINDS = tuple(MODELS)


def make_model(
    kind: str,
    scale: ScaleConfig,
    rng: np.random.Generator,
    *,
    dropout: float = 0.0,
    **overrides: Any,
) -> BaseClassifier:
    """Instantiate a VFL model of the requested kind at the given scale.

    ``dropout`` is accepted for every kind (the historical signature) but
    only forwarded to the NN builder; other overrides go to the builder
    verbatim and fail loudly when the model class rejects them.
    """
    builder = MODELS.get(kind)
    if kind == "nn":
        overrides.setdefault("dropout", dropout)
    return builder(scale, rng, **overrides)
