"""Dataset registry of the scenario API.

A thin, uniformly-keyed front over :mod:`repro.datasets`: every Table II
dataset is registered by name and resolves to its
:class:`~repro.datasets.registry.DatasetSpec`; :func:`load` materializes
it. Registered here (rather than just re-exported) so the facade can
validate dataset keys exactly like attack/defense/model keys — with an
error that lists the valid choices.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Registry
from repro.datasets import Dataset, DatasetSpec, list_datasets
from repro.datasets import get_spec as _get_spec
from repro.datasets import load_dataset as _load_dataset

#: Table II datasets, keyed by name (``"bank"``, ``"credit"``, ...).
DATASETS = Registry("dataset")

for _name in list_datasets():
    DATASETS.register(_name, _get_spec(_name))
del _name


def get_dataset_spec(name: str) -> DatasetSpec:
    """Static spec of a registered dataset (helpful error on unknown keys)."""
    return DATASETS.get(name)


def load(
    name: str,
    *,
    n_samples: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> Dataset:
    """Materialize a registered dataset (see :func:`repro.datasets.load_dataset`)."""
    DATASETS.get(name)
    return _load_dataset(name, n_samples=n_samples, rng=rng)
