"""Composable defense stack of the scenario API (§VII countermeasures).

Each countermeasure is a :class:`Defense` with three hooks, applied at
the three points of a scenario's lifecycle where the paper's §VII
defenses intervene:

``screen(X, y, partition, view, n_classes)``
    *Pre-collaboration*: inspect (and possibly shrink) the joint feature
    space before any training happens — correlation screening drops the
    target party's most exposed columns.
``wrap(model, rng)``
    *Output perturbation*: wrap the fitted model so the prediction
    protocol serves perturbed confidence scores (rounding, noising).
    Wrapping composes, so ``DefenseStack(["rounding", "noise"])`` serves
    ``noise(round(v))`` — the §VII combination the old one-off
    ``RoundedModel``/``NoisyModel`` wrappers could not express cleanly.
``on_query(V, context)``
    *Online serving*: intervene on each batch of confidence scores as the
    :class:`~repro.serving.PredictionService` computes it — per-query
    noise, rate limiting, and duplicate-query auditing all act here,
    where they can see *who* is asking and *how often*, which the static
    ``wrap`` hook cannot.
``release_mask(scenario)``
    *Post-processing verification*: simulate the cheap single-prediction
    attacks against each pending output and withhold the outputs whose
    estimated leakage crosses the threshold.

A :class:`DefenseStack` folds any number of defenses through those hooks
in list order. Defenses are registered by string key in :data:`DEFENSES`
(``"rounding"``, ``"noise"``, ``"screening"``, ``"verification"``, plus
the online trio ``"query_noise"``, ``"rate_limit"``, ``"query_audit"``).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Sequence

import numpy as np

from repro.api.registry import Registry
from repro.defenses.base import ModelWrapper, unwrap_model
from repro.defenses.noise import NoisyModel, noise_confidence_scores
from repro.defenses.rounding import RoundedModel
from repro.defenses.screening import screen_collaboration
from repro.defenses.verification import LeakageVerifier
from repro.exceptions import (
    IncompatibleScenarioError,
    QueryBudgetExceededError,
    ScenarioError,
)
from repro.federated.partition import AdversaryView, FeaturePartition
from repro.models.base import BaseClassifier
from repro.models.logistic import LogisticRegression
from repro.utils.random import check_random_state
from repro.utils.validation import check_in_range, check_positive_int

__all__ = [
    "DEFENSES",
    "Defense",
    "DefenseStack",
    "ModelWrapper",
    "unwrap_model",
]

#: §VII countermeasures, keyed by short name.
DEFENSES = Registry("defense")


class Defense:
    """One composable countermeasure; hooks default to no-ops.

    Subclasses set :attr:`name`, restrict :attr:`compatible_models` when
    the countermeasure only exists for some model kinds (stating why in
    :attr:`constraint`), and override whichever hooks they act through.
    """

    name: str = "identity"
    #: Model registry keys the defense supports; ``None`` means every
    #: registered model, including ones registered after import.
    compatible_models: "tuple[str, ...] | None" = None
    constraint: str = "applies to every model kind"
    #: Set True when ``on_query`` consumes sample-content fingerprints;
    #: the serving layer then computes them once per chunk and passes
    #: them via ``QueryContext.sample_hashes`` instead of every defense
    #: re-assembling and re-hashing the joint rows itself.
    wants_sample_hashes: bool = False

    def screen(
        self,
        X: np.ndarray,
        y: np.ndarray,
        partition: FeaturePartition,
        view: AdversaryView,
        n_classes: int,
    ) -> tuple[np.ndarray, FeaturePartition, AdversaryView, dict[str, Any]]:
        """Pre-collaboration hook: may shrink the joint feature space."""
        return X, partition, view, {}

    def wrap(
        self, model: BaseClassifier, rng: np.random.Generator | None = None
    ) -> BaseClassifier:
        """Output-perturbation hook: may wrap the served model."""
        return model

    def on_query(self, V: np.ndarray, context) -> np.ndarray:
        """Online serving hook: perturb or gate one freshly computed batch.

        ``context`` is a :class:`~repro.serving.QueryContext` naming the
        consumer, the served sample ids, and the service (whose ledger
        and sample hashes the defense may consult). Raising here refuses
        the batch; returning a modified matrix perturbs it.
        """
        return V

    def release_mask(self, scenario) -> "np.ndarray | None":
        """Post-processing hook: boolean mask of outputs safe to release.

        ``None`` means the defense does not gate outputs.
        """
        return None


@DEFENSES.register("rounding")
class RoundingDefense(Defense):
    """Truncate served confidence scores to ``digits`` decimal digits."""

    name = "rounding"

    def __init__(self, digits: int = 3) -> None:
        self.digits = check_positive_int(digits, name="digits")

    def wrap(
        self, model: BaseClassifier, rng: np.random.Generator | None = None
    ) -> BaseClassifier:
        return RoundedModel._wrap(model, self.digits)


@DEFENSES.register("noise")
class NoiseDefense(Defense):
    """Add Laplace/Gaussian noise to served confidence scores."""

    name = "noise"

    def __init__(
        self,
        scale: float = 0.01,
        kind: str = "laplace",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.scale = check_in_range(scale, name="scale", low=0.0)
        self.kind = kind
        self.rng = rng

    def wrap(
        self, model: BaseClassifier, rng: np.random.Generator | None = None
    ) -> BaseClassifier:
        # An explicitly configured stream wins; otherwise the
        # scenario-derived stream; otherwise a fixed seed — never OS
        # entropy, so a manually composed DefenseStack(["noise"]) serves
        # reproducible scores run to run.
        noise_rng = self.rng if self.rng is not None else rng
        if noise_rng is None:
            noise_rng = 0
        return NoisyModel._wrap(model, self.scale, kind=self.kind, rng=noise_rng)


@DEFENSES.register("screening")
class ScreeningDefense(Defense):
    """Drop the target party's most exposed columns before training (§VII).

    Cross-party correlation screening: target columns whose mean absolute
    correlation with the adversary's columns exceeds the threshold are
    withheld from the collaboration. At least one target column is always
    retained — a party that contributes nothing is not collaborating, and
    :class:`~repro.federated.partition.FeaturePartition` rejects empty
    blocks.
    """

    name = "screening"

    def __init__(self, correlation_threshold: float = 0.5) -> None:
        self.correlation_threshold = check_in_range(
            correlation_threshold, name="correlation_threshold", low=0.0, high=1.0
        )

    def screen(
        self,
        X: np.ndarray,
        y: np.ndarray,
        partition: FeaturePartition,
        view: AdversaryView,
        n_classes: int,
    ) -> tuple[np.ndarray, FeaturePartition, AdversaryView, dict[str, Any]]:
        X_adv, X_target = view.split(X)
        report = screen_collaboration(
            X_adv,
            X_target,
            n_classes,
            correlation_threshold=self.correlation_threshold,
        )
        flagged = np.asarray(report.flagged_features, dtype=np.int64)
        if flagged.size >= view.d_target:
            keep_one = int(np.argmin(report.feature_exposure))
            flagged = flagged[flagged != keep_one]
        info: dict[str, Any] = {
            "screening": {
                "esa_exact_risk": report.esa_exact_risk,
                "threshold": report.threshold,
                "dropped_columns": [],
            }
        }
        if flagged.size == 0:
            return X, partition, view, info
        dropped_global = np.asarray(view.target_indices)[flagged]
        keep_global = np.setdiff1d(np.arange(view.n_features), dropped_global)
        remap = np.full(view.n_features, -1, dtype=np.int64)
        remap[keep_global] = np.arange(keep_global.size)
        kept_target = np.setdiff1d(np.asarray(view.target_indices), dropped_global)
        new_partition = FeaturePartition(
            int(keep_global.size),
            [remap[np.asarray(view.adversary_indices)], remap[kept_target]],
        )
        info["screening"]["dropped_columns"] = [int(c) for c in dropped_global]
        return (
            X[:, keep_global],
            new_partition,
            new_partition.adversary_view(),
            info,
        )


@DEFENSES.register("verification")
class VerificationDefense(Defense):
    """Withhold outputs whose simulated single-prediction leakage is too high."""

    name = "verification"
    compatible_models = ("lr", "dt")
    constraint = (
        "post-processing verification simulates the cheap single-prediction "
        "attacks, which exist only for logistic regression (ESA) and "
        "decision trees (PRA)"
    )

    def __init__(self, min_mse: float = 0.01, min_candidate_paths: int = 2) -> None:
        self.min_mse = check_in_range(min_mse, name="min_mse", low=0.0)
        self.min_candidate_paths = check_positive_int(
            min_candidate_paths, name="min_candidate_paths"
        )

    def release_mask(self, scenario) -> np.ndarray:
        base = unwrap_model(scenario.model)
        verifier = LeakageVerifier(scenario.view)
        n = scenario.V.shape[0]
        mask = np.zeros(n, dtype=bool)
        if isinstance(base, LogisticRegression):
            for i in range(n):
                decision = verifier.verify_lr_output(
                    base,
                    scenario.X_adv[i],
                    scenario.X_target[i],
                    scenario.V[i],
                    min_mse=self.min_mse,
                )
                mask[i] = decision.release
            return mask
        structure = getattr(base, "tree_structure", None)
        if structure is None:
            raise IncompatibleScenarioError(
                f"defense 'verification' cannot gate {type(base).__name__} "
                f"outputs: {self.constraint}"
            )
        structure = structure()
        labels = np.argmax(scenario.V, axis=1)
        for i in range(n):
            decision = verifier.verify_tree_output(
                structure,
                scenario.X_adv[i],
                int(labels[i]),
                min_candidate_paths=self.min_candidate_paths,
            )
            mask[i] = decision.release
        return mask


@DEFENSES.register("query_noise")
class QueryNoiseDefense(Defense):
    """Fresh Laplace/Gaussian noise per served query (online ``noise``).

    Unlike the static ``noise`` wrapper — whose perturbation is fixed by
    the model wrapper's stream regardless of who asks — this draws at
    serving time, so re-querying the same sample yields a *different*
    perturbation and averaging the noise away costs query budget. Noise
    is drawn from the defense's own stream when one is configured,
    otherwise from the service's defense stream, otherwise a fixed seed —
    never OS entropy.
    """

    name = "query_noise"

    def __init__(
        self,
        scale: float = 0.01,
        kind: str = "laplace",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.scale = check_in_range(scale, name="scale", low=0.0)
        self.kind = kind
        self.rng = check_random_state(rng) if rng is not None else None

    def on_query(self, V: np.ndarray, context) -> np.ndarray:
        rng = self.rng
        if rng is None:
            rng = context.service.rng
        if rng is None:
            rng = self.rng = check_random_state(0)
        return noise_confidence_scores(V, self.scale, kind=self.kind, rng=rng)


@DEFENSES.register("rate_limit")
class RateLimitDefense(Defense):
    """Refuse service once the deployment has answered ``max_queries``.

    The server-side sibling of the adversary-side ``query_budget``: the
    ledger still meters per consumer, but the cap here is the defender's
    policy and exceeding it raises
    :class:`~repro.exceptions.QueryBudgetExceededError` out of the
    serving layer regardless of what the attack budgeted for.
    """

    name = "rate_limit"

    def __init__(self, max_queries: int = 1000) -> None:
        self.max_queries = check_positive_int(max_queries, name="max_queries")

    def on_query(self, V: np.ndarray, context) -> np.ndarray:
        used = context.service.ledger.queries_used
        if used > self.max_queries:
            raise QueryBudgetExceededError(
                f"rate limit: deployment served {used} queries, exceeding the "
                f"defender's cap of {self.max_queries} (consumer "
                f"{context.consumer!r})"
            )
        return V


@DEFENSES.register("query_audit")
class QueryAuditDefense(Defense):
    """Duplicate-query auditing over sample-content fingerprints.

    Records how often each distinct joint sample (by
    :meth:`~repro.federated.VerticalFLModel.sample_hashes` fingerprint)
    has been served; repeated queries for the same content are the
    signature of an adversary averaging out a noise defense. With
    ``max_repeats`` set, a sample served more than that many times is
    refused with :class:`~repro.exceptions.QueryBudgetExceededError`.
    The tally is readable on the instance (``seen``, ``duplicates``) and
    lands in the scenario's ``meta`` via the audit report.

    Tallies are also kept **per consumer** (``consumer_queries``,
    ``consumer_duplicates``) where a duplicate means "this consumer
    re-requested content *it* already received" — the tenant-scoped
    signal the workload layer's anomaly ranking is built on, and the one
    that stays invariant under consumer-pinned sharding (the
    deployment-wide ``seen`` tally mixes tenants, so per-shard instances
    see different slices of it).
    """

    name = "query_audit"
    wants_sample_hashes = True

    def __init__(self, max_repeats: "int | None" = None) -> None:
        self.max_repeats = (
            None if max_repeats is None
            else check_positive_int(max_repeats, name="max_repeats")
        )
        self.seen: dict[str, int] = {}
        self.duplicates = 0
        self.consumer_queries: dict[str, int] = {}
        self.consumer_duplicates: dict[str, int] = {}
        self._consumer_seen: dict[str, dict[str, int]] = {}

    def on_query(self, V: np.ndarray, context) -> np.ndarray:
        # Audit everything the chunk releases: freshly computed rows AND
        # cache replays (a replayed duplicate is exactly the averaging
        # signature this defense exists to catch). The service hands over
        # the fingerprints it already computed for its cache; without a
        # cache they are derived here.
        hashes = context.sample_hashes
        if hashes is None:
            indices = np.concatenate(
                [context.sample_indices, context.replayed_indices]
            )
            hashes = (
                context.service.vfl.sample_hashes(indices) if indices.size else []
            )
        consumer = context.consumer
        if hashes:
            self.consumer_queries[consumer] = self.consumer_queries.get(
                consumer, 0
            ) + len(hashes)
        own = self._consumer_seen.setdefault(consumer, {})
        for digest in hashes:
            count = self.seen.get(digest, 0) + 1
            self.seen[digest] = count
            if count > 1:
                self.duplicates += 1
            own_count = own.get(digest, 0) + 1
            own[digest] = own_count
            if own_count > 1:
                self.consumer_duplicates[consumer] = (
                    self.consumer_duplicates.get(consumer, 0) + 1
                )
            if self.max_repeats is not None and count > self.max_repeats:
                raise QueryBudgetExceededError(
                    f"query audit: sample {digest[:12]}... requested {count} "
                    f"times, exceeding max_repeats={self.max_repeats} "
                    f"(consumer {context.consumer!r})"
                )
        return V

    def report(self) -> dict[str, Any]:
        """Audit summary: distinct samples, duplicates, per-consumer tallies."""
        return {
            "distinct_samples": len(self.seen),
            "duplicates": self.duplicates,
            "consumer_queries": dict(self.consumer_queries),
            "consumer_duplicates": dict(self.consumer_duplicates),
        }


class DefenseStack:
    """An ordered composition of defenses applied through every hook.

    List order is application order: ``DefenseStack(["rounding", "noise"])``
    rounds the scores first and noises the rounded scores.
    """

    def __init__(self, defenses: Iterable[Defense] = ()) -> None:
        self.defenses: list[Defense] = []
        for defense in defenses:
            if not isinstance(defense, Defense):
                raise ScenarioError(
                    f"DefenseStack items must be Defense instances, got "
                    f"{type(defense).__name__}; use DefenseStack.from_specs "
                    "for string keys"
                )
            self.defenses.append(defense)

    @classmethod
    def from_specs(cls, specs: Sequence) -> "DefenseStack":
        """Build a stack from mixed specs.

        Each item may be a :class:`Defense` instance, a registry key
        (``"rounding"``), or a ``(key, params)`` pair
        (``("rounding", {"digits": 1})``).
        """
        defenses: list[Defense] = []
        for spec in specs:
            if isinstance(spec, Defense):
                defenses.append(spec)
            elif isinstance(spec, str):
                defenses.append(DEFENSES.create(spec))
            elif isinstance(spec, (tuple, list)) and len(spec) == 2:
                key, params = spec
                defenses.append(DEFENSES.create(key, **dict(params)))
            else:
                raise ScenarioError(
                    f"defense spec must be a Defense, a registry key, or a "
                    f"(key, params) pair, got {spec!r}"
                )
        return cls(defenses)

    @property
    def names(self) -> list[str]:
        """Names of the stacked defenses, in application order."""
        return [defense.name for defense in self.defenses]

    def __len__(self) -> int:
        return len(self.defenses)

    def __iter__(self):
        return iter(self.defenses)

    def validate_for_model(self, model_key: str) -> None:
        """Reject defenses that do not exist for the scenario's model kind."""
        for defense in self.defenses:
            if defense.compatible_models is None:
                continue
            if model_key not in defense.compatible_models:
                raise IncompatibleScenarioError(
                    f"defense {defense.name!r} supports models "
                    f"{defense.compatible_models}, not {model_key!r}: "
                    f"{defense.constraint}"
                )

    def screen(
        self,
        X: np.ndarray,
        y: np.ndarray,
        partition: FeaturePartition,
        view: AdversaryView,
        n_classes: int,
    ) -> tuple[np.ndarray, FeaturePartition, AdversaryView, dict[str, Any]]:
        """Fold the pre-collaboration hooks, merging their info dicts."""
        info: dict[str, Any] = {}
        for defense in self.defenses:
            X, partition, view, step_info = defense.screen(
                X, y, partition, view, n_classes
            )
            info.update(step_info)
        return X, partition, view, info

    def wrap(
        self, model: BaseClassifier, rng: np.random.Generator | None = None
    ) -> BaseClassifier:
        """Fold the output-perturbation hooks around the served model."""
        for defense in self.defenses:
            model = defense.wrap(model, rng)
        return model

    def on_query(self, V: np.ndarray, context) -> np.ndarray:
        """Fold the online hooks over one freshly computed response batch."""
        for defense in self.defenses:
            V = defense.on_query(V, context)
        return V

    def apply_release_filter(self, scenario):
        """Drop withheld outputs from the scenario's accumulated predictions.

        Returns the scenario unchanged when no defense gates outputs;
        otherwise a filtered copy whose ``meta`` records the release mask.
        Raises :class:`~repro.exceptions.ScenarioError` when every output
        is withheld — there is nothing left to attack, which is a scenario
        configuration problem, not an attack failure.
        """
        combined: np.ndarray | None = None
        for defense in self.defenses:
            mask = defense.release_mask(scenario)
            if mask is None:
                continue
            combined = mask if combined is None else (combined & mask)
        if combined is None:
            return scenario
        n_released = int(combined.sum())
        if n_released == 0:
            raise ScenarioError(
                "the verification defense withheld every prediction output; "
                "relax min_mse / min_candidate_paths or drop the defense"
            )
        meta = dict(scenario.meta)
        meta["release_mask"] = combined
        meta["n_blocked"] = int(combined.size - n_released)
        return dataclasses.replace(
            scenario,
            X_adv=scenario.X_adv[combined],
            X_target=scenario.X_target[combined],
            V=scenario.V[combined],
            X_pred_full=scenario.X_pred_full[combined],
            y_pred=scenario.y_pred[combined],
            meta=meta,
        )
