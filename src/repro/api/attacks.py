"""Attack registry and the unified ``prepare``/``run`` protocol.

The three attacks of the paper have structurally different engines — ESA
solves a precomputed linear system, PRA walks a tree per sample, GRNA
trains a generator (distilling forests first) — and historically three
different constructor signatures. The scenario API unifies them behind
:class:`ScenarioAttack`:

``prepare(scenario, scale=..., seed=...)``
    Bind the attack to a built scenario: resolve the released model
    **through the scenario's serving boundary**
    (:meth:`~repro.serving.PredictionService.release_model`, which peels
    output-defense wrappers exactly as §III-B releases plaintext θ),
    derive the attack's random streams from the scenario seed, and
    precompute whatever is prediction-independent.
``run(x_adv, v) -> AttackResult``
    Execute Eqn 2's ``A(x_adv, v, θ)`` on the accumulated predictions and
    return a common :class:`~repro.attacks.base.AttackResult`. The
    ``v`` matrix is what the metered service accumulated (and charged to
    this attack's ledger consumer name); attacks never touch
    ``VerticalFLModel.predict`` directly.

PRA's bespoke per-sample :class:`~repro.attacks.pra.PathRestrictionResult`
is folded into the common result type: ``x_target_hat`` carries interval
*midpoints* (so MSE is defined for PRA too) while ``info`` preserves the
full interval/path structure — the interval/point duality.

Seed schedules replicate the historical experiment runners exactly
(GRNA: ``spawn_rngs(seed + 1, 3)`` for generator/distiller/dummy streams;
PRA: ``spawn_rngs(seed, 2)`` for path choice and the path baseline), so
refactoring a runner onto this protocol is bit-identical.
"""

from __future__ import annotations

from functools import partial
from typing import Any

import numpy as np

from repro.api.registry import Registry
from repro.attacks import (
    AttackResult,
    EqualitySolvingAttack,
    GenerativeRegressionNetwork,
    PathRestrictionAttack,
    RandomGuessAttack,
    attack_random_forest,
)
from repro.config import ScaleConfig, get_scale
from repro.defenses.base import unwrap_model
from repro.exceptions import AttackError, IncompatibleScenarioError, ScenarioError
from repro.models import RandomForestClassifier, RandomForestDistiller
from repro.utils.random import spawn_rngs

__all__ = [
    "ATTACKS",
    "ScenarioAttack",
    "EsaScenarioAttack",
    "PraScenarioAttack",
    "GrnaScenarioAttack",
    "RandomBaselineScenarioAttack",
    "grna_kwargs_from_scale",
    "released_model",
]

#: Feature-inference attacks, keyed by paper acronym (plus baselines).
ATTACKS = Registry("attack")


def grna_kwargs_from_scale(scale: ScaleConfig, rng) -> dict:
    """Generator hyper-parameters for :class:`GenerativeRegressionNetwork`."""
    return {
        "hidden_sizes": scale.grna_hidden,
        "epochs": scale.grna_epochs,
        "batch_size": scale.grna_batch_size,
        "rng": rng,
    }


def released_model(scenario):
    """The plaintext model θ an attack legitimately receives (§III-B).

    Resolved through the scenario's serving boundary when one exists —
    the :class:`~repro.serving.PredictionService` is the release point
    for model parameters just as it is for predictions — falling back to
    unwrapping the scenario's served model for hand-built scenarios that
    never went through :func:`repro.api.build_scenario`.
    """
    service = getattr(scenario, "service", None)
    if service is not None:
        return service.release_model()
    return unwrap_model(scenario.model)


class ScenarioAttack:
    """Protocol base: ``prepare(scenario)`` then ``run(x_adv, v)``.

    ``run`` is idempotent: every adapter re-derives its random streams
    from the prepared seed on each call, so running the same prepared
    attack twice returns identical results.
    """

    name: str = ""
    #: Model registry keys the attack can target; ``None`` means every
    #: registered model, including ones registered after import.
    compatible_models: "tuple[str, ...] | None" = None
    constraint: str = "runs against every model kind"

    def prepare(
        self,
        scenario,
        *,
        scale: "str | ScaleConfig | None" = None,
        seed: int = 0,
    ) -> "ScenarioAttack":
        """Bind to a built scenario; returns self for chaining."""
        raise NotImplementedError

    def run(self, x_adv: np.ndarray, v: np.ndarray) -> AttackResult:
        """Execute the attack on accumulated predictions."""
        raise NotImplementedError


@ATTACKS.register("esa")
class EsaScenarioAttack(ScenarioAttack):
    """Equality Solving Attack (§IV-A) behind the unified protocol."""

    name = "esa"
    compatible_models = ("lr",)
    constraint = (
        "ESA solves the linear log-ratio equations of a logistic-regression "
        "model; other model kinds have no such closed-form score structure"
    )

    def __init__(self, **params: Any) -> None:
        self.params = params
        self._attack: EqualitySolvingAttack | None = None

    def prepare(self, scenario, *, scale=None, seed: int = 0) -> "EsaScenarioAttack":
        model = released_model(scenario)
        if not hasattr(model, "class_weight_matrix"):
            raise IncompatibleScenarioError(
                f"attack 'esa' cannot target {type(model).__name__}: "
                f"{self.constraint}"
            )
        self._attack = EqualitySolvingAttack(model, scenario.view, **self.params)
        return self

    def run(self, x_adv: np.ndarray, v: np.ndarray) -> AttackResult:
        if self._attack is None:
            raise AttackError("attack not prepared; call prepare(scenario) first")
        return self._attack.run(x_adv, v)


@ATTACKS.register("pra")
class PraScenarioAttack(ScenarioAttack):
    """Path Restriction Attack (§IV-B) behind the unified protocol.

    ``run`` restricts the tree once per sample (consuming the historical
    ``spawn_rngs(seed, 2)[0]`` stream for the uniform path choice) and
    folds the per-sample results into one :class:`AttackResult`:
    ``x_target_hat`` holds the midpoints of the inferred per-feature
    intervals, ``info`` keeps the selected paths, surviving-path counts,
    and the raw intervals.
    """

    name = "pra"
    compatible_models = ("dt",)
    constraint = (
        "PRA restricts the prediction paths of a single released decision "
        "tree; LR/NN have no paths and a forest's prediction is not a "
        "single tree path"
    )

    def __init__(self, *, interval_low: float = 0.0, interval_high: float = 1.0) -> None:
        self.interval_low = float(interval_low)
        self.interval_high = float(interval_high)
        self._attack: PathRestrictionAttack | None = None
        self._view = None
        self._seed = 0

    def prepare(self, scenario, *, scale=None, seed: int = 0) -> "PraScenarioAttack":
        model = released_model(scenario)
        exporter = getattr(model, "tree_structure", None)
        if exporter is None:
            raise IncompatibleScenarioError(
                f"attack 'pra' cannot target {type(model).__name__}: "
                f"{self.constraint}"
            )
        self.structure = exporter()
        self._attack = PathRestrictionAttack(self.structure, scenario.view)
        self._view = scenario.view
        self._seed = int(seed)
        return self

    def run(self, x_adv: np.ndarray, v: np.ndarray) -> AttackResult:
        if self._attack is None:
            raise AttackError("attack not prepared; call prepare(scenario) first")
        # Fresh path-choice stream per call so run() is idempotent.
        rng, _ = spawn_rngs(self._seed, 2)
        x_adv = np.atleast_2d(np.asarray(x_adv, dtype=np.float64))
        v = np.atleast_2d(np.asarray(v, dtype=np.float64))
        labels = np.argmax(v, axis=1)
        view = self._view
        position = {int(f): j for j, f in enumerate(view.target_indices)}
        midpoint = 0.5 * (self.interval_low + self.interval_high)
        x_hat = np.full((x_adv.shape[0], view.d_target), midpoint)
        paths: list[list[int] | None] = []
        restricted: list[int] = []
        intervals: list[dict[int, tuple[float, float]]] = []
        n_failed = 0
        # One vectorized Algorithm-1 pass restricts the whole pool; only
        # the uniform path choice stays sequential, consuming the rng
        # stream in the same per-sample order as the historical loop.
        indicators = self._attack.restrict_batch(x_adv, labels)
        for i in range(x_adv.shape[0]):
            candidates = np.flatnonzero(indicators[i])
            if candidates.size == 0:
                # A defended output can reveal a class label inconsistent
                # with every path the adversary's features allow (e.g. a
                # noise-flipped argmax); that sample is unattackable.
                paths.append(None)
                restricted.append(0)
                intervals.append({})
                n_failed += 1
                continue
            leaf = int(rng.choice(candidates))
            path = self._attack.cached_path(leaf)
            paths.append(path)
            restricted.append(int(candidates.size))
            bounds = self._attack.infer_intervals(
                path, low=self.interval_low, high=self.interval_high
            )
            intervals.append(bounds)
            for feature, (low, high) in bounds.items():
                x_hat[i, position[int(feature)]] = 0.5 * (low + high)
        return AttackResult(
            x_target_hat=x_hat,
            view=view,
            info={
                "selected_paths": paths,
                "n_paths_restricted": restricted,
                "n_paths_total": int(self.structure.n_prediction_paths()),
                "intervals": intervals,
                "n_failed": n_failed,
                "n_predictions_used": int(x_adv.shape[0]),
            },
        )


@ATTACKS.register("grna")
class GrnaScenarioAttack(ScenarioAttack):
    """Generative Regression Network Attack (§V) behind the unified protocol.

    Differentiable models (LR, NN) are attacked directly; random forests
    are distilled into a neural surrogate first (§V-B), with the
    distillation budget taken from the scenario's scale. Keyword
    parameters override the scale-derived generator hyper-parameters.
    """

    name = "grna"
    compatible_models = ("lr", "nn", "rf")
    constraint = (
        "GRNA back-propagates through the released model: LR and NN are "
        "differentiable, a random forest is distilled into a neural "
        "surrogate first; a single decision tree has no distillation path "
        "in the paper"
    )

    def __init__(self, **params: Any) -> None:
        self.params = params
        self._model = None
        self._view = None
        self._scale: ScaleConfig | None = None
        self._seed = 0
        self._tracer = None
        self.distiller_: RandomForestDistiller | None = None

    def prepare(self, scenario, *, scale=None, seed: int = 0) -> "GrnaScenarioAttack":
        if scale is None:
            # A VFLScenario does not carry its scale, and the DEFAULT
            # preset's generator/distiller budget would be silently
            # mismatched to however the scenario was actually built.
            raise ScenarioError(
                "GRNA derives its generator (and RF-distiller) budget from "
                "the scenario's scale; pass scale=... to prepare()"
            )
        self._scale = get_scale(scale)
        self._model = released_model(scenario)
        self._view = scenario.view
        self._seed = int(seed)
        # Traced scenarios report generator training (grna.epoch) into
        # the same tracer the serving/federation layers feed.
        self._tracer = getattr(scenario, "tracer", None)
        return self

    def run(self, x_adv: np.ndarray, v: np.ndarray) -> AttackResult:
        if self._model is None:
            raise AttackError("attack not prepared; call prepare(scenario) first")
        scale = self._scale
        # Historical three-stream split (generator / distiller / dummy);
        # prefix-stable with the older two- and one-stream spawns, and
        # re-derived per call so run() is idempotent.
        grna_rng, distill_rng, dummy_rng = spawn_rngs(self._seed + 1, 3)
        kwargs = {**grna_kwargs_from_scale(scale, grna_rng), **self.params}
        if self._tracer is not None:
            kwargs.setdefault("tracer", self._tracer)
        if isinstance(self._model, RandomForestClassifier):
            distiller = RandomForestDistiller(
                hidden_sizes=scale.distiller_hidden,
                n_dummy=scale.distiller_dummy,
                epochs=scale.distiller_epochs,
                rng=distill_rng,
            )
            result, self.distiller_ = attack_random_forest(
                self._model,
                self._view,
                x_adv,
                v,
                distiller=distiller,
                grna_kwargs=kwargs,
                rng=dummy_rng,
            )
            return result
        attack = GenerativeRegressionNetwork(self._model, self._view, **kwargs)
        return attack.run(x_adv, v)


class RandomBaselineScenarioAttack(ScenarioAttack):
    """Random-guess baseline (§VI-A) behind the unified protocol."""

    constraint = "guessing needs no model at all"

    def __init__(self, distribution: str = "uniform") -> None:
        self.distribution = distribution
        self.name = f"random_{distribution}"
        self._view = None
        self._seed = 0

    def prepare(self, scenario, *, scale=None, seed: int = 0):
        self._view = scenario.view
        self._seed = int(seed)
        return self

    def run(self, x_adv: np.ndarray, v: np.ndarray | None = None) -> AttackResult:
        if self._view is None:
            raise AttackError("attack not prepared; call prepare(scenario) first")
        # Fresh seed-derived stream per call so run() is idempotent.
        return RandomGuessAttack(
            self._view, distribution=self.distribution, rng=self._seed
        ).run(x_adv, v)


ATTACKS.register(
    "random_uniform", partial(RandomBaselineScenarioAttack, distribution="uniform")
)
ATTACKS.register(
    "random_gaussian", partial(RandomBaselineScenarioAttack, distribution="gaussian")
)
