"""Facade re-export of the generic registry.

The :class:`Registry` class itself lives in
:mod:`repro.utils.registry` — the bottom of the layer DAG — so that
low-level subsystems (checkpoint codecs, lint rules) can host
registries without importing upward. This module keeps the historical
import path ``from repro.api.registry import Registry`` working for the
facade's public surface and every existing call site.
"""

from __future__ import annotations

from repro.utils.registry import Registry

__all__ = ["Registry"]
