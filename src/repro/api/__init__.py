"""Unified scenario API: registries, composable defenses, one-call attacks.

The paper's evaluation is a grid — {ESA, PRA, GRNA} × {LR, NN, DT, RF} ×
{rounding, noise, screening, verification} × datasets — and this package
exposes every cell of it (plus combinations the paper never ran) through
four string-keyed registries and a facade::

    from repro.api import ScenarioConfig, run_scenario

    report = run_scenario(ScenarioConfig(
        dataset="credit", model="rf", attack="grna",
        defenses=["rounding"], target_fraction=0.3,
        scale="smoke", seed=42, baselines=("uniform",),
    ))
    print(report.metrics)

Layers (lowest first):

- :mod:`repro.api.registry` — the generic :class:`Registry` with
  choices-listing unknown-key errors;
- :mod:`repro.api.datasets` / :mod:`repro.api.models` — ``DATASETS`` and
  ``MODELS`` keyed as in Table II and the model grid;
- :mod:`repro.api.defenses` — the composable :class:`DefenseStack`
  (``wrap``/``screen``/``release_mask`` hooks) and the ``DEFENSES``
  registry;
- :mod:`repro.api.attacks` — the unified :class:`ScenarioAttack`
  protocol (``prepare(scenario)`` / ``run(x_adv, v) -> AttackResult``)
  and the ``ATTACKS`` registry;
- :mod:`repro.api.scenario` — :func:`run_scenario` tying it together,
  serving every deployment through a metered
  :class:`~repro.serving.PredictionService`
  (``ScenarioConfig(query_budget=..., batch_size=..., cache=...)``) so
  each :class:`ScenarioReport` states its ``queries_used``;
- :mod:`repro.api.resume` — :func:`run_scenario_resumable`, the
  suspend/resume wrapper: snapshots the serving accumulation and GRNA's
  training loop into a run directory so a killed scenario finishes
  bit-identically on the next call (``repro-ckpt resume`` on the
  command line).

Invalid combinations (ESA on a tree, verification on an NN, ...) raise
:class:`~repro.exceptions.IncompatibleScenarioError` naming the violated
constraint. The experiment runners in :mod:`repro.experiments` consume
this facade; its seed schedule reproduces their historical outputs
bit-for-bit.
"""

from repro.api.registry import Registry
from repro.api.datasets import DATASETS, get_dataset_spec, load
from repro.api.models import MODELS, MODEL_KINDS, make_model
from repro.api.defenses import DEFENSES, Defense, DefenseStack, unwrap_model
from repro.api.attacks import (
    ATTACKS,
    EsaScenarioAttack,
    GrnaScenarioAttack,
    PraScenarioAttack,
    RandomBaselineScenarioAttack,
    ScenarioAttack,
    grna_kwargs_from_scale,
    released_model,
)
from repro.api.scenario import (
    ScenarioConfig,
    ScenarioReport,
    VFLScenario,
    build_scenario,
    run_scenario,
)
from repro.api.resume import run_scenario_resumable
from repro.serving import PredictionService, QueryBudgetExceededError, QueryLedger
from repro.federation import (
    CommBudgetExceededError,
    CommLedger,
    FederationRuntime,
    TopologyConfig,
)

__all__ = [
    "Registry",
    "DATASETS",
    "MODELS",
    "MODEL_KINDS",
    "DEFENSES",
    "ATTACKS",
    "get_dataset_spec",
    "load",
    "make_model",
    "Defense",
    "DefenseStack",
    "unwrap_model",
    "ScenarioAttack",
    "EsaScenarioAttack",
    "PraScenarioAttack",
    "GrnaScenarioAttack",
    "RandomBaselineScenarioAttack",
    "grna_kwargs_from_scale",
    "released_model",
    "ScenarioConfig",
    "ScenarioReport",
    "VFLScenario",
    "build_scenario",
    "run_scenario",
    "run_scenario_resumable",
    "PredictionService",
    "QueryBudgetExceededError",
    "QueryLedger",
    "FederationRuntime",
    "CommLedger",
    "CommBudgetExceededError",
    "TopologyConfig",
]
