"""The one-call scenario facade: ``run_scenario(ScenarioConfig) -> ScenarioReport``.

Every cell of the paper's evaluation grid — {ESA, PRA, GRNA} × {LR, NN,
DT, RF} × defenses × datasets (§VI–VII) — follows one skeleton: load a
dataset, split it into a training half and a prediction pool, assign a
fraction of the features to the attack target, train the VFL model
centrally, serve the prediction pool through the (possibly defended)
protocol, attack the accumulated outputs, and score the reconstruction.
:func:`run_scenario` packages that skeleton behind the string-keyed
registries, so any grid cell — including combinations the paper never ran
— is one call::

    from repro.api import ScenarioConfig, run_scenario

    report = run_scenario(ScenarioConfig(
        dataset="bank", model="lr", attack="esa",
        defenses=[("rounding", {"digits": 3})],
        target_fraction=0.4, scale="smoke", seed=0,
        baselines=("uniform",),
    ))
    print(report.metrics["mse"], report.metrics["rg_uniform_mse"])

Determinism contract: a report depends only on ``(config, scale)``.
The seed schedule (four spawned streams for data/partition/model/pick,
a fifth for defenses, attack streams per
:mod:`repro.api.attacks`, baselines seeded with the raw scenario seed)
replicates the historical experiment runners bit-for-bit, which is what
lets :mod:`repro.experiments.figures` run on this facade without
changing a single published number.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api.attacks import ATTACKS, ScenarioAttack
from repro.api.datasets import DATASETS
from repro.api.defenses import Defense, DefenseStack, unwrap_model
from repro.api.models import MODELS, make_model
from repro.attacks import AttackResult, RandomGuessAttack, random_path
from repro.checkpoint import CheckpointPlan
from repro.config import ScaleConfig, get_scale
from repro.datasets import Dataset, load_dataset
from repro.exceptions import IncompatibleScenarioError, ScenarioError
from repro.federated import (
    AdversaryView,
    FeaturePartition,
    VerticalFLModel,
    train_vertical_model,
)
from repro.federation import SCHEDULERS, FederationRuntime, TopologyConfig
from repro.metrics import aggregate_cbr, mse_per_feature, path_cbr, reconstruction_cbr
from repro.models import BaseClassifier
from repro.nn.data import train_test_split
from repro.resilience import DEGRADATIONS, BreakerPolicy, RetryPolicy
from repro.serving import PredictionService
from repro.telemetry import TRACE_SINKS, make_tracer
from repro.utils.random import check_random_state, spawn_rngs

__all__ = [
    "ScenarioConfig",
    "ScenarioReport",
    "VFLScenario",
    "build_scenario",
    "run_scenario",
]

#: Baseline names accepted by :attr:`ScenarioConfig.baselines`.
BASELINES = ("uniform", "gaussian", "path")


def _check_comm_budget(value: "int | float | None") -> None:
    """Shared validation for the ``comm_budget`` knob.

    ``None`` is unmetered, an ``int`` is absolute bytes (positive), a
    ``float`` is a fraction in ``(0, 1]`` of the accumulation's exact
    projected traffic. One helper for both the config validator and
    direct :func:`build_scenario` callers, so the two paths cannot
    drift.
    """
    if value is None:
        return
    if isinstance(value, float):
        if not 0.0 < value <= 1.0:
            raise ScenarioError(
                f"a fractional comm_budget must lie in (0, 1], got {value}"
            )
    elif not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ScenarioError(
            "comm_budget must be positive bytes (int), a fraction in "
            f"(0, 1], or None, got {value!r}"
        )


def _check_quorum_spec(value: "int | float | None") -> None:
    """Shape-only validation for the ``quorum`` knob.

    ``None`` fails fast on any lost party, an ``int`` is an absolute
    surviving-party count, a ``float`` is a fraction in ``(0, 1]`` of the
    deployment's parties. The *upper* bound of an integer quorum depends
    on the topology's party count, which only exists once the scenario is
    built — :class:`~repro.federation.FederationRuntime` enforces it
    there; this helper catches the shape errors early.
    """
    if value is None:
        return
    if isinstance(value, bool):
        raise ScenarioError(f"quorum {value!r} is not a party count or fraction")
    if isinstance(value, float):
        if not 0.0 < value <= 1.0:
            raise ScenarioError(
                f"a fractional quorum must lie in (0, 1], got {value}"
            )
    elif not isinstance(value, int) or value < 1:
        raise ScenarioError(
            "quorum must be a positive party count (int), a fraction in "
            f"(0, 1], or None, got {value!r}"
        )


def _check_telemetry_spec(value: "bool | dict | None") -> None:
    """Shape validation for the ``telemetry`` knob.

    ``None``/``False`` disables tracing, ``True`` traces into a memory
    sink, a dict selects the sink (``{"sink": "jsonl", "path": ...,
    "wall": ...}``). Same vocabulary as
    :func:`~repro.telemetry.make_tracer`, validated before any work.
    """
    if value is None or isinstance(value, bool):
        return
    if not isinstance(value, dict):
        raise ScenarioError(
            f"telemetry must be True/False/None or a sink dict, got {value!r}"
        )
    unknown = set(value) - {"sink", "path", "wall"}
    if unknown:
        raise ScenarioError(
            f"unknown telemetry key(s) {sorted(unknown)}; allowed: "
            "sink, path, wall"
        )
    sink = value.get("sink", "memory")
    TRACE_SINKS.get(sink)
    if sink == "jsonl" and not value.get("path"):
        raise ScenarioError("telemetry sink 'jsonl' needs a 'path'")


@dataclass
class VFLScenario:
    """Everything one attack experiment needs.

    Attributes
    ----------
    vfl:
        The served vertical FL model (prediction protocol + parties).
    view:
        Adversary/target column split.
    X_adv, X_target:
        The adversary's own columns and the ground-truth target columns of
        the accumulated prediction samples (``X_target`` is used only for
        scoring).
    V:
        Confidence scores the serving layer revealed for those samples.
    X_pred_full:
        The full-width prediction samples (evaluation only, e.g. for CBR).
    meta:
        Defense bookkeeping (screening report, release mask, ...).
    service:
        The deployment's :class:`~repro.serving.PredictionService` — the
        metered query boundary the accumulated ``V`` came through, and
        the attack's only route to further predictions or the released
        model.
    runtime:
        The deployment's :class:`~repro.federation.FederationRuntime` —
        the message-passing protocol the service drives; its
        :class:`~repro.federation.CommLedger` holds the scenario's
        communication cost.
    tracer:
        The deployment's :class:`~repro.telemetry.Tracer`, shared by the
        service, the runtime, and any attack prepared on this scenario.
        ``None`` when the scenario was built without telemetry.
    """

    dataset: Dataset
    model: BaseClassifier
    vfl: VerticalFLModel
    view: AdversaryView
    X_adv: np.ndarray
    X_target: np.ndarray
    V: np.ndarray
    X_pred_full: np.ndarray
    y_pred: np.ndarray
    meta: dict[str, Any] = field(default_factory=dict)
    service: "PredictionService | None" = None
    runtime: "FederationRuntime | None" = None
    tracer: Any = None


def build_scenario(
    dataset_name: str,
    model_kind: str,
    target_fraction: float,
    scale: ScaleConfig,
    seed: int,
    *,
    n_predictions: int | None = None,
    dropout: float = 0.0,
    model_wrapper=None,
    model_params: dict[str, Any] | None = None,
    defense_stack: DefenseStack | None = None,
    query_budget: int | None = None,
    batch_size: int | None = None,
    cache: bool = False,
    cache_size: int | None = None,
    on_budget_exhausted: str = "raise",
    consumer: str = "scenario",
    topology: TopologyConfig | None = None,
    comm_budget: "int | float | None" = None,
    scheduler: str = "sequential",
    checkpoint: "CheckpointPlan | None" = None,
    retry: "RetryPolicy | int | dict | None" = None,
    quorum: "int | float | None" = None,
    degradation: str = "zero_fill",
    breaker: "BreakerPolicy | int | dict | None" = None,
    tracer=None,
) -> VFLScenario:
    """Construct one complete attack scenario.

    Parameters
    ----------
    dataset_name:
        A Table II dataset name.
    model_kind:
        ``"lr"``, ``"nn"``, ``"dt"``, or ``"rf"``.
    target_fraction:
        Fraction of features assigned to the attack target.
    scale, seed:
        Size preset and master seed (each sub-component gets an
        independent derived stream).
    n_predictions:
        Override the number of accumulated predictions.
    dropout:
        Dropout probability for the NN model (Fig. 11e-f countermeasure).
    model_wrapper:
        Legacy hook: optional callable applied to the fitted model before
        serving. Prefer ``defense_stack``.
    model_params:
        Extra keyword overrides for the model builder.
    defense_stack:
        Composable §VII defenses: screening runs before training, output
        wrappers before serving, online hooks while serving, verification
        after prediction. When no stack is given the construction path
        (and its random-stream consumption) is identical to the
        historical undefended skeleton.
    query_budget, batch_size, cache, cache_size, on_budget_exhausted:
        Serving-layer knobs, forwarded to the deployment's
        :class:`~repro.serving.PredictionService`: an optional cap on
        chargeable prediction queries, the per-protocol-round batch
        size, response memoization by sample hash (``cache_size``
        bounds the memo as an LRU; ``None`` keeps it unbounded, the
        historical behavior), and whether an exhausted budget raises
        (:class:`~repro.exceptions.QueryBudgetExceededError`) or
        truncates the accumulated pool. The defaults (unlimited, one
        round, no cache) accumulate bit-identically to the historical
        direct ``vfl.predict`` path.
    consumer:
        Ledger name the accumulation is charged to (the facade passes
        the attack's registry key).
    topology:
        Party layout (:class:`~repro.federation.TopologyConfig`):
        N-party feature apportionment, colluders joining the adversary
        view, and injected faults. ``None`` (and the default config) is
        the paper's two-block setting, bit-identical to the historical
        partition draw.
    comm_budget:
        Byte budget on the federation runtime's
        :class:`~repro.federation.CommLedger`. An ``int`` is absolute
        bytes; a ``float`` in ``(0, 1]`` is resolved against
        :meth:`~repro.federation.FederationRuntime.estimate_predict_bytes`
        for this scenario's accumulation (so ``0.5`` means "half the
        traffic the undefended accumulation needs"), floored at the
        first protocol round's cost so a fraction always yields an
        attackable pool. Exhaustion follows
        ``on_budget_exhausted``: raise
        :class:`~repro.exceptions.CommBudgetExceededError`, or truncate
        the pool at the last affordable protocol round.
    scheduler:
        Federation round scheduler (``"sequential"``/``"threaded"``);
        both are bit-identical, threading overlaps party work.
    checkpoint:
        A :class:`~repro.checkpoint.CheckpointPlan` for the
        accumulation: each served protocol round ends with a snapshot
        (accumulated rows, query ledger, response caches, comm ledger),
        and a rebuilt scenario resumes the accumulation from the plan's
        latest snapshot bit-identically. Forwarded to
        :meth:`~repro.serving.PredictionService.query`; incompatible
        with a non-empty ``defense_stack`` (per-defense tallies are not
        snapshotted).
    retry, quorum, degradation:
        Resilience knobs forwarded to the
        :class:`~repro.federation.FederationRuntime`. ``retry`` (a
        :class:`~repro.resilience.RetryPolicy`, an int attempt count, or
        a payload dict) engages the resilient exchange: failed parties
        are retried with metered request frames, seeded backoff accrues
        on a simulated clock, and slow replies become metered timeouts.
        ``quorum`` (int party count or float fraction) lets a round
        proceed degraded when enough parties survive, imputing the
        missing blocks via the ``degradation`` strategy
        (:data:`~repro.resilience.DEGRADATIONS`). All ``None``/default
        keeps the legacy fail-fast exchange bit-identical.
    breaker:
        Per-consumer circuit-breaker policy for the deployment's
        :class:`~repro.serving.PredictionService` (a
        :class:`~repro.resilience.BreakerPolicy`, an int failure
        threshold, or a payload dict). Runtime failures trip the
        breaker into refusing queries
        (:class:`~repro.exceptions.ServiceUnavailableError`) until a
        half-open probe succeeds. ``None`` disables breakers.
    tracer:
        Optional :class:`~repro.telemetry.Tracer`, attached to both the
        federation runtime (round/retry/degradation records) and the
        serving layer (query/chunk/breaker records). ``None`` (default)
        leaves every byte of the untraced construction untouched.
    """
    n_streams = 4 if defense_stack is None or not len(defense_stack) else 5
    streams = spawn_rngs(seed, n_streams)
    data_rng, part_rng, model_rng, pick_rng = streams[:4]
    defense_rng = streams[4] if n_streams == 5 else None

    dataset = load_dataset(dataset_name, n_samples=scale.n_samples, rng=data_rng)
    X, y = dataset.X, dataset.y
    if (
        topology is not None
        and not topology.is_default_partition
        and defense_stack is not None
        and any(type(d).screen is not Defense.screen for d in defense_stack)
    ):
        raise IncompatibleScenarioError(
            "screening defenses rebuild the partition as the two-block "
            "adversary view, which would silently discard a non-default "
            "party topology; run screening on the default 2-party layout"
        )
    if topology is None or topology.is_default_partition:
        # The historical two-block draw, bit-for-bit (from_topology
        # reduces to it, but the seed path stays textually untouched).
        partition = FeaturePartition.adversary_target(
            dataset.n_features, target_fraction, rng=part_rng
        )
    else:
        topology.validate()
        partition = FeaturePartition.from_topology(
            dataset.n_features,
            target_fraction,
            n_parties=topology.n_parties,
            colluders=topology.colluders,
            strategy=topology.partition,
            rng=part_rng,
            **topology.partition_params,
        )
    colluders = () if topology is None else tuple(topology.colluders)
    view = partition.adversary_view(colluders)
    meta: dict[str, Any] = {}
    if defense_rng is not None:
        X, partition, view, meta = defense_stack.screen(
            X, y, partition, view, dataset.n_classes
        )
    X_train, X_pool, y_train, y_pool = train_test_split(
        X, y, test_fraction=0.5, rng=data_rng
    )

    overrides = dict(model_params or {})
    model = make_model(
        model_kind,
        scale,
        model_rng,
        dropout=overrides.pop("dropout", dropout),
        **overrides,
    )
    vfl = train_vertical_model(model, X_train, y_train, X_pool, y_pool, partition)
    if model_wrapper is not None:
        vfl.model = model_wrapper(model)
    if defense_rng is not None:
        vfl.model = defense_stack.wrap(vfl.model, rng=defense_rng)

    n_pred = scale.n_predictions if n_predictions is None else int(n_predictions)
    n_pred = min(n_pred, X_pool.shape[0])
    picked = check_random_state(pick_rng).choice(
        X_pool.shape[0], size=n_pred, replace=False
    )
    runtime = FederationRuntime(
        vfl,
        scheduler=scheduler,
        faults=None if topology is None else topology.fault_plan(),
        retry=retry,
        quorum=quorum,
        degradation=degradation,
        tracer=tracer,
    )
    _check_comm_budget(comm_budget)
    if comm_budget is not None:
        if isinstance(comm_budget, float):
            # A fractional budget prices this very accumulation: 1.0 is
            # exactly the undefended run's projected wire bytes. Floored
            # at the first round's cost — a fraction asks for a *portion*
            # of the pool, and a budget below one round serves nothing;
            # use absolute bytes to study that regime.
            total = runtime.estimate_predict_bytes(n_pred, max_batch=batch_size)
            per_round = (
                total
                if batch_size is None
                else runtime.estimate_predict_bytes(
                    min(n_pred, int(batch_size)), max_batch=batch_size
                )
            )
            runtime.ledger.byte_budget = max(
                int(np.ceil(comm_budget * total)), per_round
            )
        else:
            runtime.ledger.byte_budget = int(comm_budget)
    service = PredictionService(
        vfl,
        runtime=runtime,
        defense_stack=defense_stack,
        query_budget=query_budget,
        max_batch=batch_size,
        cache=cache,
        cache_size=cache_size,
        rng=defense_rng,
        exhaustion=on_budget_exhausted,
        breaker=breaker,
        tracer=tracer,
    )
    try:
        V = service.query(picked, consumer=consumer, checkpoint=checkpoint)
    finally:
        # Release any threaded-scheduler workers now that the bulk
        # accumulation is done; a later query through the retained
        # service lazily recreates the pool, so sweeps that keep many
        # reports alive do not pin one idle executor per scenario.
        runtime.close()
    if V.shape[0] == 0:
        raise ScenarioError(
            "the deployment's budgets (query or communication) allowed no "
            "predictions at all; nothing to attack"
        )
    if V.shape[0] < picked.size:
        # Truncate mode: the budget bound mid-accumulation; the scenario
        # holds exactly the predictions the adversary could afford.
        picked = picked[: V.shape[0]]
    X_pred_full = X_pool[picked]
    X_adv, X_target = view.split(X_pred_full)
    scenario = VFLScenario(
        dataset=dataset,
        model=vfl.model,
        vfl=vfl,
        view=view,
        X_adv=X_adv,
        X_target=X_target,
        V=V,
        X_pred_full=X_pred_full,
        y_pred=y_pool[picked],
        meta=meta,
        service=service,
        runtime=runtime,
        tracer=tracer,
    )
    if defense_rng is not None:
        scenario = defense_stack.apply_release_filter(scenario)
    return scenario


@dataclass
class ScenarioConfig:
    """Declarative description of one grid cell.

    All component fields are registry keys — see
    :data:`~repro.api.attacks.ATTACKS`, :data:`~repro.api.models.MODELS`,
    :data:`~repro.api.datasets.DATASETS`, and
    :data:`~repro.api.defenses.DEFENSES` — so a config is fully
    serializable and any typo fails fast with the valid choices listed.

    The serving knobs meter the deployment's
    :class:`~repro.serving.PredictionService`: ``query_budget`` caps how
    many predictions the attack may accumulate (``None`` = unlimited, the
    bit-identical historical default), ``batch_size`` bounds each
    protocol round, ``cache`` memoizes responses by sample hash
    (``cache_size`` caps the memo as an LRU with eviction accounting;
    ``None`` keeps it unbounded), and
    ``on_budget_exhausted`` chooses between a clean
    :class:`~repro.exceptions.QueryBudgetExceededError` (``"raise"``) and
    attacking whatever prefix the budget allowed (``"truncate"``).

    The federation knobs shape the protocol underneath the service:
    ``topology`` (a :class:`~repro.federation.TopologyConfig`) sets the
    party count, colluders, column-apportionment strategy, and injected
    faults; ``comm_budget`` caps the wire bytes the protocol may move
    (absolute ``int`` bytes, or a ``float`` fraction of the undefended
    accumulation's exact projected traffic); ``scheduler`` picks
    sequential or threaded round execution (bit-identical either way).
    The defaults — two-block topology, no budget, sequential — reproduce
    the historical scenario bit-for-bit.

    The resilience knobs make the deployment survive a fault storm
    instead of aborting on it: ``retry`` (int attempts or a
    :class:`~repro.resilience.RetryPolicy` payload dict) re-requests
    failed parties with seeded backoff on a simulated clock, ``quorum``
    (int party count or float fraction) lets rounds proceed degraded
    with missing blocks imputed by the ``degradation`` strategy, and
    ``breaker`` (int failure threshold or a policy dict) makes the
    serving layer refuse a consumer's queries after consecutive runtime
    failures instead of burning protocol rounds. All-``None``/default
    resilience knobs leave every byte of the historical scenario
    untouched.

    ``telemetry`` opts the deployment into the observability layer:
    ``True`` traces into a memory sink, a dict selects the sink
    (``{"sink": "jsonl", "path": ..., "wall": ...}`` — see
    :func:`~repro.telemetry.make_tracer`). Traced record content is
    deterministic (wall-clock durations ride a quarantined field); the
    default ``None`` runs byte-identically to an untraced scenario and
    leaves :attr:`ScenarioReport.telemetry` empty.
    """

    dataset: str
    model: str
    attack: str
    defenses: tuple = ()
    target_fraction: float = 0.3
    n_predictions: int | None = None
    scale: "str | ScaleConfig" = "smoke"
    seed: int = 0
    model_params: dict[str, Any] = field(default_factory=dict)
    attack_params: dict[str, Any] = field(default_factory=dict)
    baselines: tuple[str, ...] = ()
    compute_cbr: bool = False
    query_budget: int | None = None
    batch_size: int | None = None
    cache: bool = False
    cache_size: int | None = None
    on_budget_exhausted: str = "raise"
    topology: "TopologyConfig | None" = None
    comm_budget: "int | float | None" = None
    scheduler: str = "sequential"
    retry: "int | dict | None" = None
    quorum: "int | float | None" = None
    degradation: str = "zero_fill"
    breaker: "int | dict | None" = None
    telemetry: "bool | dict | None" = None


@dataclass
class ScenarioReport:
    """Outcome of one :func:`run_scenario` call.

    Attributes
    ----------
    config:
        The config that produced this report.
    scenario:
        The built scenario (model, view, accumulated predictions, ground
        truth) for downstream analysis. ``None`` on a report restored
        from JSON — array-heavy state is not persisted.
    result:
        The attack's :class:`~repro.attacks.base.AttackResult`
        (``None`` on a restored report).
    metrics:
        Scored outcomes: ``"mse"`` whenever the attack produced point
        estimates, ``"pra_cbr"``/``"restricted_fractions"`` for PRA,
        ``"cbr"`` when ``compute_cbr`` was requested on a tree model, and
        one ``"rg_<name>_..."`` entry per requested baseline.
    queries_used:
        Chargeable prediction queries the deployment's ledger recorded
        for this scenario — what the attack *cost* at the serving
        boundary.
    comm_cost:
        Snapshot of the federation runtime's
        :class:`~repro.federation.CommLedger` (total ``bytes``,
        ``messages``, ``rounds``, per-edge breakdown) — what the attack
        cost at the *protocol* boundary. Empty for reports whose
        scenario never ran a federation protocol (e.g. prebuilt legacy
        scenarios).
    availability:
        The runtime's
        :meth:`~repro.federation.FederationRuntime.availability_report`:
        degraded-round log plus retry/timeout counts and simulated
        seconds. Empty whenever the resilient exchange never engaged
        (no ``retry``/``quorum`` knob and no stochastic faults) — its
        presence is itself the signal that the deployment weathered a
        storm.
    telemetry:
        The tracer's :meth:`~repro.telemetry.Tracer.summary` — records
        emitted, per-kind counts, named counters, last simulated-clock
        reading. Deterministic, so two runs of one config agree on it
        bit-for-bit. Empty when the config's ``telemetry`` knob was off.
    """

    config: ScenarioConfig
    scenario: "VFLScenario | None"
    result: "AttackResult | None"
    metrics: dict[str, Any]
    queries_used: int = 0
    comm_cost: dict[str, Any] = field(default_factory=dict)
    availability: dict[str, Any] = field(default_factory=dict)
    telemetry: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        """One-paragraph human-readable digest (used by the examples)."""
        details = []
        if self.scenario is not None:
            details.append(f"d_target={self.scenario.view.d_target}")
        details.append(f"defenses={list(self.config.defenses) or 'none'}")
        details.append(f"queries={self.queries_used}")
        if self.comm_cost:
            details.append(f"comm_bytes={self.comm_cost.get('bytes', 0)}")
        parts = [
            f"{self.config.attack} on {self.config.model}/{self.config.dataset}"
            f" ({', '.join(details)})"
        ]
        for key in sorted(self.metrics):
            value = self.metrics[key]
            if isinstance(value, float):
                parts.append(f"{key}={value:.4f}")
        return "; ".join(parts)

    # ------------------------------------------------------------------
    # Persistence (JSONL-store friendly)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """JSON-ready dict: config + metrics + queries_used.

        Drops the array-heavy ``scenario``/``result`` state; what
        remains is exactly what a results store needs to identify and
        compare grid cells, and it slots directly into a
        :class:`~repro.experiments.store.RunSummary` payload.
        """
        config = self.config
        return {
            "config": {
                "dataset": config.dataset,
                "model": config.model,
                "attack": config.attack,
                "defenses": [_encode_defense_spec(s) for s in config.defenses],
                "target_fraction": config.target_fraction,
                "n_predictions": config.n_predictions,
                "scale": _encode_scale(config.scale),
                "seed": config.seed,
                "model_params": dict(config.model_params),
                "attack_params": dict(config.attack_params),
                "baselines": list(config.baselines),
                "compute_cbr": config.compute_cbr,
                "query_budget": config.query_budget,
                "batch_size": config.batch_size,
                "cache": config.cache,
                "cache_size": config.cache_size,
                "on_budget_exhausted": config.on_budget_exhausted,
                "topology": (
                    None if config.topology is None else config.topology.to_payload()
                ),
                "comm_budget": config.comm_budget,
                "scheduler": config.scheduler,
                "retry": config.retry,
                "quorum": config.quorum,
                "degradation": config.degradation,
                "breaker": config.breaker,
                "telemetry": config.telemetry,
            },
            "metrics": self.metrics,
            "queries_used": self.queries_used,
            "comm_cost": dict(self.comm_cost),
            "availability": dict(self.availability),
            "telemetry": dict(self.telemetry),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ScenarioReport":
        """Rebuild a report from :meth:`to_payload` output.

        Specs are normalized to tuples (JSON has no tuple type), so a
        round-tripped config compares equal to one declared with the
        canonical tuple syntax.
        """
        data = dict(payload["config"])
        config = ScenarioConfig(
            dataset=data["dataset"],
            model=data["model"],
            attack=data["attack"],
            defenses=tuple(_decode_defense_spec(s) for s in data["defenses"]),
            target_fraction=data["target_fraction"],
            n_predictions=data["n_predictions"],
            scale=_decode_scale(data["scale"]),
            seed=data["seed"],
            model_params=dict(data["model_params"]),
            attack_params=dict(data["attack_params"]),
            baselines=tuple(data["baselines"]),
            compute_cbr=data["compute_cbr"],
            query_budget=data["query_budget"],
            batch_size=data["batch_size"],
            cache=data["cache"],
            # .get(): payloads persisted before the LRU bound existed
            # carry no cache_size key and mean the unbounded default.
            cache_size=data.get("cache_size"),
            on_budget_exhausted=data["on_budget_exhausted"],
            # .get(): payloads persisted before the federation runtime
            # existed carry none of these keys and mean the defaults.
            topology=(
                None
                if data.get("topology") is None
                else TopologyConfig.from_payload(data["topology"])
            ),
            comm_budget=data.get("comm_budget"),
            scheduler=data.get("scheduler", "sequential"),
            # .get(): payloads persisted before the resilience layer
            # existed carry none of these keys and mean the defaults.
            retry=data.get("retry"),
            quorum=data.get("quorum"),
            degradation=data.get("degradation", "zero_fill"),
            breaker=data.get("breaker"),
            # .get(): payloads persisted before the telemetry layer
            # existed carry no such key and mean tracing off.
            telemetry=data.get("telemetry"),
        )
        return cls(
            config=config,
            scenario=None,
            result=None,
            metrics=dict(payload["metrics"]),
            queries_used=int(payload["queries_used"]),
            comm_cost=dict(payload.get("comm_cost", {})),
            availability=dict(payload.get("availability", {})),
            telemetry=dict(payload.get("telemetry", {})),
        )

    def to_json(self) -> str:
        """Serialize to one JSON line (see :meth:`to_payload`)."""
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "ScenarioReport":
        """Parse a :meth:`to_json` line back into a (storable) report."""
        return cls.from_payload(json.loads(line))


#: ScaleConfig fields that JSON round-trips as lists but the dataclass
#: declares as tuples.
_SCALE_TUPLE_FIELDS = ("fractions", "mlp_hidden", "grna_hidden", "distiller_hidden")


def _encode_scale(scale: "str | ScaleConfig"):
    if isinstance(scale, str):
        return scale
    return dataclasses.asdict(scale)


def _decode_scale(data) -> "str | ScaleConfig":
    if isinstance(data, str):
        return data
    fields = dict(data)
    for name in _SCALE_TUPLE_FIELDS:
        fields[name] = tuple(fields[name])
    return ScaleConfig(**fields)


def _encode_defense_spec(spec):
    if isinstance(spec, str):
        return spec
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        key, params = spec
        return [key, dict(params)]
    raise ScenarioError(
        f"defense spec {spec!r} is not JSON-serializable; use a registry "
        "key or a (key, params) pair in configs meant for persistence"
    )


def _decode_defense_spec(spec):
    if isinstance(spec, str):
        return spec
    key, params = spec
    return (key, dict(params))


def _tree_structures(model: BaseClassifier) -> list:
    """Structures of a tree-based released model (forest → every tree)."""
    base = unwrap_model(model)
    if hasattr(base, "tree_structures"):
        return list(base.tree_structures())
    if hasattr(base, "tree_structure"):
        return [base.tree_structure()]
    raise IncompatibleScenarioError(
        f"compute_cbr needs a tree-based model exposing its structure; "
        f"{type(base).__name__} has none"
    )


def _validate(config: ScenarioConfig, attack: ScenarioAttack, stack: DefenseStack) -> None:
    if attack.compatible_models is not None and config.model not in attack.compatible_models:
        raise IncompatibleScenarioError(
            f"attack {config.attack!r} supports models "
            f"{attack.compatible_models}, not {config.model!r}: "
            f"{attack.constraint}"
        )
    stack.validate_for_model(config.model)
    for name in config.baselines:
        if name not in BASELINES:
            raise ScenarioError(
                f"unknown baseline {name!r}; choose from {list(BASELINES)}"
            )
    if "path" in config.baselines and config.model != "dt":
        raise IncompatibleScenarioError(
            "the 'path' baseline draws random root-to-leaf paths of a "
            f"single decision tree; model {config.model!r} has none"
        )
    if config.compute_cbr and config.model not in ("dt", "rf"):
        raise IncompatibleScenarioError(
            "compute_cbr scores branch agreement on a tree-based model; "
            f"model {config.model!r} has no tree structure"
        )
    if not 0.0 < config.target_fraction < 1.0:
        raise ScenarioError(
            f"target_fraction must lie in (0, 1), got {config.target_fraction}"
        )
    if config.query_budget is not None and config.query_budget < 1:
        raise ScenarioError(
            f"query_budget must be a positive int or None, got {config.query_budget}"
        )
    if config.batch_size is not None and config.batch_size < 1:
        raise ScenarioError(
            f"batch_size must be a positive int or None, got {config.batch_size}"
        )
    if config.cache_size is not None:
        if config.cache_size < 1:
            raise ScenarioError(
                f"cache_size must be a positive int or None, got {config.cache_size}"
            )
        if not config.cache:
            raise ScenarioError(
                "cache_size bounds the response cache and is meaningless "
                "without cache=True"
            )
    if config.on_budget_exhausted not in ("raise", "truncate"):
        raise ScenarioError(
            "on_budget_exhausted must be 'raise' or 'truncate', got "
            f"{config.on_budget_exhausted!r}"
        )
    if config.scheduler not in SCHEDULERS:
        raise ScenarioError(
            f"unknown scheduler {config.scheduler!r}; choose from "
            f"{sorted(SCHEDULERS)}"
        )
    _check_comm_budget(config.comm_budget)
    # from_spec raises with the exact malformed-field message; a quorum
    # integer's upper bound waits for the built topology's party count.
    RetryPolicy.from_spec(config.retry)
    BreakerPolicy.from_spec(config.breaker)
    _check_quorum_spec(config.quorum)
    _check_telemetry_spec(config.telemetry)
    DEGRADATIONS.get(config.degradation)
    if config.topology is not None:
        config.topology.validate()


def _compute_metrics(
    config: ScenarioConfig,
    scenario: VFLScenario,
    result: AttackResult,
) -> dict[str, Any]:
    metrics: dict[str, Any] = {}
    x_hat = result.x_target_hat
    if x_hat is not None:
        metrics["mse"] = float(mse_per_feature(x_hat, scenario.X_target))

    structures = None
    if config.compute_cbr or "path" in config.baselines:
        structures = _tree_structures(scenario.model)

    # PRA path metrics: branch agreement of the selected candidate paths.
    if "selected_paths" in result.info:
        structure = structures[0] if structures else _tree_structures(scenario.model)[0]
        counts = [
            path_cbr(
                structure,
                path,
                scenario.X_pred_full[i],
                scenario.view.target_indices,
            )
            for i, path in enumerate(result.info["selected_paths"])
            if path is not None
        ]
        metrics["pra_cbr"] = float(aggregate_cbr(counts))
        total = result.info["n_paths_total"]
        metrics["restricted_fractions"] = [
            float(n / total) for n in result.info["n_paths_restricted"]
        ]

    # Reconstruction CBR: walk the reconstructed values along the true paths.
    if config.compute_cbr and x_hat is not None:
        full_hat = scenario.view.assemble(scenario.X_adv, x_hat)
        counts = [
            reconstruction_cbr(
                structure,
                scenario.X_pred_full[i],
                full_hat[i],
                scenario.view.target_indices,
            )
            for i in range(scenario.X_pred_full.shape[0])
            for structure in structures
        ]
        metrics["cbr"] = float(aggregate_cbr(counts))

    # Value-guess baselines (each on a fresh stream seeded with the raw
    # scenario seed — the historical schedule).
    for distribution in ("uniform", "gaussian"):
        if distribution not in config.baselines:
            continue
        guess = RandomGuessAttack(
            scenario.view, distribution=distribution, rng=config.seed
        ).run(scenario.X_adv)
        metrics[f"rg_{distribution}_mse"] = float(
            mse_per_feature(guess.x_target_hat, scenario.X_target)
        )
        if config.compute_cbr:
            full_guess = scenario.view.assemble(scenario.X_adv, guess.x_target_hat)
            counts = [
                reconstruction_cbr(
                    structure,
                    scenario.X_pred_full[i],
                    full_guess[i],
                    scenario.view.target_indices,
                )
                for i in range(scenario.X_pred_full.shape[0])
                for structure in structures
            ]
            metrics[f"rg_{distribution}_cbr"] = float(aggregate_cbr(counts))

    # Random-path baseline (second half of PRA's historical seed split).
    if "path" in config.baselines:
        _, guess_rng = spawn_rngs(config.seed, 2)
        structure = structures[0]
        counts = [
            path_cbr(
                structure,
                random_path(structure, guess_rng),
                scenario.X_pred_full[i],
                scenario.view.target_indices,
            )
            for i in range(scenario.X_pred_full.shape[0])
        ]
        metrics["rg_path_cbr"] = float(aggregate_cbr(counts))
    return metrics


def run_scenario(
    config: ScenarioConfig,
    *,
    scenario: VFLScenario | None = None,
    serving_checkpoint: "CheckpointPlan | None" = None,
) -> ScenarioReport:
    """Run one grid cell end to end and score it.

    Resolves every registry key (raising listing errors for typos and
    :class:`~repro.exceptions.IncompatibleScenarioError` for combinations
    that violate an attack/defense constraint), builds the defended
    scenario, executes the attack through the unified protocol, and
    computes the §III-C metrics.

    Parameters
    ----------
    scenario:
        Reuse an already-built scenario instead of building one — the way
        to run several attacks against one deployment without retraining
        it per attack. The caller guarantees the scenario matches the
        config's dataset/model/defenses; the config is still validated,
        but its defenses are *not* re-applied to the prebuilt scenario,
        and the deployment's ledger keeps accumulating across attacks.
        Serving knobs configure a deployment at build time, so a config
        that sets any (``query_budget``/``batch_size``/``cache``/
        ``on_budget_exhausted``) alongside a prebuilt scenario is
        rejected rather than silently unmetered.
    serving_checkpoint:
        A :class:`~repro.checkpoint.CheckpointPlan` for the serving
        accumulation, forwarded to :func:`build_scenario`; the attack's
        own training checkpoint (GRNA) travels in
        ``config.attack_params["checkpoint"]`` instead. Meaningless with
        a prebuilt ``scenario`` (whose accumulation already happened)
        and rejected in that combination.
    """
    scale = get_scale(config.scale)
    DATASETS.get(config.dataset)
    MODELS.get(config.model)
    attack: ScenarioAttack = ATTACKS.create(config.attack, **config.attack_params)
    stack = DefenseStack.from_specs(config.defenses)
    _validate(config, attack, stack)
    if scenario is not None and serving_checkpoint is not None:
        raise ScenarioError(
            "serving_checkpoint snapshots the accumulation while the "
            "scenario is built; a prebuilt scenario has already accumulated"
        )
    if scenario is not None and (
        config.query_budget is not None
        or config.batch_size is not None
        or config.cache
        or config.cache_size is not None
        or config.on_budget_exhausted != "raise"
        or config.topology is not None
        or config.comm_budget is not None
        or config.scheduler != "sequential"
        or config.retry is not None
        or config.quorum is not None
        or config.degradation != "zero_fill"
        or config.breaker is not None
        or config.telemetry is not None
    ):
        raise ScenarioError(
            "serving and federation knobs (query_budget/batch_size/cache/"
            "cache_size/on_budget_exhausted/topology/comm_budget/scheduler/"
            "retry/quorum/degradation/breaker/telemetry) configure the "
            "deployment when the scenario is built and cannot apply to a "
            "prebuilt scenario; set them on build_scenario (or on its "
            "service) instead"
        )

    # A tracer built here is owned here: when an exception (including a
    # CheckpointPause suspension) unwinds past this frame the caller has
    # no handle to it, so close its sink on the way out. Records are
    # fsync'd per emit — nothing is lost, and a resumed run reopens the
    # file in skip-by-seq mode.
    owned_tracer = None
    try:
        if scenario is None:
            owned_tracer = tracer = make_tracer(config.telemetry)

            def build() -> VFLScenario:
                return build_scenario(
                    config.dataset,
                    config.model,
                    config.target_fraction,
                    scale,
                    config.seed,
                    n_predictions=config.n_predictions,
                    model_params=config.model_params,
                    defense_stack=stack if len(stack) else None,
                    query_budget=config.query_budget,
                    batch_size=config.batch_size,
                    cache=config.cache,
                    cache_size=config.cache_size,
                    on_budget_exhausted=config.on_budget_exhausted,
                    consumer=config.attack,
                    topology=config.topology,
                    comm_budget=config.comm_budget,
                    scheduler=config.scheduler,
                    checkpoint=serving_checkpoint,
                    retry=config.retry,
                    quorum=config.quorum,
                    degradation=config.degradation,
                    breaker=config.breaker,
                    tracer=tracer,
                )

            if tracer is None:
                scenario = build()
            else:
                with tracer.span(
                    "scenario.build",
                    dataset=config.dataset,
                    model=config.model,
                    attack=config.attack,
                ) as span:
                    scenario = build()
                    span["predictions"] = int(scenario.V.shape[0])
        attack.prepare(scenario, scale=scale, seed=config.seed)
        result = attack.run(scenario.X_adv, scenario.V)
        metrics = _compute_metrics(config, scenario, result)
    except BaseException:
        if owned_tracer is not None:
            owned_tracer.close()
        raise
    queries_used = (
        scenario.service.ledger.queries_used
        if scenario.service is not None
        else int(scenario.V.shape[0])
    )
    comm_cost = (
        scenario.runtime.ledger.as_dict() if scenario.runtime is not None else {}
    )
    availability = (
        scenario.runtime.availability_report() if scenario.runtime is not None else {}
    )
    # Summarized after the attack ran, so grna.epoch records count too;
    # a prebuilt traced scenario contributes its own tracer.
    tracer = getattr(scenario, "tracer", None)
    return ScenarioReport(
        config=config,
        scenario=scenario,
        result=result,
        metrics=metrics,
        queries_used=queries_used,
        comm_cost=comm_cost,
        availability=availability,
        telemetry=tracer.summary() if tracer is not None else {},
    )
