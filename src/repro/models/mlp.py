"""Multilayer-perceptron classifier (the paper's VFL neural network).

The paper's NN model is "an input layer (size d), an output layer (size c),
and three hidden layers (600, 300, 100 neurons)" (§VI-A); those widths are
the default here, shrinkable for laptop-scale benches. The dropout variant
used as a countermeasure in Fig. 11e-f is enabled with ``dropout > 0``.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import DifferentiableClassifier
from repro.nn.data import iterate_batches
from repro.nn.layers import mlp
from repro.nn.optim import make_optimizer
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.utils.random import check_random_state
from repro.utils.validation import check_in_range, check_positive_int


class MLPClassifier(DifferentiableClassifier):
    """Feed-forward softmax classifier trained with cross-entropy.

    Parameters
    ----------
    hidden_sizes:
        Widths of the hidden layers; paper default ``(600, 300, 100)``.
    dropout:
        Dropout probability applied after each hidden activation. ``0``
        disables dropout (the paper's base model); nonzero reproduces the
        Fig. 11e-f countermeasure.
    optimizer:
        ``"adam"`` (default) or ``"sgd"``.
    """

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (600, 300, 100),
        *,
        lr: float = 1e-3,
        epochs: int = 30,
        batch_size: int = 128,
        dropout: float = 0.0,
        optimizer: str = "adam",
        rng: np.random.Generator | int = 0,
    ) -> None:
        super().__init__()
        self.hidden_sizes = tuple(
            check_positive_int(h, name="hidden size") for h in hidden_sizes
        )
        self.lr = check_in_range(lr, name="lr", low=0.0, inclusive=False)
        self.epochs = check_positive_int(epochs, name="epochs")
        self.batch_size = check_positive_int(batch_size, name="batch_size")
        self.dropout = check_in_range(dropout, name="dropout", low=0.0, high=0.99)
        self.optimizer_name = optimizer
        self.rng = check_random_state(rng)
        self.network_ = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        """Train with mini-batch cross-entropy."""
        X, y = self._validate_fit_inputs(X, y)
        sizes = [self.n_features_, *self.hidden_sizes, self.n_classes_]
        self.network_ = mlp(
            sizes, activation="relu", dropout=self.dropout, init="kaiming", rng=self.rng
        )
        optimizer = make_optimizer(self.optimizer_name, self.network_.parameters(), self.lr)
        self.network_.train()
        for _ in range(self.epochs):
            for xb, yb in iterate_batches((X, y), self.batch_size, rng=self.rng):
                optimizer.zero_grad()
                logits = self.network_(Tensor(xb))
                loss = F.cross_entropy(logits, yb)
                loss.backward()
                optimizer.step()
        self.network_.eval()
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = self._validate_predict_input(X)
        self.network_.eval()
        logits = self.network_(Tensor(X))
        return F.softmax(logits, axis=1).numpy()

    def forward_tensor(self, x: Tensor) -> Tensor:
        """Differentiable confidence scores for GRNA (eval mode: no dropout)."""
        self._check_fitted()
        self.network_.eval()
        return F.softmax(self.network_(x), axis=1)
