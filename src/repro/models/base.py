"""Base classes for the classification models used as VFL targets.

Two capabilities matter to the attacks:

- every model exposes ``predict_proba`` returning the confidence-score
  vector ``v`` the paper's protocol reveals to the active party;
- *differentiable* models additionally expose ``forward_tensor``, a forward
  pass over autodiff tensors, which is what GRNA back-propagates through
  (Algorithm 2, line 9).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.tensor.tensor import Tensor
from repro.utils.validation import check_matrix, check_X_y


class BaseClassifier:
    """Common fit/predict plumbing for every classifier in the library."""

    def __init__(self) -> None:
        self.n_features_: int | None = None
        self.n_classes_: int | None = None

    # ------------------------------------------------------------------
    # Contract
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaseClassifier":
        """Fit the model; must be implemented by subclasses."""
        raise NotImplementedError

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Confidence scores, shape ``(n_samples, n_classes)``; rows sum to 1."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class labels with the highest confidence score."""
        return np.argmax(self.predict_proba(X), axis=1)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(X, y)``."""
        X, y = check_X_y(X, y)
        return float(np.mean(self.predict(X) == y))

    # ------------------------------------------------------------------
    # Validation plumbing
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.n_features_ is None or self.n_classes_ is None:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted; call fit(X, y) first"
            )

    def _validate_fit_inputs(self, X, y) -> tuple[np.ndarray, np.ndarray]:
        X, y = check_X_y(X, y)
        classes = np.unique(y)
        if classes.size < 2:
            raise ValidationError("need at least 2 classes to fit a classifier")
        # Labels are class *indices*: n_classes is max+1 so confidence-vector
        # columns line up across parties even if a subsample happens to miss
        # an intermediate class.
        self.n_features_ = X.shape[1]
        self.n_classes_ = int(classes.max()) + 1
        return X, y

    def _validate_predict_input(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with {self.n_features_}"
            )
        return X


class DifferentiableClassifier(BaseClassifier):
    """A classifier whose prediction function is differentiable end-to-end."""

    def forward_tensor(self, x: Tensor) -> Tensor:
        """Confidence scores as a tensor, preserving the autodiff graph.

        ``x`` has shape ``(n_samples, n_features)``; the result has shape
        ``(n_samples, n_classes)``. Gradients flow back into ``x`` (the
        model's own parameters are treated as constants during an attack).
        """
        raise NotImplementedError
