"""Random-forest classifier: bagged CART trees with vote-fraction confidences.

The paper's RF prediction output is "a vector of confidence scores, where
each element v_k of class k is the fraction of trees that predict k"
(§II-A); :meth:`RandomForestClassifier.predict_proba` implements exactly
that. Defaults follow §VI-A: 100 trees of maximum depth 3.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError
from repro.models.base import BaseClassifier
from repro.models.tree import DecisionTreeClassifier, TreeStructure
from repro.utils.random import check_random_state, spawn_rngs
from repro.utils.validation import check_positive_int


class RandomForestClassifier(BaseClassifier):
    """Bootstrap-aggregated decision trees with majority-vote prediction.

    Parameters
    ----------
    n_trees:
        Number of trees; paper default 100.
    max_depth:
        Per-tree depth cap; paper default 3.
    max_features:
        Features examined per split; ``"sqrt"`` matches standard RF
        practice and decorrelates the trees.
    bootstrap:
        Draw each tree's training set with replacement (size n).
    """

    def __init__(
        self,
        *,
        n_trees: int = 100,
        max_depth: int = 3,
        criterion: str = "gini",
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        min_samples_leaf: int = 1,
        rng: np.random.Generator | int = 0,
    ) -> None:
        super().__init__()
        self.n_trees = check_positive_int(n_trees, name="n_trees")
        self.max_depth = check_positive_int(max_depth, name="max_depth")
        self.criterion = criterion
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.min_samples_leaf = check_positive_int(min_samples_leaf, name="min_samples_leaf")
        self.rng = check_random_state(rng)
        self.trees_: list[DecisionTreeClassifier] = []
        self._stacked: list[tuple] | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit ``n_trees`` independent trees on bootstrap resamples."""
        X, y = self._validate_fit_inputs(X, y)
        n = X.shape[0]
        self.trees_ = []
        self._stacked = None
        rngs = spawn_rngs(self.rng, self.n_trees)
        for tree_rng in rngs:
            if self.bootstrap:
                idx = tree_rng.integers(0, n, size=n)
                Xb, yb = X[idx], y[idx]
                if np.unique(yb).size < 2:
                    # Degenerate resample; fall back to the full data so the
                    # tree still contributes a vote.
                    Xb, yb = X, y
            else:
                Xb, yb = X, y
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                criterion=self.criterion,
                max_features=self.max_features,
                min_samples_leaf=self.min_samples_leaf,
                rng=tree_rng,
            )
            # Trees must agree on the global class count even if a bootstrap
            # sample misses a class.
            tree.fit(Xb, yb)
            if tree.n_classes_ != self.n_classes_:
                tree.n_classes_ = self.n_classes_
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Fraction of trees voting for each class (paper Eqn in §II-A).

        Per tree, every internal node's branch decision is evaluated in
        one contiguous column gather-and-compare (a ``(n, n_internal)``
        bit matrix), and the leaf descent is ``depth`` arithmetic steps
        of ``2i + 1 + bit`` — no per-sample Python walk and no random
        gathers into ``X``. Votes accumulate exactly like the retained
        :meth:`_predict_proba_slow` reference (small exact integer
        counts), so the fractions are bit-identical to seed.
        """
        X = self._validate_predict_input(X)
        if not self.trees_:
            raise NotFittedError("forest has no trees; call fit first")
        n = X.shape[0]
        rows = np.arange(n)
        votes = np.zeros((n, self.n_classes_))
        for is_leaf, leaf_label, depth, feats, thresholds, internal_pos in self._tree_tables():
            node = np.zeros(n, dtype=np.int64)
            if feats.size:
                bits = X[:, feats] > thresholds  # right-branch decisions
                for _ in range(depth):
                    active = ~is_leaf[node]
                    if not active.any():
                        break
                    node = np.where(
                        active, 2 * node + 1 + bits[rows, internal_pos[node]], node
                    )
            votes[rows, leaf_label[node]] += 1.0
        return votes / len(self.trees_)

    def _predict_proba_slow(self, X: np.ndarray) -> np.ndarray:
        """Seed reference: per-tree, per-sample vote loop; kept as oracle."""
        X = self._validate_predict_input(X)
        if not self.trees_:
            raise NotFittedError("forest has no trees; call fit first")
        votes = np.zeros((X.shape[0], self.n_classes_))
        for tree in self.trees_:
            labels = tree._predict_slow(X)
            votes[np.arange(X.shape[0]), labels] += 1.0
        return votes / len(self.trees_)

    def _tree_tables(self) -> list[tuple]:
        """Per-tree decision tables for the vectorized vote kernel."""
        if self._stacked is None:
            tables = []
            for tree in self.trees_:
                s = tree._flat_structure()
                internal = np.flatnonzero(s.exists & ~s.is_leaf)
                internal_pos = np.zeros(s.n_nodes, dtype=np.int64)
                internal_pos[internal] = np.arange(internal.size)
                tables.append(
                    (
                        s.is_leaf,
                        s.leaf_label,
                        s.depth,
                        s.feature[internal],
                        s.threshold[internal],
                        internal_pos,
                    )
                )
            self._stacked = tables
        return self._stacked

    def tree_structures(self) -> list[TreeStructure]:
        """Full-binary-tree exports of every member tree (for CBR metrics)."""
        self._check_fitted()
        return [tree.tree_structure() for tree in self.trees_]
