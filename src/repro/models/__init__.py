"""Classification models used as vertical-FL targets."""

from repro.models.base import BaseClassifier, DifferentiableClassifier
from repro.models.logistic import LogisticRegression
from repro.models.mlp import MLPClassifier
from repro.models.tree import (
    DecisionTreeClassifier,
    TreeStructure,
    entropy_impurity,
    gini_impurity,
)
from repro.models.forest import RandomForestClassifier
from repro.models.distill import RandomForestDistiller
from repro.models.serialization import load_model, save_model

__all__ = [
    "BaseClassifier",
    "DifferentiableClassifier",
    "LogisticRegression",
    "MLPClassifier",
    "DecisionTreeClassifier",
    "TreeStructure",
    "gini_impurity",
    "entropy_impurity",
    "RandomForestClassifier",
    "RandomForestDistiller",
    "save_model",
    "load_model",
]
