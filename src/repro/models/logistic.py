"""Logistic regression: binary (sigmoid) and multinomial (softmax).

This is the model §IV-A's Equality Solving Attack targets, so the internal
parameterization is documented precisely:

- **binary** (``n_classes == 2``): one weight vector ``w ∈ R^d`` and bias
  ``b``; ``P(y=1 | x) = σ(x·w + b)`` and ``v = (1−p, p)`` indexed by class.
- **multinomial** (``n_classes > 2``): per-class weight columns
  ``W ∈ R^{d×c}`` and biases ``b ∈ R^c``; ``v = softmax(x W + b)``.

Both parameterizations are exposed through :meth:`class_weight_matrix`,
which always returns per-class linear weights so the attack code handles
one layout.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.models.base import DifferentiableClassifier
from repro.nn.data import iterate_batches
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.utils.numeric import one_hot, sigmoid, softmax
from repro.utils.random import check_random_state
from repro.utils.validation import check_in_range, check_positive_int


class LogisticRegression(DifferentiableClassifier):
    """L2-regularized logistic regression trained by mini-batch gradient descent.

    Parameters
    ----------
    lr:
        Learning rate.
    epochs:
        Number of passes over the training data.
    batch_size:
        Mini-batch size.
    l2:
        L2 regularization strength (the ``Ω(θ)`` term of Eqn 1).
    rng:
        Seed or generator controlling shuffling and initialization.
    """

    def __init__(
        self,
        *,
        lr: float = 0.5,
        epochs: int = 100,
        batch_size: int = 256,
        l2: float = 1e-4,
        rng: np.random.Generator | int = 0,
    ) -> None:
        super().__init__()
        self.lr = check_in_range(lr, name="lr", low=0.0, inclusive=False)
        self.epochs = check_positive_int(epochs, name="epochs")
        self.batch_size = check_positive_int(batch_size, name="batch_size")
        self.l2 = check_in_range(l2, name="l2", low=0.0)
        self.rng = check_random_state(rng)
        self.coef_: np.ndarray | None = None  # (d,) binary / (d, c) multinomial
        self.intercept_: np.ndarray | None = None  # () binary / (c,) multinomial

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit by full-gradient descent on the regularized log-loss."""
        X, y = self._validate_fit_inputs(X, y)
        if self.n_classes_ == 2:
            self._fit_binary(X, y)
        else:
            self._fit_multinomial(X, y)
        return self

    def _fit_binary(self, X: np.ndarray, y: np.ndarray) -> None:
        d = X.shape[1]
        w = self.rng.normal(0.0, 0.01, size=d)
        b = 0.0
        for _ in range(self.epochs):
            for xb, yb in iterate_batches((X, y), self.batch_size, rng=self.rng):
                p = sigmoid(xb @ w + b)
                err = p - yb  # gradient of mean log-loss w.r.t. logits
                grad_w = xb.T @ err / xb.shape[0] + self.l2 * w
                grad_b = float(err.mean())
                w -= self.lr * grad_w
                b -= self.lr * grad_b
        self.coef_ = w
        self.intercept_ = np.float64(b)

    def _fit_multinomial(self, X: np.ndarray, y: np.ndarray) -> None:
        d, c = X.shape[1], self.n_classes_
        W = self.rng.normal(0.0, 0.01, size=(d, c))
        b = np.zeros(c)
        Y = one_hot(y, c)
        for _ in range(self.epochs):
            for xb, yb in iterate_batches((X, Y), self.batch_size, rng=self.rng):
                P = softmax(xb @ W + b, axis=1)
                err = (P - yb) / xb.shape[0]
                W -= self.lr * (xb.T @ err + self.l2 * W)
                b -= self.lr * err.sum(axis=0)
        self.coef_ = W
        self.intercept_ = b

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw linear scores: ``x·w+b`` (binary) or ``x W + b`` (multinomial)."""
        X = self._validate_predict_input(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = self._validate_predict_input(X)
        if self.n_classes_ == 2:
            p1 = sigmoid(X @ self.coef_ + float(self.intercept_))
            return np.column_stack([1.0 - p1, p1])
        return softmax(X @ self.coef_ + self.intercept_, axis=1)

    def forward_tensor(self, x: Tensor) -> Tensor:
        """Differentiable confidence scores for GRNA."""
        self._check_fitted()
        if self.n_classes_ == 2:
            w = Tensor(self.coef_.reshape(-1, 1))
            logits = x @ w + float(self.intercept_)
            p1 = logits.sigmoid()
            return F.concat([1.0 - p1, p1], axis=1)
        logits = x @ Tensor(self.coef_) + Tensor(self.intercept_)
        return F.softmax(logits, axis=1)

    # ------------------------------------------------------------------
    # Attack-facing parameter views
    # ------------------------------------------------------------------
    def class_weight_matrix(self) -> np.ndarray:
        """Per-class weights as a ``(d, c)`` matrix regardless of arity.

        For the binary model this is ``[zeros, w]`` so that class-``k``
        columns line up with ``predict_proba`` columns (class 0's implicit
        score is 0).
        """
        self._check_fitted()
        if self.n_classes_ == 2:
            return np.column_stack([np.zeros_like(self.coef_), self.coef_])
        return self.coef_.copy()

    def class_intercepts(self) -> np.ndarray:
        """Per-class intercepts as a length-``c`` vector."""
        self._check_fitted()
        if self.n_classes_ == 2:
            return np.array([0.0, float(self.intercept_)])
        return self.intercept_.copy()

    def set_parameters(self, coef: np.ndarray, intercept) -> "LogisticRegression":
        """Install externally trained parameters (used in tests/examples)."""
        coef = np.asarray(coef, dtype=np.float64)
        if coef.ndim == 1:
            self.n_features_ = coef.shape[0]
            self.n_classes_ = 2
            self.coef_ = coef.copy()
            self.intercept_ = np.float64(intercept)
        elif coef.ndim == 2:
            if coef.shape[1] < 2:
                raise ValidationError("multinomial coef needs >= 2 class columns")
            self.n_features_, self.n_classes_ = coef.shape
            self.coef_ = coef.copy()
            intercept = np.asarray(intercept, dtype=np.float64)
            if intercept.shape != (coef.shape[1],):
                raise ValidationError(
                    f"intercept shape {intercept.shape} != ({coef.shape[1]},)"
                )
            self.intercept_ = intercept.copy()
        else:
            raise ValidationError(f"coef must be 1-D or 2-D, got shape {coef.shape}")
        return self
