"""CART decision-tree classifier with a full-binary-tree export.

The Path Restriction Attack (paper §IV-B, Algorithm 1) operates on the
tree laid out as a *full binary tree* indexed so node ``i`` has children
``2i+1`` (taken when ``x[feature] <= threshold``) and ``2i+2``. The
:class:`TreeStructure` produced by :meth:`DecisionTreeClassifier.tree_structure`
is exactly that layout, including padding entries for positions below real
leaves.

Prediction semantics follow the paper: the tree's confidence score is 1 for
the predicted leaf label and 0 elsewhere (§II-A, "the branching operations
are deterministic").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.models.base import BaseClassifier
from repro.utils.numeric import one_hot
from repro.utils.random import check_random_state
from repro.utils.validation import check_positive_int, check_vector


def gini_impurity(counts: np.ndarray) -> np.ndarray:
    """Gini impurity of class-count rows; ``counts`` shape ``(..., c)``."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum(axis=-1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        p = np.where(total > 0, counts / total, 0.0)
    return 1.0 - (p * p).sum(axis=-1)


def entropy_impurity(counts: np.ndarray) -> np.ndarray:
    """Shannon entropy of class-count rows."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum(axis=-1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        p = np.where(total > 0, counts / total, 0.0)
        logp = np.where(p > 0, np.log2(np.where(p > 0, p, 1.0)), 0.0)
    return -(p * logp).sum(axis=-1)


_CRITERIA = {"gini": gini_impurity, "entropy": entropy_impurity}


@dataclass
class _Node:
    """Internal recursive tree node."""

    label: int
    n_samples: int
    depth: int
    feature: int = -1
    threshold: float = float("nan")
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class TreeStructure:
    """Full-binary-tree view of a fitted decision tree.

    Attributes
    ----------
    depth:
        Maximum depth of any real node (root = depth 0).
    n_nodes:
        ``2**(depth+1) - 1`` slots in the full binary tree.
    exists:
        Whether slot ``i`` holds a real tree node.
    is_leaf:
        Whether the real node at slot ``i`` is a leaf.
    feature, threshold:
        Split definition for internal nodes (``-1`` / NaN elsewhere).
    leaf_label:
        Predicted class at leaves (``-1`` elsewhere).
    """

    depth: int
    n_nodes: int
    exists: np.ndarray
    is_leaf: np.ndarray
    feature: np.ndarray
    threshold: np.ndarray
    leaf_label: np.ndarray

    def leaf_indices(self) -> np.ndarray:
        """Slot indices of every real leaf."""
        return np.flatnonzero(self.exists & self.is_leaf)

    def path_to(self, index: int) -> list[int]:
        """Root-to-node slot indices for node ``index``."""
        if not (0 <= index < self.n_nodes) or not self.exists[index]:
            raise ValidationError(f"node {index} does not exist in this tree")
        path = [index]
        while index != 0:
            index = (index - 1) // 2
            path.append(index)
        path.reverse()
        return path

    def prediction_path(self, x: np.ndarray) -> list[int]:
        """Slot indices visited when predicting sample ``x``."""
        x = check_vector(x, name="x")
        path = [0]
        node = 0
        while not self.is_leaf[node]:
            if x[self.feature[node]] <= self.threshold[node]:
                node = 2 * node + 1
            else:
                node = 2 * node + 2
            path.append(node)
        return path

    def predict_one(self, x: np.ndarray) -> int:
        """Leaf label reached by sample ``x``."""
        return int(self.leaf_label[self.prediction_path(x)[-1]])

    def leaf_slots(self, X: np.ndarray) -> np.ndarray:
        """Slot index of the leaf each row of ``X`` reaches (vectorized).

        One frontier-descent step per tree level: every still-active row
        compares its split feature against the node threshold and moves to
        ``2i+1`` / ``2i+2`` in a single ``np.where``, so a batch costs at
        most ``depth`` numpy ops instead of ``n_samples × depth`` Python
        node hops.
        """
        X = np.asarray(X, dtype=np.float64)
        node = np.zeros(X.shape[0], dtype=np.int64)
        rows = np.arange(X.shape[0])
        for _ in range(self.depth):
            active = ~self.is_leaf[node]
            if not active.any():
                break
            # feature is -1 at leaves; the gather is masked out by `active`
            # below, and column -1 is a valid (ignored) numpy index.
            go_left = X[rows, self.feature[node]] <= self.threshold[node]
            node = np.where(active, np.where(go_left, 2 * node + 1, 2 * node + 2), node)
        return node

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Leaf labels for every row of ``X`` via one vectorized leaf pass."""
        return self.leaf_label[self.leaf_slots(X)]

    def n_prediction_paths(self) -> int:
        """Total number of root-to-leaf paths (= number of leaves)."""
        return int(self.leaf_indices().size)


class DecisionTreeClassifier(BaseClassifier):
    """Binary CART tree with axis-aligned threshold splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; paper default 5 for the DT experiments.
    criterion:
        ``"gini"`` (default) or ``"entropy"``.
    min_samples_split / min_samples_leaf:
        Pre-pruning knobs.
    max_features:
        Number of features examined per split: ``None`` for all, ``"sqrt"``,
        or an int. Randomized selection (used by the forest) draws from
        ``rng``.
    """

    def __init__(
        self,
        *,
        max_depth: int = 5,
        criterion: str = "gini",
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        rng: np.random.Generator | int = 0,
    ) -> None:
        super().__init__()
        self.max_depth = check_positive_int(max_depth, name="max_depth")
        if criterion not in _CRITERIA:
            raise ValidationError(
                f"unknown criterion {criterion!r}; choose from {sorted(_CRITERIA)}"
            )
        self.criterion = criterion
        self.min_samples_split = check_positive_int(min_samples_split, name="min_samples_split")
        self.min_samples_leaf = check_positive_int(min_samples_leaf, name="min_samples_leaf")
        self.max_features = max_features
        self.rng = check_random_state(rng)
        self.root_: _Node | None = None
        self._flat: TreeStructure | None = None

    #: Flip to False (per instance or class-wide in tests) to grow with the
    #: retained per-feature scan (`_best_split_slow`); node-for-node equal.
    _fast_split = True

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Grow the tree greedily to ``max_depth``."""
        X, y = self._validate_fit_inputs(X, y)
        self._impurity = _CRITERIA[self.criterion]
        self._n_split_features = self._resolve_max_features(X.shape[1])
        Y = one_hot(y, self.n_classes_)
        self._flat = None
        self.root_ = self._grow(X, y, Y, depth=0)
        return self

    def _resolve_max_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        k = check_positive_int(self.max_features, name="max_features")
        if k > d:
            raise ValidationError(f"max_features={k} exceeds n_features={d}")
        return k

    def _grow(self, X: np.ndarray, y: np.ndarray, Y: np.ndarray, depth: int) -> _Node:
        counts = Y.sum(axis=0)
        label = int(counts.argmax())
        node = _Node(label=label, n_samples=X.shape[0], depth=depth)
        if (
            depth >= self.max_depth
            or X.shape[0] < self.min_samples_split
            or np.count_nonzero(counts) <= 1
        ):
            return node
        split = self._best_split(X, Y)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], Y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], Y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, Y: np.ndarray) -> tuple[int, float] | None:
        """Exhaustive best (feature, threshold) by weighted impurity decrease.

        Sort-based exact search vectorized *across* features: one stable
        column argsort, one cumulative class-count pass, and one gain
        argmax replace the per-feature Python loop. Tie-breaking is
        identical to :meth:`_best_split_slow` (first boundary attaining a
        feature's max gain, first feature attaining the global max, strict
        ``> 1e-12`` improvement), so grown trees are node-for-node equal.
        """
        m, d = X.shape
        # Above the crossover the per-feature scan's larger 2-D reductions
        # amortize its Python loop; below it (the bulk of recursive calls)
        # the cross-feature kernel is several times faster. Both paths are
        # bit-identical, so the dispatch is purely a speed choice.
        if not self._fast_split or m >= 512:
            return self._best_split_slow(X, Y)
        total_counts = Y.sum(axis=0)
        parent_impurity = float(self._impurity(total_counts))
        if self._n_split_features < d:
            features = self.rng.choice(d, size=self._n_split_features, replace=False)
        else:
            features = np.arange(d)
        min_leaf = self.min_samples_leaf
        if m < 2:
            return None
        sizes = np.arange(1, m, dtype=np.int64)  # left size at split position i
        size_valid = (sizes >= min_leaf) & (m - sizes >= min_leaf)
        left_sizes = sizes.astype(np.float64)[None, :]
        right_sizes = m - left_sizes
        c = Y.shape[1]
        # Feature blocks bound the (block, m, c) cumulative-count workspace.
        block = max(1, int(2_000_000 // max(m * c, 1)))
        n_feat = features.shape[0]
        per_gain = np.full(n_feat, -np.inf)
        per_threshold = np.zeros(n_feat)
        for start in range(0, n_feat, block):
            cols = features[start : start + block]
            Xf = X.T[cols]  # (k, m): one contiguous row per candidate feature
            order = np.argsort(Xf, axis=1, kind="stable")
            values = np.take_along_axis(Xf, order, axis=1)
            prefix = np.cumsum(Y[order], axis=1)  # (k, m, c) left counts
            valid = (values[:, :-1] < values[:, 1:]) & size_valid[None, :]
            if not valid.any():
                continue
            left_counts = prefix[:, :-1]
            right_counts = total_counts - left_counts
            weighted = (
                left_sizes * self._impurity(left_counts)
                + right_sizes * self._impurity(right_counts)
            ) / m
            gains = np.where(valid, parent_impurity - weighted, -np.inf)
            pos = gains.argmax(axis=1)  # first max per feature row
            k = np.arange(cols.shape[0])
            per_gain[start : start + block] = gains[k, pos]
            per_threshold[start : start + block] = (
                values[k, pos] + values[k, pos + 1]
            ) / 2.0
        j = int(per_gain.argmax())  # first feature attaining the global max
        if not per_gain[j] > 1e-12:  # require a strictly positive improvement
            return None
        return int(features[j]), float(per_threshold[j])

    def _best_split_slow(self, X: np.ndarray, Y: np.ndarray) -> tuple[int, float] | None:
        """Seed reference: per-feature scan; kept as the fitting oracle."""
        m, d = X.shape
        total_counts = Y.sum(axis=0)
        parent_impurity = float(self._impurity(total_counts))
        if self._n_split_features < d:
            features = self.rng.choice(d, size=self._n_split_features, replace=False)
        else:
            features = np.arange(d)
        return self._best_split_scan(X, Y, features, total_counts, parent_impurity)

    def _best_split_scan(
        self,
        X: np.ndarray,
        Y: np.ndarray,
        features: np.ndarray,
        total_counts: np.ndarray,
        parent_impurity: float,
    ) -> tuple[int, float] | None:
        m = X.shape[0]
        best_gain = 1e-12  # require a strictly positive improvement
        best: tuple[int, float] | None = None
        min_leaf = self.min_samples_leaf
        for j in features:
            order = np.argsort(X[:, j], kind="stable")
            values = X[order, j]
            prefix = np.cumsum(Y[order], axis=0)  # (m, c) left counts after i+1 samples
            # Candidate split after position i (0-based): left size i+1.
            boundaries = np.flatnonzero(values[:-1] < values[1:])
            if boundaries.size == 0:
                continue
            left_sizes = boundaries + 1
            valid = (left_sizes >= min_leaf) & (m - left_sizes >= min_leaf)
            boundaries = boundaries[valid]
            if boundaries.size == 0:
                continue
            left_counts = prefix[boundaries]
            right_counts = total_counts - left_counts
            left_sizes = (boundaries + 1).astype(np.float64)
            right_sizes = m - left_sizes
            weighted = (
                left_sizes * self._impurity(left_counts)
                + right_sizes * self._impurity(right_counts)
            ) / m
            gains = parent_impurity - weighted
            k = int(gains.argmax())
            if gains[k] > best_gain:
                best_gain = float(gains[k])
                i = boundaries[k]
                threshold = float((values[i] + values[i + 1]) / 2.0)
                best = (int(j), threshold)
        return best

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorized frontier descent over the flat tree arrays."""
        X = self._validate_predict_input(X)
        return self._flat_structure().predict_batch(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Deterministic confidences: 1 for the predicted class, 0 elsewhere.

        Derived from a single leaf-index pass: the leaf labels feed the
        one-hot encoding directly instead of traversing the tree twice.
        """
        X = self._validate_predict_input(X)
        labels = self._flat_structure().predict_batch(X)
        return one_hot(labels, self.n_classes_)

    def _predict_slow(self, X: np.ndarray) -> np.ndarray:
        """Seed reference: per-sample node walk; kept as the predict oracle."""
        X = self._validate_predict_input(X)
        if self.root_ is None:
            raise NotFittedError("tree has no root; call fit first")
        out = np.empty(X.shape[0], dtype=np.int64)
        for i, x in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if x[node.feature] <= node.threshold else node.right
            out[i] = node.label
        return out

    def _flat_structure(self) -> TreeStructure:
        """Cached full-binary-tree export backing the vectorized kernels."""
        if self._flat is None:
            self._flat = self.tree_structure()
        return self._flat

    # ------------------------------------------------------------------
    # Structure export (consumed by the Path Restriction Attack)
    # ------------------------------------------------------------------
    def tree_structure(self) -> TreeStructure:
        """Export the fitted tree as full-binary-tree arrays."""
        self._check_fitted()
        if self.root_ is None:
            raise NotFittedError("tree has no root; call fit first")
        depth = self._max_depth_of(self.root_)
        n_nodes = 2 ** (depth + 1) - 1
        structure = TreeStructure(
            depth=depth,
            n_nodes=n_nodes,
            exists=np.zeros(n_nodes, dtype=bool),
            is_leaf=np.zeros(n_nodes, dtype=bool),
            feature=np.full(n_nodes, -1, dtype=np.int64),
            threshold=np.full(n_nodes, np.nan),
            leaf_label=np.full(n_nodes, -1, dtype=np.int64),
        )
        stack = [(self.root_, 0)]
        while stack:
            node, index = stack.pop()
            structure.exists[index] = True
            if node.is_leaf:
                structure.is_leaf[index] = True
                structure.leaf_label[index] = node.label
            else:
                structure.feature[index] = node.feature
                structure.threshold[index] = node.threshold
                stack.append((node.left, 2 * index + 1))
                stack.append((node.right, 2 * index + 2))
        return structure

    def _max_depth_of(self, node: _Node) -> int:
        stack = [(node, 0)]
        depth = 0
        while stack:
            current, d = stack.pop()
            depth = max(depth, d)
            if not current.is_leaf:
                stack.append((current.left, d + 1))
                stack.append((current.right, d + 1))
        return depth

    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        return int(self.tree_structure().leaf_indices().size)
