"""Distilling a random forest into a differentiable neural surrogate.

GRNA needs to back-propagate through the VFL model, but a random forest is
not differentiable. Following §V-B (and Biau et al.'s neural random
forests), the adversary samples *dummy* points from the whole data space,
labels them with the RF's vote-fraction confidences, and fits an MLP to
imitate the forest. The surrogate then substitutes for the RF inside
Algorithm 2.

The paper's surrogate is "another multilayer perceptron with two hidden
layers (2000 and 200 neurons)" (§VI-C).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.models.base import BaseClassifier, DifferentiableClassifier
from repro.nn.data import iterate_batches
from repro.nn.layers import mlp
from repro.nn.optim import make_optimizer
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.utils.random import check_random_state
from repro.utils.validation import check_in_range, check_positive_int


class RandomForestDistiller(DifferentiableClassifier):
    """Train an MLP that imitates a fitted (black-box) classifier.

    Although designed for random forests, any model exposing
    ``predict_proba`` can be distilled, which lets the test-suite check
    surrogate fidelity against closed-form models too.

    Parameters
    ----------
    hidden_sizes:
        Surrogate widths; paper default ``(2000, 200)``.
    n_dummy:
        Number of dummy samples drawn uniformly from ``[0, 1]^d`` (all
        features are min-max normalized into (0, 1) per §VI-A, so the unit
        cube *is* the whole data space).
    loss:
        ``"soft_ce"`` (default) fits soft cross-entropy against the teacher
        confidences; ``"mse"`` regresses them directly.
    """

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (2000, 200),
        *,
        n_dummy: int = 20000,
        lr: float = 1e-3,
        epochs: int = 20,
        batch_size: int = 256,
        loss: str = "soft_ce",
        rng: np.random.Generator | int = 0,
    ) -> None:
        super().__init__()
        self.hidden_sizes = tuple(
            check_positive_int(h, name="hidden size") for h in hidden_sizes
        )
        self.n_dummy = check_positive_int(n_dummy, name="n_dummy")
        self.lr = check_in_range(lr, name="lr", low=0.0, inclusive=False)
        self.epochs = check_positive_int(epochs, name="epochs")
        self.batch_size = check_positive_int(batch_size, name="batch_size")
        if loss not in ("soft_ce", "mse"):
            raise ValidationError(f"loss must be 'soft_ce' or 'mse', got {loss!r}")
        self.loss = loss
        self.rng = check_random_state(rng)
        self.network_ = None
        self.teacher_: BaseClassifier | None = None

    # ------------------------------------------------------------------
    # Distillation (the "fit" of this model is fitting to a teacher)
    # ------------------------------------------------------------------
    def distill(
        self,
        teacher: BaseClassifier,
        n_features: int,
        *,
        extra_inputs: np.ndarray | None = None,
    ) -> "RandomForestDistiller":
        """Fit the surrogate to ``teacher`` on uniform dummy samples.

        Parameters
        ----------
        teacher:
            Fitted model whose ``predict_proba`` supplies soft labels.
        n_features:
            Input dimensionality ``d`` of the teacher.
        extra_inputs:
            Optional additional unlabeled inputs (e.g. the adversary's
            accumulated prediction samples) mixed into the dummy set so the
            surrogate is accurate where the attack will query it.
        """
        n_features = check_positive_int(n_features, name="n_features")
        teacher._check_fitted()
        X_dummy = self.rng.random((self.n_dummy, n_features))
        if extra_inputs is not None:
            extra_inputs = np.asarray(extra_inputs, dtype=np.float64)
            if extra_inputs.ndim != 2 or extra_inputs.shape[1] != n_features:
                raise ValidationError(
                    f"extra_inputs must be (n, {n_features}), got {extra_inputs.shape}"
                )
            X_dummy = np.vstack([X_dummy, extra_inputs])
        V_dummy = teacher.predict_proba(X_dummy)

        self.teacher_ = teacher
        self.n_features_ = n_features
        self.n_classes_ = V_dummy.shape[1]
        sizes = [n_features, *self.hidden_sizes, self.n_classes_]
        self.network_ = mlp(sizes, activation="relu", init="kaiming", rng=self.rng)
        optimizer = make_optimizer("adam", self.network_.parameters(), self.lr)
        for _ in range(self.epochs):
            for xb, vb in iterate_batches((X_dummy, V_dummy), self.batch_size, rng=self.rng):
                optimizer.zero_grad()
                logits = self.network_(Tensor(xb))
                if self.loss == "soft_ce":
                    loss = F.soft_cross_entropy(logits, vb)
                else:
                    loss = F.mse_loss(F.softmax(logits, axis=1), Tensor(vb))
                loss.backward()
                optimizer.step()
        return self

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestDistiller":
        raise NotImplementedError(
            "RandomForestDistiller is fitted with distill(teacher, n_features)"
        )

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = self._validate_predict_input(X)
        return F.softmax(self.network_(Tensor(X)), axis=1).numpy()

    def forward_tensor(self, x: Tensor) -> Tensor:
        """Differentiable surrogate confidences (what GRNA differentiates)."""
        if self.network_ is None:
            raise NotFittedError("surrogate not distilled; call distill first")
        return F.softmax(self.network_(x), axis=1)

    def fidelity(self, X: np.ndarray) -> float:
        """Agreement rate between surrogate and teacher argmax labels on X."""
        if self.teacher_ is None:
            raise NotFittedError("surrogate not distilled; call distill first")
        return float(np.mean(self.predict(X) == self.teacher_.predict(X)))
