"""Save/load fitted models to a single ``.npz`` file.

The attack setting assumes the adversary holds the released model for a
long accumulation window ("in a week or a month, as long as the vertical
FL model is unchanged", §V) — so models must round-trip through storage.
The format is one numpy ``.npz`` archive with a JSON metadata entry and
the parameter arrays; no pickling, so archives are safe to load from
untrusted collaborators.

Supported: :class:`LogisticRegression`, :class:`MLPClassifier`,
:class:`DecisionTreeClassifier`, :class:`RandomForestClassifier`,
:class:`RandomForestDistiller` (surrogate only; its teacher is not
persisted).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import ValidationError
from repro.models.distill import RandomForestDistiller
from repro.models.forest import RandomForestClassifier
from repro.models.logistic import LogisticRegression
from repro.models.mlp import MLPClassifier
from repro.models.tree import DecisionTreeClassifier, TreeStructure, _Node
from repro.nn.layers import mlp

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Per-model encoders: model -> (meta dict, array dict)
# ----------------------------------------------------------------------
def _encode_logistic(model: LogisticRegression) -> tuple[dict, dict]:
    model._check_fitted()
    meta = {
        "n_features": model.n_features_,
        "n_classes": model.n_classes_,
        "binary": model.n_classes_ == 2,
    }
    arrays = {
        "coef": np.asarray(model.coef_),
        "intercept": np.atleast_1d(np.asarray(model.intercept_, dtype=np.float64)),
    }
    return meta, arrays


def _decode_logistic(meta: dict, arrays: dict) -> LogisticRegression:
    model = LogisticRegression()
    intercept = arrays["intercept"]
    if meta["binary"]:
        model.set_parameters(arrays["coef"], float(intercept[0]))
    else:
        model.set_parameters(arrays["coef"], intercept)
    return model


def _structure_arrays(structure: TreeStructure, prefix: str) -> dict:
    return {
        f"{prefix}exists": structure.exists,
        f"{prefix}is_leaf": structure.is_leaf,
        f"{prefix}feature": structure.feature,
        f"{prefix}threshold": structure.threshold,
        f"{prefix}leaf_label": structure.leaf_label,
    }


def _structure_from_arrays(arrays: dict, prefix: str) -> TreeStructure:
    exists = arrays[f"{prefix}exists"]
    n_nodes = int(exists.shape[0])
    depth = int(np.log2(n_nodes + 1)) - 1
    return TreeStructure(
        depth=depth,
        n_nodes=n_nodes,
        exists=exists.astype(bool),
        is_leaf=arrays[f"{prefix}is_leaf"].astype(bool),
        feature=arrays[f"{prefix}feature"].astype(np.int64),
        threshold=arrays[f"{prefix}threshold"].astype(np.float64),
        leaf_label=arrays[f"{prefix}leaf_label"].astype(np.int64),
    )


def _rebuild_node(structure: TreeStructure, index: int, depth: int) -> _Node:
    if structure.is_leaf[index]:
        return _Node(
            label=int(structure.leaf_label[index]), n_samples=0, depth=depth
        )
    node = _Node(label=0, n_samples=0, depth=depth)
    node.feature = int(structure.feature[index])
    node.threshold = float(structure.threshold[index])
    node.left = _rebuild_node(structure, 2 * index + 1, depth + 1)
    node.right = _rebuild_node(structure, 2 * index + 2, depth + 1)
    return node


def _encode_tree(model: DecisionTreeClassifier) -> tuple[dict, dict]:
    model._check_fitted()
    meta = {
        "n_features": model.n_features_,
        "n_classes": model.n_classes_,
        "max_depth": model.max_depth,
        "criterion": model.criterion,
    }
    return meta, _structure_arrays(model.tree_structure(), "tree_")


def _decode_tree(meta: dict, arrays: dict) -> DecisionTreeClassifier:
    model = DecisionTreeClassifier(
        max_depth=meta["max_depth"], criterion=meta["criterion"]
    )
    model.n_features_ = meta["n_features"]
    model.n_classes_ = meta["n_classes"]
    structure = _structure_from_arrays(arrays, "tree_")
    model.root_ = _rebuild_node(structure, 0, 0)
    return model


def _encode_forest(model: RandomForestClassifier) -> tuple[dict, dict]:
    model._check_fitted()
    meta = {
        "n_features": model.n_features_,
        "n_classes": model.n_classes_,
        "n_trees": len(model.trees_),
        "max_depth": model.max_depth,
        "criterion": model.criterion,
    }
    arrays: dict = {}
    for i, structure in enumerate(model.tree_structures()):
        arrays.update(_structure_arrays(structure, f"tree{i}_"))
    return meta, arrays


def _decode_forest(meta: dict, arrays: dict) -> RandomForestClassifier:
    model = RandomForestClassifier(
        n_trees=meta["n_trees"], max_depth=meta["max_depth"], criterion=meta["criterion"]
    )
    model.n_features_ = meta["n_features"]
    model.n_classes_ = meta["n_classes"]
    model.trees_ = []
    for i in range(meta["n_trees"]):
        tree = DecisionTreeClassifier(max_depth=meta["max_depth"])
        tree.n_features_ = meta["n_features"]
        tree.n_classes_ = meta["n_classes"]
        structure = _structure_from_arrays(arrays, f"tree{i}_")
        tree.root_ = _rebuild_node(structure, 0, 0)
        model.trees_.append(tree)
    return model


def _encode_mlp(model: MLPClassifier) -> tuple[dict, dict]:
    model._check_fitted()
    meta = {
        "n_features": model.n_features_,
        "n_classes": model.n_classes_,
        "hidden_sizes": list(model.hidden_sizes),
        "dropout": model.dropout,
    }
    arrays = {f"param_{k}": v for k, v in model.network_.state_dict().items()}
    return meta, arrays


def _decode_mlp(meta: dict, arrays: dict) -> MLPClassifier:
    model = MLPClassifier(hidden_sizes=tuple(meta["hidden_sizes"]), dropout=meta["dropout"])
    model.n_features_ = meta["n_features"]
    model.n_classes_ = meta["n_classes"]
    sizes = [meta["n_features"], *meta["hidden_sizes"], meta["n_classes"]]
    model.network_ = mlp(sizes, activation="relu", dropout=meta["dropout"], rng=0)
    state = {k[len("param_"):]: v for k, v in arrays.items() if k.startswith("param_")}
    model.network_.load_state_dict(state)
    model.network_.eval()
    return model


def _encode_distiller(model: RandomForestDistiller) -> tuple[dict, dict]:
    if model.network_ is None:
        raise ValidationError("distiller has no surrogate network; distill first")
    meta = {
        "n_features": model.n_features_,
        "n_classes": model.n_classes_,
        "hidden_sizes": list(model.hidden_sizes),
    }
    arrays = {f"param_{k}": v for k, v in model.network_.state_dict().items()}
    return meta, arrays


def _decode_distiller(meta: dict, arrays: dict) -> RandomForestDistiller:
    model = RandomForestDistiller(hidden_sizes=tuple(meta["hidden_sizes"]))
    model.n_features_ = meta["n_features"]
    model.n_classes_ = meta["n_classes"]
    sizes = [meta["n_features"], *meta["hidden_sizes"], meta["n_classes"]]
    model.network_ = mlp(sizes, activation="relu", rng=0)
    state = {k[len("param_"):]: v for k, v in arrays.items() if k.startswith("param_")}
    model.network_.load_state_dict(state)
    return model


_CODECS = {
    "LogisticRegression": (LogisticRegression, _encode_logistic, _decode_logistic),
    "DecisionTreeClassifier": (DecisionTreeClassifier, _encode_tree, _decode_tree),
    "RandomForestClassifier": (RandomForestClassifier, _encode_forest, _decode_forest),
    "MLPClassifier": (MLPClassifier, _encode_mlp, _decode_mlp),
    "RandomForestDistiller": (RandomForestDistiller, _encode_distiller, _decode_distiller),
}


def save_model(model, path: "str | Path") -> Path:
    """Serialize a fitted model to ``path`` (``.npz`` appended if missing)."""
    for kind, (cls, encode, _decode) in _CODECS.items():
        if type(model) is cls:
            meta, arrays = encode(model)
            meta = {"format_version": FORMAT_VERSION, "kind": kind, **meta}
            path = Path(path)
            if path.suffix != ".npz":
                path = path.with_suffix(path.suffix + ".npz")
            np.savez(path, __meta__=np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ), **arrays)
            return path
    raise ValidationError(
        f"cannot serialize {type(model).__name__}; supported: {sorted(_CODECS)}"
    )


def load_model(path: "str | Path"):
    """Load a model previously written by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no such model file: {path}")
    with np.load(path) as archive:
        if "__meta__" not in archive:
            raise ValidationError(f"{path} is not a repro model archive")
        meta = json.loads(bytes(archive["__meta__"].tobytes()).decode("utf-8"))
        arrays = {k: archive[k] for k in archive.files if k != "__meta__"}
    if meta.get("format_version") != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported model format version {meta.get('format_version')!r}"
        )
    kind = meta.get("kind")
    if kind not in _CODECS:
        raise ValidationError(f"unknown model kind {kind!r} in {path}")
    _cls, _encode, decode = _CODECS[kind]
    return decode(meta, arrays)
