"""Save/load fitted models to a single ``.npz`` file.

The attack setting assumes the adversary holds the released model for a
long accumulation window ("in a week or a month, as long as the vertical
FL model is unchanged", §V) — so models must round-trip through storage.
The format is one numpy ``.npz`` archive with a JSON metadata entry and
the parameter arrays; no pickling, so archives are safe to load from
untrusted collaborators.

Supported: :class:`LogisticRegression`, :class:`MLPClassifier`,
:class:`DecisionTreeClassifier`, :class:`RandomForestClassifier`,
:class:`RandomForestDistiller` (surrogate only; its teacher is not
persisted).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.checkpoint.codec import CHECKPOINTS, StateCodec, codec_for
from repro.exceptions import CheckpointError, NotFittedError, ValidationError
from repro.models.distill import RandomForestDistiller
from repro.models.forest import RandomForestClassifier
from repro.models.logistic import LogisticRegression
from repro.models.mlp import MLPClassifier
from repro.models.tree import DecisionTreeClassifier, TreeStructure, _Node
from repro.nn.layers import mlp
from repro.nn.optim import SGD, Adam, Optimizer

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Per-model encoders: model -> (meta dict, array dict)
# ----------------------------------------------------------------------
def _encode_logistic(model: LogisticRegression) -> tuple[dict, dict]:
    model._check_fitted()
    meta = {
        "n_features": model.n_features_,
        "n_classes": model.n_classes_,
        "binary": model.n_classes_ == 2,
    }
    arrays = {
        "coef": np.asarray(model.coef_),
        "intercept": np.atleast_1d(np.asarray(model.intercept_, dtype=np.float64)),
    }
    return meta, arrays


def _decode_logistic(meta: dict, arrays: dict) -> LogisticRegression:
    model = LogisticRegression()
    intercept = arrays["intercept"]
    if meta["binary"]:
        model.set_parameters(arrays["coef"], float(intercept[0]))
    else:
        model.set_parameters(arrays["coef"], intercept)
    return model


def _structure_arrays(structure: TreeStructure, prefix: str) -> dict:
    return {
        f"{prefix}exists": structure.exists,
        f"{prefix}is_leaf": structure.is_leaf,
        f"{prefix}feature": structure.feature,
        f"{prefix}threshold": structure.threshold,
        f"{prefix}leaf_label": structure.leaf_label,
    }


def _structure_from_arrays(arrays: dict, prefix: str) -> TreeStructure:
    exists = arrays[f"{prefix}exists"]
    n_nodes = int(exists.shape[0])
    depth = int(np.log2(n_nodes + 1)) - 1
    return TreeStructure(
        depth=depth,
        n_nodes=n_nodes,
        exists=exists.astype(bool),
        is_leaf=arrays[f"{prefix}is_leaf"].astype(bool),
        feature=arrays[f"{prefix}feature"].astype(np.int64),
        threshold=arrays[f"{prefix}threshold"].astype(np.float64),
        leaf_label=arrays[f"{prefix}leaf_label"].astype(np.int64),
    )


def _rebuild_node(structure: TreeStructure, index: int, depth: int) -> _Node:
    if structure.is_leaf[index]:
        return _Node(
            label=int(structure.leaf_label[index]), n_samples=0, depth=depth
        )
    node = _Node(label=0, n_samples=0, depth=depth)
    node.feature = int(structure.feature[index])
    node.threshold = float(structure.threshold[index])
    node.left = _rebuild_node(structure, 2 * index + 1, depth + 1)
    node.right = _rebuild_node(structure, 2 * index + 2, depth + 1)
    return node


def _encode_tree(model: DecisionTreeClassifier) -> tuple[dict, dict]:
    model._check_fitted()
    meta = {
        "n_features": model.n_features_,
        "n_classes": model.n_classes_,
        "max_depth": model.max_depth,
        "criterion": model.criterion,
    }
    return meta, _structure_arrays(model.tree_structure(), "tree_")


def _decode_tree(meta: dict, arrays: dict) -> DecisionTreeClassifier:
    model = DecisionTreeClassifier(
        max_depth=meta["max_depth"], criterion=meta["criterion"]
    )
    model.n_features_ = meta["n_features"]
    model.n_classes_ = meta["n_classes"]
    structure = _structure_from_arrays(arrays, "tree_")
    model.root_ = _rebuild_node(structure, 0, 0)
    return model


def _encode_forest(model: RandomForestClassifier) -> tuple[dict, dict]:
    model._check_fitted()
    meta = {
        "n_features": model.n_features_,
        "n_classes": model.n_classes_,
        "n_trees": len(model.trees_),
        "max_depth": model.max_depth,
        "criterion": model.criterion,
    }
    arrays: dict = {}
    for i, structure in enumerate(model.tree_structures()):
        arrays.update(_structure_arrays(structure, f"tree{i}_"))
    return meta, arrays


def _decode_forest(meta: dict, arrays: dict) -> RandomForestClassifier:
    model = RandomForestClassifier(
        n_trees=meta["n_trees"], max_depth=meta["max_depth"], criterion=meta["criterion"]
    )
    model.n_features_ = meta["n_features"]
    model.n_classes_ = meta["n_classes"]
    model.trees_ = []
    for i in range(meta["n_trees"]):
        tree = DecisionTreeClassifier(max_depth=meta["max_depth"])
        tree.n_features_ = meta["n_features"]
        tree.n_classes_ = meta["n_classes"]
        structure = _structure_from_arrays(arrays, f"tree{i}_")
        tree.root_ = _rebuild_node(structure, 0, 0)
        model.trees_.append(tree)
    return model


def _encode_mlp(model: MLPClassifier) -> tuple[dict, dict]:
    model._check_fitted()
    meta = {
        "n_features": model.n_features_,
        "n_classes": model.n_classes_,
        "hidden_sizes": list(model.hidden_sizes),
        "dropout": model.dropout,
    }
    arrays = {f"param_{k}": v for k, v in model.network_.state_dict().items()}
    return meta, arrays


def _decode_mlp(meta: dict, arrays: dict) -> MLPClassifier:
    model = MLPClassifier(hidden_sizes=tuple(meta["hidden_sizes"]), dropout=meta["dropout"])
    model.n_features_ = meta["n_features"]
    model.n_classes_ = meta["n_classes"]
    sizes = [meta["n_features"], *meta["hidden_sizes"], meta["n_classes"]]
    model.network_ = mlp(sizes, activation="relu", dropout=meta["dropout"], rng=0)
    state = {k[len("param_"):]: v for k, v in arrays.items() if k.startswith("param_")}
    model.network_.load_state_dict(state)
    model.network_.eval()
    return model


def _encode_distiller(model: RandomForestDistiller) -> tuple[dict, dict]:
    if model.network_ is None:
        raise ValidationError("distiller has no surrogate network; distill first")
    meta = {
        "n_features": model.n_features_,
        "n_classes": model.n_classes_,
        "hidden_sizes": list(model.hidden_sizes),
    }
    arrays = {f"param_{k}": v for k, v in model.network_.state_dict().items()}
    return meta, arrays


def _decode_distiller(meta: dict, arrays: dict) -> RandomForestDistiller:
    model = RandomForestDistiller(hidden_sizes=tuple(meta["hidden_sizes"]))
    model.n_features_ = meta["n_features"]
    model.n_classes_ = meta["n_classes"]
    sizes = [meta["n_features"], *meta["hidden_sizes"], meta["n_classes"]]
    model.network_ = mlp(sizes, activation="relu", rng=0)
    state = {k[len("param_"):]: v for k, v in arrays.items() if k.startswith("param_")}
    model.network_.load_state_dict(state)
    return model


_CODECS = {
    "LogisticRegression": (LogisticRegression, _encode_logistic, _decode_logistic),
    "DecisionTreeClassifier": (DecisionTreeClassifier, _encode_tree, _decode_tree),
    "RandomForestClassifier": (RandomForestClassifier, _encode_forest, _decode_forest),
    "MLPClassifier": (MLPClassifier, _encode_mlp, _decode_mlp),
    "RandomForestDistiller": (RandomForestDistiller, _encode_distiller, _decode_distiller),
}


# ----------------------------------------------------------------------
# Checkpoint codecs: live models and optimizers as snapshot fragments
# ----------------------------------------------------------------------
# Registered in repro.checkpoint.CHECKPOINTS on models-package import.
# The model codecs reuse this module's array layouts; the optimizer
# codecs capture the state that makes a resumed training trajectory
# bit-identical — Adam's first/second moments and step counter, SGD's
# momentum velocities. Scratch buffers are deliberately *not* captured:
# every step fully overwrites them via ``out=``, so freshly constructed
# buffers reproduce the same bytes.


@CHECKPOINTS.register("model/logistic")
class LogisticRegressionCodec(StateCodec):
    """Snapshot a fitted :class:`LogisticRegression`."""

    kind = "model/logistic"
    target = LogisticRegression
    state_fields = ("coef_", "intercept_")

    def capture(self, obj) -> tuple[dict, dict]:
        obj._check_fitted()
        meta = {
            "n_features": obj.n_features_,
            "n_classes": obj.n_classes_,
            "binary": obj.n_classes_ == 2,
        }
        arrays = {
            "coef": np.asarray(obj.coef_),
            "intercept": np.atleast_1d(np.asarray(obj.intercept_, dtype=np.float64)),
        }
        return meta, arrays

    def restore(self, obj, meta: dict, arrays: dict) -> None:
        obj.coef_ = np.asarray(arrays["coef"], dtype=np.float64)
        if meta["binary"]:
            obj.intercept_ = np.float64(arrays["intercept"][0])
        else:
            obj.intercept_ = np.asarray(arrays["intercept"], dtype=np.float64)
        obj.n_features_ = meta["n_features"]
        obj.n_classes_ = meta["n_classes"]


@CHECKPOINTS.register("model/tree")
class DecisionTreeCodec(StateCodec):
    """Snapshot a fitted :class:`DecisionTreeClassifier`."""

    kind = "model/tree"
    target = DecisionTreeClassifier
    state_fields = ("root_", "n_features_", "n_classes_")

    def capture(self, obj) -> tuple[dict, dict]:
        if obj.root_ is None:
            raise NotFittedError("decision tree has no fitted structure to checkpoint")
        meta = {"n_features": obj.n_features_, "n_classes": obj.n_classes_}
        return meta, _structure_arrays(obj.tree_structure(), "tree_")

    def restore(self, obj, meta: dict, arrays: dict) -> None:
        obj.n_features_ = meta["n_features"]
        obj.n_classes_ = meta["n_classes"]
        obj.root_ = _rebuild_node(_structure_from_arrays(arrays, "tree_"), 0, 0)


@CHECKPOINTS.register("model/forest")
class RandomForestCodec(StateCodec):
    """Snapshot a fitted :class:`RandomForestClassifier`."""

    kind = "model/forest"
    target = RandomForestClassifier
    state_fields = ("trees_", "n_features_", "n_classes_")

    def capture(self, obj) -> tuple[dict, dict]:
        if not obj.trees_:
            raise NotFittedError("random forest has no fitted trees to checkpoint")
        meta = {
            "n_features": obj.n_features_,
            "n_classes": obj.n_classes_,
            "n_trees": len(obj.trees_),
            "max_depth": obj.max_depth,
        }
        arrays: dict = {}
        for i, structure in enumerate(obj.tree_structures()):
            arrays.update(_structure_arrays(structure, f"tree{i}_"))
        return meta, arrays

    def restore(self, obj, meta: dict, arrays: dict) -> None:
        obj.n_features_ = meta["n_features"]
        obj.n_classes_ = meta["n_classes"]
        obj.trees_ = []
        for i in range(meta["n_trees"]):
            tree = DecisionTreeClassifier(max_depth=meta["max_depth"])
            tree.n_features_ = meta["n_features"]
            tree.n_classes_ = meta["n_classes"]
            tree.root_ = _rebuild_node(
                _structure_from_arrays(arrays, f"tree{i}_"), 0, 0
            )
            obj.trees_.append(tree)


@CHECKPOINTS.register("model/mlp")
class MLPClassifierCodec(StateCodec):
    """Snapshot a fitted :class:`MLPClassifier`."""

    kind = "model/mlp"
    target = MLPClassifier
    state_fields = ("network_", "n_features_", "n_classes_")

    def capture(self, obj) -> tuple[dict, dict]:
        obj._check_fitted()
        meta = {
            "n_features": obj.n_features_,
            "n_classes": obj.n_classes_,
            "hidden_sizes": list(obj.hidden_sizes),
            "dropout": obj.dropout,
        }
        arrays = {f"param_{k}": v.copy() for k, v in obj.network_.state_dict().items()}
        return meta, arrays

    def restore(self, obj, meta: dict, arrays: dict) -> None:
        obj.n_features_ = meta["n_features"]
        obj.n_classes_ = meta["n_classes"]
        sizes = [meta["n_features"], *meta["hidden_sizes"], meta["n_classes"]]
        obj.network_ = mlp(sizes, activation="relu", dropout=meta["dropout"], rng=0)
        state = {k[len("param_"):]: v for k, v in arrays.items() if k.startswith("param_")}
        obj.network_.load_state_dict(state)
        obj.network_.eval()


@CHECKPOINTS.register("model/distiller")
class RandomForestDistillerCodec(StateCodec):
    """Snapshot a distilled :class:`RandomForestDistiller` surrogate."""

    kind = "model/distiller"
    target = RandomForestDistiller
    state_fields = ("network_", "n_features_", "n_classes_")

    def capture(self, obj) -> tuple[dict, dict]:
        if obj.network_ is None:
            raise NotFittedError("distiller has no surrogate network to checkpoint")
        meta = {
            "n_features": obj.n_features_,
            "n_classes": obj.n_classes_,
            "hidden_sizes": list(obj.hidden_sizes),
        }
        arrays = {f"param_{k}": v.copy() for k, v in obj.network_.state_dict().items()}
        return meta, arrays

    def restore(self, obj, meta: dict, arrays: dict) -> None:
        obj.n_features_ = meta["n_features"]
        obj.n_classes_ = meta["n_classes"]
        sizes = [meta["n_features"], *meta["hidden_sizes"], meta["n_classes"]]
        obj.network_ = mlp(sizes, activation="relu", rng=0)
        state = {k[len("param_"):]: v for k, v in arrays.items() if k.startswith("param_")}
        obj.network_.load_state_dict(state)


def _check_param_shapes(optimizer, arrays: dict, names: "list[str]") -> None:
    """Refuse optimizer state whose shapes do not match the live params."""
    if len(names) != len(optimizer.params):
        raise CheckpointError(
            f"optimizer state holds {len(names)} parameter buffers but the "
            f"optimizer has {len(optimizer.params)} parameters"
        )
    for name, p in zip(names, optimizer.params):
        if arrays[name].shape != p.data.shape:
            raise CheckpointError(
                f"optimizer buffer {name!r} has shape {arrays[name].shape}, "
                f"parameter expects {p.data.shape}"
            )


@CHECKPOINTS.register("optimizer/sgd")
class SGDCodec(StateCodec):
    """Snapshot :class:`SGD` momentum state (velocities)."""

    kind = "optimizer/sgd"
    target = SGD
    state_fields = ("_velocity",)

    def capture(self, obj) -> tuple[dict, dict]:
        meta = {"n_params": len(obj._velocity)}
        arrays = {f"velocity_{i}": v.copy() for i, v in enumerate(obj._velocity)}
        return meta, arrays

    def restore(self, obj, meta: dict, arrays: dict) -> None:
        names = [f"velocity_{i}" for i in range(meta["n_params"])]
        _check_param_shapes(obj, arrays, names)
        obj._velocity = [np.ascontiguousarray(arrays[name]) for name in names]


@CHECKPOINTS.register("optimizer/adam")
class AdamCodec(StateCodec):
    """Snapshot :class:`Adam` moments and step counter."""

    kind = "optimizer/adam"
    target = Adam
    state_fields = ("_m", "_v", "_t")

    def capture(self, obj) -> tuple[dict, dict]:
        meta = {"t": obj._t, "n_params": len(obj._m)}
        arrays: dict = {}
        for i, (m, v) in enumerate(zip(obj._m, obj._v)):
            arrays[f"m_{i}"] = m.copy()
            arrays[f"v_{i}"] = v.copy()
        return meta, arrays

    def restore(self, obj, meta: dict, arrays: dict) -> None:
        m_names = [f"m_{i}" for i in range(meta["n_params"])]
        v_names = [f"v_{i}" for i in range(meta["n_params"])]
        _check_param_shapes(obj, arrays, m_names)
        _check_param_shapes(obj, arrays, v_names)
        obj._m = [np.ascontiguousarray(arrays[name]) for name in m_names]
        obj._v = [np.ascontiguousarray(arrays[name]) for name in v_names]
        obj._t = int(meta["t"])


def save_model(model, path: "str | Path", *, optimizer: "Optimizer | None" = None) -> Path:
    """Serialize a fitted model to ``path`` (``.npz`` appended if missing).

    With ``optimizer`` given, its resumable state (Adam moments and step
    counter, SGD velocities) is stored in the same archive under
    ``opt_``-prefixed arrays plus an ``__optimizer__`` metadata entry,
    recoverable via :func:`load_optimizer_state` — so a training loop
    can round-trip model *and* optimizer through one file and continue
    on a bit-identical trajectory.
    """
    for kind, (cls, encode, _decode) in _CODECS.items():
        if type(model) is cls:
            meta, arrays = encode(model)
            meta = {"format_version": FORMAT_VERSION, "kind": kind, **meta}
            if optimizer is not None:
                opt_codec = codec_for(optimizer)
                if opt_codec is None:
                    raise ValidationError(
                        f"no checkpoint codec for optimizer "
                        f"{type(optimizer).__name__}"
                    )
                opt_meta, opt_arrays = opt_codec.capture(optimizer)
                meta["__optimizer__"] = {"kind": opt_codec.kind, "meta": opt_meta}
                arrays.update({f"opt_{k}": v for k, v in opt_arrays.items()})
            path = Path(path)
            if path.suffix != ".npz":
                path = path.with_suffix(path.suffix + ".npz")
            np.savez(path, __meta__=np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ), **arrays)
            return path
    raise ValidationError(
        f"cannot serialize {type(model).__name__}; supported: {sorted(_CODECS)}"
    )


def load_model(path: "str | Path"):
    """Load a model previously written by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no such model file: {path}")
    with np.load(path) as archive:
        if "__meta__" not in archive:
            raise ValidationError(f"{path} is not a repro model archive")
        meta = json.loads(bytes(archive["__meta__"].tobytes()).decode("utf-8"))
        arrays = {k: archive[k] for k in archive.files if k != "__meta__"}
    if meta.get("format_version") != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported model format version {meta.get('format_version')!r}"
        )
    kind = meta.get("kind")
    if kind not in _CODECS:
        raise ValidationError(f"unknown model kind {kind!r} in {path}")
    _cls, _encode, decode = _CODECS[kind]
    return decode(meta, arrays)


def load_optimizer_state(path: "str | Path", optimizer: Optimizer) -> Optimizer:
    """Reinstate optimizer state saved by :func:`save_model` onto ``optimizer``.

    The optimizer must already be constructed over the (restored)
    model's parameters with the same hyperparameters; this loads only
    the trajectory state. Raises
    :class:`~repro.exceptions.CheckpointError` when the archive holds no
    optimizer state, the optimizer kind differs, or buffer shapes do not
    match the live parameters.
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no such model file: {path}")
    with np.load(path) as archive:
        if "__meta__" not in archive:
            raise ValidationError(f"{path} is not a repro model archive")
        meta = json.loads(bytes(archive["__meta__"].tobytes()).decode("utf-8"))
        arrays = {k: archive[k] for k in archive.files if k.startswith("opt_")}
    opt_info = meta.get("__optimizer__")
    if opt_info is None:
        raise CheckpointError(f"{path} holds no optimizer state")
    codec = codec_for(optimizer)
    if codec is None or codec.kind != opt_info["kind"]:
        raise CheckpointError(
            f"{path} holds {opt_info['kind']!r} state but got a "
            f"{type(optimizer).__name__} optimizer"
        )
    codec.restore(
        optimizer, opt_info["meta"], {k[len("opt_"):]: v for k, v in arrays.items()}
    )
    return optimizer
