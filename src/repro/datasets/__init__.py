"""Datasets: synthetic generators, Table II registry, and scaling."""

from repro.datasets.registry import (
    Dataset,
    DatasetSpec,
    SPECS,
    get_spec,
    list_datasets,
    load_dataset,
    table2_rows,
)
from repro.datasets.scaling import MinMaxScaler
from repro.datasets.synthetic import make_classification, make_correlated_tabular

__all__ = [
    "Dataset",
    "DatasetSpec",
    "SPECS",
    "get_spec",
    "list_datasets",
    "load_dataset",
    "table2_rows",
    "MinMaxScaler",
    "make_classification",
    "make_correlated_tabular",
]
