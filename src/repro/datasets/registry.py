"""Named dataset registry matching Table II of the paper.

The four "real-world" entries are **schema-matched synthetic stand-ins**
(see DESIGN.md): the offline environment cannot fetch the UCI datasets, so
each generator reproduces the original's sample count, feature count,
class count, and a latent-factor correlation structure. The two synthetic
entries correspond to the paper's own sklearn-generated datasets.

All loaders return features min-max normalized into [0, 1] (§VI-A) and are
deterministic for a given ``rng`` (default: a fixed per-dataset seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.scaling import MinMaxScaler
from repro.datasets.synthetic import make_classification, make_correlated_tabular
from repro.exceptions import DatasetError
from repro.utils.random import check_random_state


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a registered dataset (one Table II row)."""

    name: str
    n_samples: int
    n_features: int
    n_classes: int
    kind: str  # "real-substitute" or "synthetic"
    description: str
    default_seed: int


@dataclass
class Dataset:
    """A materialized dataset: normalized features, labels, and its spec."""

    spec: DatasetSpec
    X: np.ndarray
    y: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of rows actually materialized (may be below spec size)."""
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return self.X.shape[1]

    @property
    def n_classes(self) -> int:
        """Number of classes in the spec."""
        return self.spec.n_classes


SPECS: dict[str, DatasetSpec] = {
    "bank": DatasetSpec(
        name="bank",
        n_samples=45211,
        n_features=20,
        n_classes=2,
        kind="real-substitute",
        description="Bank marketing (Moro et al. 2014) schema-matched stand-in",
        default_seed=20211,
    ),
    "credit": DatasetSpec(
        name="credit",
        n_samples=30000,
        n_features=23,
        n_classes=2,
        kind="real-substitute",
        description="Credit card default (Yeh & Lien 2009) schema-matched stand-in",
        default_seed=20212,
    ),
    "drive": DatasetSpec(
        name="drive",
        n_samples=58509,
        n_features=48,
        n_classes=11,
        kind="real-substitute",
        description="Sensorless drive diagnosis (UCI) schema-matched stand-in",
        default_seed=20213,
    ),
    "news": DatasetSpec(
        name="news",
        n_samples=39797,
        n_features=59,
        n_classes=5,
        kind="real-substitute",
        description="Online news popularity (Fernandes et al. 2015) stand-in",
        default_seed=20214,
    ),
    "synthetic1": DatasetSpec(
        name="synthetic1",
        n_samples=100000,
        n_features=25,
        n_classes=10,
        kind="synthetic",
        description="Paper's synthetic dataset 1 (sklearn make_classification style)",
        default_seed=20215,
    ),
    "synthetic2": DatasetSpec(
        name="synthetic2",
        n_samples=100000,
        n_features=50,
        n_classes=5,
        kind="synthetic",
        description="Paper's synthetic dataset 2 (sklearn make_classification style)",
        default_seed=20216,
    ),
}

# Correlation strength per stand-in, loosely reflecting how correlated the
# original datasets' features are (financial/marketing data is strongly
# factor-structured; the news dataset has many weakly-related NLP columns).
_FACTOR_STRENGTH = {"bank": 0.9, "credit": 0.85, "drive": 0.8, "news": 0.6}

# Marginal skew per stand-in, calibrated to the paper's per-dataset ESA
# error bounds (1/d)Σ 2x² of 0.60 / 0.14 / 0.45 / 0.34 (§VI-B): the
# rank-transformed marginal U(0,1)^γ has E[x²] = 1/(2γ+1), so γ is chosen
# to hit bound/2.
_MARGINAL_GAMMA = {"bank": 1.17, "credit": 6.64, "drive": 1.72, "news": 2.44}


def list_datasets() -> list[str]:
    """Names of all registered datasets, in Table II order."""
    return list(SPECS)


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return SPECS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {list(SPECS)}"
        ) from None


def load_dataset(
    name: str,
    *,
    n_samples: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> Dataset:
    """Materialize a registered dataset, min-max normalized into [0, 1].

    Parameters
    ----------
    name:
        One of :func:`list_datasets`.
    n_samples:
        Override the spec's sample count (downscaling is how the benches
        stay laptop-fast; trends are size-stable).
    rng:
        Seed or generator; defaults to the spec's fixed seed so the named
        datasets are stable across runs, like real files on disk would be.
    """
    spec = get_spec(name)
    if n_samples is None:
        n_samples = spec.n_samples
    if n_samples <= 0:
        raise DatasetError(f"n_samples must be positive, got {n_samples}")
    generator = check_random_state(spec.default_seed if rng is None else rng)

    if spec.kind == "real-substitute":
        X, y = make_correlated_tabular(
            n_samples,
            spec.n_features,
            n_classes=spec.n_classes,
            factor_strength=_FACTOR_STRENGTH[spec.name],
            marginal_gamma=_MARGINAL_GAMMA[spec.name],
            rng=generator,
        )
    else:
        X, y = make_classification(
            n_samples,
            spec.n_features,
            n_classes=spec.n_classes,
            class_sep=1.5,
            rng=generator,
        )
    X = MinMaxScaler().fit_transform(X)
    # Guarantee every class is present (tiny subsamples of many-class
    # datasets can miss one); re-label any absent tail classes.
    present = np.unique(y)
    if present.size < spec.n_classes and n_samples >= spec.n_classes:
        missing = np.setdiff1d(np.arange(spec.n_classes), present)
        donors = generator.choice(n_samples, size=missing.size, replace=False)
        y = y.copy()
        y[donors] = missing
    return Dataset(spec=spec, X=X, y=y)


def table2_rows() -> list[tuple[str, int, int, int]]:
    """Rows of the paper's Table II: (dataset, samples, classes, features)."""
    return [
        (spec.name, spec.n_samples, spec.n_classes, spec.n_features)
        for spec in SPECS.values()
    ]
