"""Synthetic classification-data generators.

Two generators:

- :func:`make_classification` mirrors scikit-learn's generator of the same
  name (cluster-per-class on hypercube vertices plus redundant/noise
  columns). The paper builds its two synthetic datasets "with the sklearn
  library" (§VI-A); this is the offline stand-in.
- :func:`make_correlated_tabular` draws features from a latent-factor model
  so that cross-party feature *correlations* — the signal GRNA exploits —
  are present and tunable. The schema-matched stand-ins for the four UCI
  datasets are built on it.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.numeric import softmax
from repro.utils.random import check_random_state
from repro.utils.validation import check_in_range, check_positive_int


def make_classification(
    n_samples: int,
    n_features: int,
    *,
    n_classes: int = 2,
    n_informative: int | None = None,
    n_redundant: int | None = None,
    class_sep: float = 1.0,
    noise: float = 1.0,
    rng: np.random.Generator | int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian clusters on hypercube vertices, plus redundant/noise columns.

    Parameters
    ----------
    n_samples, n_features, n_classes:
        Dataset shape.
    n_informative:
        Number of informative dimensions; default ``ceil(log2(n_classes))``
        rounded up to at least ``n_classes.bit_length()`` and capped at
        ``n_features``.
    n_redundant:
        Columns that are random linear combinations of the informative
        block; default 20% of the features.
    class_sep:
        Distance scale between class centroids.
    noise:
        Standard deviation of the within-cluster Gaussian noise.

    Returns
    -------
    (X, y):
        ``X`` of shape ``(n_samples, n_features)`` (unnormalized), ``y``
        integer labels in ``[0, n_classes)``.
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    n_classes = check_positive_int(n_classes, name="n_classes")
    if n_classes < 2:
        raise DatasetError("n_classes must be at least 2")
    check_in_range(class_sep, name="class_sep", low=0.0, inclusive=False)
    check_in_range(noise, name="noise", low=0.0, inclusive=False)
    rng = check_random_state(rng)

    if n_informative is None:
        n_informative = max(2, int(np.ceil(np.log2(n_classes))) + 1)
    n_informative = min(check_positive_int(n_informative, name="n_informative"), n_features)
    if n_redundant is None:
        n_redundant = min(n_features - n_informative, max(0, n_features // 5))
    if n_redundant < 0 or n_informative + n_redundant > n_features:
        raise DatasetError(
            f"n_informative + n_redundant = {n_informative + n_redundant} exceeds "
            f"n_features = {n_features}"
        )
    n_noise = n_features - n_informative - n_redundant

    # Class centroids at random hypercube-ish vertices scaled by class_sep.
    centroids = class_sep * (2.0 * rng.random((n_classes, n_informative)) - 1.0)
    centroids *= 2.0  # spread, as sklearn uses 2*class_sep boxes
    y = rng.integers(0, n_classes, size=n_samples)
    informative = centroids[y] + noise * rng.normal(size=(n_samples, n_informative))

    columns = [informative]
    if n_redundant:
        mixing = rng.normal(size=(n_informative, n_redundant))
        redundant = informative @ mixing
        redundant += 0.05 * noise * rng.normal(size=redundant.shape)
        columns.append(redundant)
    if n_noise:
        columns.append(rng.normal(size=(n_samples, n_noise)))
    X = np.hstack(columns)

    # Shuffle columns so informative features are not positionally biased —
    # the experiments select target features by random column subsets.
    X = X[:, rng.permutation(n_features)]
    return X, y.astype(np.int64)


def make_correlated_tabular(
    n_samples: int,
    n_features: int,
    *,
    n_classes: int = 2,
    n_factors: int | None = None,
    factor_strength: float = 0.85,
    label_strength: float = 2.5,
    marginal_gamma: float | None = None,
    rng: np.random.Generator | int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Latent-factor tabular data with strong cross-feature correlations.

    Every feature loads on a small number of shared latent factors, so any
    two column subsets (the adversary's and the target's) are correlated —
    the property GRNA's success depends on and that real tabular data such
    as the UCI bank-marketing dataset exhibits.

    Parameters
    ----------
    n_factors:
        Number of latent factors; default ``max(2, n_features // 6)``.
    factor_strength:
        Fraction of each feature's variance explained by the shared
        factors; the remainder is idiosyncratic noise. Higher values mean
        stronger cross-party correlation.
    label_strength:
        Scale of the logits mapping latent factors to class probabilities.
    marginal_gamma:
        If set, rank-transform every column to the skewed marginal
        ``U(0,1)^γ``. Real min-max-normalized tabular data is right-skewed
        (outliers define the max), which is what the paper's per-dataset
        ESA error bounds ``(1/d)Σ 2x²`` measure; γ calibrates
        ``E[x²] = 1/(2γ+1)`` to match a target bound while preserving the
        factor model's rank correlations. ``None`` keeps the Gaussian
        marginals.
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    n_classes = check_positive_int(n_classes, name="n_classes")
    if n_classes < 2:
        raise DatasetError("n_classes must be at least 2")
    check_in_range(factor_strength, name="factor_strength", low=0.0, high=1.0, inclusive=False)
    check_in_range(label_strength, name="label_strength", low=0.0, inclusive=False)
    rng = check_random_state(rng)
    if n_factors is None:
        n_factors = max(2, n_features // 6)
    n_factors = check_positive_int(n_factors, name="n_factors")

    Z = rng.normal(size=(n_samples, n_factors))

    # Loadings: each feature mixes a few factors with random signs.
    loadings = rng.normal(size=(n_factors, n_features))
    loadings /= np.linalg.norm(loadings, axis=0, keepdims=True)
    shared = Z @ loadings
    idiosyncratic = rng.normal(size=(n_samples, n_features))
    X = np.sqrt(factor_strength) * shared + np.sqrt(1.0 - factor_strength) * idiosyncratic
    if marginal_gamma is not None:
        check_in_range(marginal_gamma, name="marginal_gamma", low=0.0, inclusive=False)
        X = _rank_transform_marginals(X, marginal_gamma)

    # Labels depend on the same factors, so v correlates with the features.
    label_weights = rng.normal(size=(n_factors, n_classes)) * label_strength
    logits = Z @ label_weights
    probs = softmax(logits, axis=1)
    # Vectorized categorical sampling via inverse-CDF.
    cumulative = probs.cumsum(axis=1)
    u = rng.random(n_samples)
    y = (u[:, None] > cumulative).sum(axis=1).astype(np.int64)
    y = np.clip(y, 0, n_classes - 1)
    return X, y


def _rank_transform_marginals(X: np.ndarray, gamma: float) -> np.ndarray:
    """Map every column to the ``U(0,1)^γ`` marginal by rank.

    Monotone per column, so Spearman correlations (and hence the learnable
    cross-party structure) are preserved exactly.
    """
    n = X.shape[0]
    ranks = np.argsort(np.argsort(X, axis=0), axis=0)
    uniform = (ranks + 1.0) / (n + 1.0)
    return uniform ** gamma
