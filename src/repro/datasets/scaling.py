"""Feature scaling.

The paper normalizes "the ranges of all feature values in each dataset into
(0, 1) before training the models" (§VI-A). :class:`MinMaxScaler`
implements the standard per-column min-max map, with an inverse transform
so reconstructed features can be reported in original units.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_matrix


class MinMaxScaler:
    """Map each column of a matrix into ``[0, 1]`` by its observed range.

    Constant columns are mapped to 0.5 (their midpoint) rather than raising
    — the paper's datasets contain near-constant indicator columns after
    one-hot encoding.
    """

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        """Record per-column minima and ranges."""
        X = check_matrix(X, name="X")
        self.min_ = X.min(axis=0)
        self.range_ = X.max(axis=0) - self.min_
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Scale columns into [0, 1]; constant columns map to 0.5."""
        self._check_fitted()
        X = check_matrix(X, name="X")
        if X.shape[1] != self.min_.shape[0]:
            raise ValidationError(
                f"X has {X.shape[1]} columns, scaler was fitted with {self.min_.shape[0]}"
            )
        out = np.empty_like(X)
        nonconstant = self.range_ > 0
        out[:, nonconstant] = (
            X[:, nonconstant] - self.min_[nonconstant]
        ) / self.range_[nonconstant]
        out[:, ~nonconstant] = 0.5
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` then scale it."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X_scaled: np.ndarray) -> np.ndarray:
        """Map scaled values back to original units."""
        self._check_fitted()
        X_scaled = check_matrix(X_scaled, name="X_scaled")
        if X_scaled.shape[1] != self.min_.shape[0]:
            raise ValidationError(
                f"X_scaled has {X_scaled.shape[1]} columns, scaler was fitted with "
                f"{self.min_.shape[0]}"
            )
        return X_scaled * self.range_ + self.min_

    def _check_fitted(self) -> None:
        if self.min_ is None:
            raise NotFittedError("MinMaxScaler is not fitted; call fit first")
