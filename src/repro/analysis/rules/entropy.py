"""``wallclock-entropy`` — wall-clock reads stay in the timing tier.

"Bit-identical replay" means a result may depend only on its config and
seed. Wall-clock timestamps, OS randomness, and UUIDs smuggle ambient
state into outputs: a payload stamped with ``time.time()`` can never
equal its replay. Only the declared timing tier (``repro.bench``,
``benchmarks/``, the batch engine's elapsed-seconds bookkeeping) may
read these sources; elapsed-time measurement via ``time.perf_counter``
/ ``time.monotonic`` / ``time.sleep`` is allowed everywhere because it
never feeds stored values' identity.

A legitimate out-of-tier use (e.g. a created-at stamp excluded from
result identity) declares itself with an inline pragma, which is
exactly the audit trail the contract wants.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import RULES, ImportMap, LintRule, SourceFile, dotted_name
from repro.analysis.findings import Finding

#: Canonical call targets that read wall-clock time or OS entropy.
BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.asctime",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.randbits",
        "secrets.choice",
        "secrets.SystemRandom",
    }
)


@RULES.register("wallclock-entropy")
class WallclockEntropyRule(LintRule):
    """Forbid wall-clock/OS-entropy reads outside the timing tier."""

    rule_id = "wallclock-entropy"
    summary = (
        "time.time/datetime.now/os.urandom/uuid4-style ambient state is "
        "confined to the declared timing tier"
    )

    def check(self, src: SourceFile, config) -> "Iterator[Finding]":
        if config.in_timing_tier(src):
            return
        imports = ImportMap(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.canonical(dotted_name(node.func))
            if name in BANNED_CALLS:
                yield Finding(
                    src.relpath,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    f"{name} reads wall-clock/OS state outside the timing "
                    "tier; derive values from the config+seed, or declare "
                    "the tier/pragma if this never feeds result identity",
                )
