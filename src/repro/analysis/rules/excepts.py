"""``exception-hygiene`` — no broad catches that swallow failures.

Fault injection (dropped parties, exhausted budgets) and oracle tests
only work if unexpected exceptions *surface*. A bare ``except:`` or a
broad ``except Exception:`` that neither re-raises nor propagates turns
a real bug — a shape error inside a protocol round, a poisoned cache —
into silently-wrong results. The rule flags:

- every bare ``except:``;
- ``except Exception:`` / ``except BaseException:`` (alone or in a
  tuple) whose handler body contains no ``raise``.

Cleanup-on-failure code should prefer ``try/finally`` with a
success flag (which needs no catch at all) or catch the typed
:mod:`repro.exceptions` classes it actually expects.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import RULES, LintRule, SourceFile
from repro.analysis.findings import Finding

_BROAD = frozenset({"Exception", "BaseException"})


def _names(expr: ast.expr | None) -> "Iterator[str]":
    """Exception-class names caught by a handler's type expression."""
    if expr is None:
        return
    elements = expr.elts if isinstance(expr, ast.Tuple) else [expr]
    for element in elements:
        if isinstance(element, ast.Name):
            yield element.id
        elif isinstance(element, ast.Attribute):
            yield element.attr


def _reraises(body: list[ast.stmt]) -> bool:
    """True if the handler body contains a ``raise`` outside nested defs."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


@RULES.register("exception-hygiene")
class ExceptionHygieneRule(LintRule):
    """Flag bare excepts and broad catches that swallow without re-raise."""

    rule_id = "exception-hygiene"
    summary = (
        "no bare except, and broad Exception catches must re-raise — "
        "swallowed failures mask real bugs as wrong results"
    )

    def check(self, src: SourceFile, config) -> "Iterator[Finding]":
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    src.relpath,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    "bare except: catches everything, including "
                    "KeyboardInterrupt; name the exception types you expect",
                )
            elif any(n in _BROAD for n in _names(node.type)) and not _reraises(
                node.body
            ):
                yield Finding(
                    src.relpath,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    "broad except swallows the failure; re-raise, narrow to "
                    "typed repro.exceptions classes, or restructure as "
                    "try/finally with a success flag",
                )
