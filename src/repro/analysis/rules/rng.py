"""``rng-discipline`` — all randomness flows from explicit seeds.

The repo's reproducibility story rests on one discipline: every random
stream is a :class:`numpy.random.Generator` that arrived as a parameter
or was derived through :func:`repro.utils.random.spawn_rngs`'s
prefix-stable scheme. Three syntactic shapes break it:

- ``np.random.default_rng()`` with no seed (or an explicit ``None``)
  draws OS entropy — the bug class PR 1 fixed in the RF path;
- legacy module-level numpy randomness (``np.random.seed`` /
  ``np.random.normal`` / ``np.random.RandomState`` ...) shares one
  process-global stream, so results depend on call order and threading;
- the stdlib ``random`` module does both at once.

The fix is always the same: accept an ``rng`` argument and normalize it
with :func:`repro.utils.random.check_random_state`, or split an existing
stream with ``spawn_rngs``. The one sanctioned entropy opt-in
(``check_random_state(None, entropy=True)``) carries an inline pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import RULES, ImportMap, LintRule, SourceFile, dotted_name
from repro.analysis.findings import Finding

#: np.random attributes that are *not* the legacy global-stream API.
_GENERATOR_API = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


def _is_unseeded(call: ast.Call) -> bool:
    """True for ``default_rng()`` and ``default_rng(None)``."""
    if call.keywords:
        seed_kw = [kw for kw in call.keywords if kw.arg in (None, "seed")]
        if not seed_kw:
            return not call.args
        return all(
            isinstance(kw.value, ast.Constant) and kw.value.value is None
            for kw in seed_kw
            if kw.arg == "seed"
        ) and not call.args
    if not call.args:
        return True
    first = call.args[0]
    return isinstance(first, ast.Constant) and first.value is None


@RULES.register("rng-discipline")
class RngDisciplineRule(LintRule):
    """Forbid OS-entropy generators and process-global random streams."""

    rule_id = "rng-discipline"
    summary = (
        "randomness must come from an explicit seed or a spawn_rngs stream, "
        "never OS entropy or the process-global numpy/stdlib state"
    )

    def check(self, src: SourceFile, config) -> "Iterator[Finding]":
        imports = ImportMap(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.canonical(dotted_name(node.func))
            if name is None:
                continue
            if name == "numpy.random.default_rng" and _is_unseeded(node):
                yield Finding(
                    src.relpath,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    "unseeded np.random.default_rng() draws OS entropy; pass "
                    "an explicit seed or thread an rng parameter through",
                )
            elif name.startswith("numpy.random."):
                attr = name.split(".")[2]
                if attr not in _GENERATOR_API:
                    yield Finding(
                        src.relpath,
                        node.lineno,
                        node.col_offset,
                        self.rule_id,
                        f"np.random.{attr} uses the process-global legacy "
                        "stream; use a Generator from check_random_state/"
                        "spawn_rngs instead",
                    )
            elif name == "random" or name.startswith("random."):
                # Only flag when the head really is the stdlib module,
                # not a local variable that happens to be called `random`.
                if imports.aliases.get(name.split(".")[0], "").split(".")[0] == "random":
                    yield Finding(
                        src.relpath,
                        node.lineno,
                        node.col_offset,
                        self.rule_id,
                        "the stdlib random module is process-global and "
                        "unseeded; use numpy Generators via "
                        "check_random_state/spawn_rngs",
                    )
