"""``registry-completeness`` — registered components keep their contracts.

A registry turns components into data, which means a component can be
*registered* yet structurally unable to serve its callers — an attack
missing ``run`` only explodes when a scenario finally resolves the key.
This cross-module pass checks the two registries with protocol surfaces:

**Attacks** — every class reaching ``ATTACKS.register`` (as a decorator,
a direct value, or through ``functools.partial``) must provide the
:class:`~repro.api.attacks.ScenarioAttack` surface — ``prepare`` and
``run`` defined by the class or a project-visible base *other than* the
protocol root itself (whose stubs just raise), plus a ``name`` (class
attribute or ``self.name`` assignment).

**Experiments** — every ``ExperimentSpec(...)`` construction must wire
module-level functions (the batch engine pickles them into worker
processes), its ``trial_units`` function must actually consume its
``ScaleConfig`` parameter — an experiment that ignores scale cannot
offer the ``--smoke`` tier every entry owes the CI — and experiment ids
must be unique (``register_experiment`` replaces silently).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import RULES, LintRule, SourceFile, dotted_name
from repro.analysis.findings import Finding

_REQUIRED_ATTACK_METHODS = ("prepare", "run")


def _is_attack_register(func: ast.expr) -> bool:
    name = dotted_name(func)
    return name is not None and name.endswith("ATTACKS.register")


def _registered_class_name(value: ast.expr) -> "tuple[str, ast.expr] | None":
    """Class name referenced by a non-decorator registration value."""
    if isinstance(value, ast.Name):
        return value.id, value
    if isinstance(value, ast.Call):
        func_name = dotted_name(value.func)
        if func_name is not None and func_name.split(".")[-1] == "partial":
            if value.args and isinstance(value.args[0], ast.Name):
                return value.args[0].id, value.args[0]
            return None
        if isinstance(value.func, ast.Name):
            return value.func.id, value.func
    return None


def _class_surface(
    cls: ast.ClassDef,
    index: "dict[str, tuple[ast.ClassDef, SourceFile]]",
    protocol_root: str,
) -> "tuple[set[str], bool]":
    """(method/attr names, has_name) over the class and project bases.

    The protocol root's own definitions are excluded: its stubs exist to
    raise ``NotImplementedError``, so inheriting them satisfies nothing.
    """
    provided: set[str] = set()
    has_name = False
    seen: set[str] = set()
    stack = [cls]
    while stack:
        current = stack.pop()
        if current.name in seen:
            continue
        seen.add(current.name)
        for stmt in current.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                provided.add(stmt.name)
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Attribute)
                        and sub.attr == "name"
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                        and isinstance(getattr(sub, "ctx", None), ast.Store)
                    ):
                        has_name = True
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        provided.add(target.id)
                        has_name = has_name or target.id == "name"
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                provided.add(stmt.target.id)
                has_name = has_name or stmt.target.id == "name"
        for base in current.bases:
            base_name = dotted_name(base)
            if base_name is None:
                continue
            base_name = base_name.split(".")[-1]
            if base_name == protocol_root:
                continue
            entry = index.get(base_name)
            if entry is not None:
                stack.append(entry[0])
    return provided, has_name


@RULES.register("registry-completeness")
class RegistryCompletenessRule(LintRule):
    """Cross-module contracts for the attack and experiment registries."""

    rule_id = "registry-completeness"
    summary = (
        "registered attacks must carry the ScenarioAttack surface; "
        "ExperimentSpec entries must wire scale-aware module-level functions"
    )
    scope = "project"

    def check_project(
        self, sources: "list[SourceFile]", config
    ) -> "Iterator[Finding]":
        class_index: dict[str, tuple[ast.ClassDef, SourceFile]] = {}
        functions: dict[tuple[str, str], ast.FunctionDef] = {}
        for src in sources:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef) and node.name not in class_index:
                    class_index[node.name] = (node, src)
            for stmt in src.tree.body:
                if isinstance(stmt, ast.FunctionDef):
                    functions[(src.relpath, stmt.name)] = stmt

        yield from self._check_attacks(sources, class_index, config)
        yield from self._check_experiments(sources, functions)

    def _check_attacks(self, sources, class_index, config) -> "Iterator[Finding]":
        registered: list[tuple[str, ast.AST, SourceFile]] = []
        for src in sources:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef):
                    for dec in node.decorator_list:
                        if isinstance(dec, ast.Call) and _is_attack_register(dec.func):
                            registered.append((node.name, node, src))
                elif (
                    isinstance(node, ast.Call)
                    and _is_attack_register(node.func)
                    and len(node.args) >= 2
                ):
                    resolved = _registered_class_name(node.args[1])
                    if resolved is not None:
                        registered.append((resolved[0], node, src))
        for class_name, site, src in registered:
            entry = class_index.get(class_name)
            if entry is None:
                yield Finding(
                    src.relpath,
                    site.lineno,
                    site.col_offset,
                    self.rule_id,
                    f"registered attack {class_name!r} is not a class "
                    "defined in the linted sources",
                )
                continue
            cls, cls_src = entry
            provided, has_name = _class_surface(
                cls, class_index, config.attack_protocol_root
            )
            missing = [m for m in _REQUIRED_ATTACK_METHODS if m not in provided]
            if missing:
                yield Finding(
                    cls_src.relpath,
                    cls.lineno,
                    cls.col_offset,
                    self.rule_id,
                    f"attack {class_name!r} is registered but does not define "
                    f"{'/'.join(missing)}; the ScenarioAttack protocol "
                    "requires prepare(scenario) and run(x_adv, v)",
                )
            if not (has_name or "name" in provided):
                yield Finding(
                    cls_src.relpath,
                    cls.lineno,
                    cls.col_offset,
                    self.rule_id,
                    f"attack {class_name!r} carries no name attribute; "
                    "reports and ledgers identify attacks by name",
                )

    def _check_experiments(self, sources, functions) -> "Iterator[Finding]":
        seen_ids: dict[str, str] = {}
        component_names = ("trial_units", "run_unit", "aggregate")
        for src in sources:
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Call):
                    continue
                func_name = dotted_name(node.func)
                if func_name is None or func_name.split(".")[-1] != "ExperimentSpec":
                    continue
                if not node.args or not (
                    isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    continue
                experiment_id = node.args[0].value
                previous = seen_ids.get(experiment_id)
                if previous is not None:
                    yield Finding(
                        src.relpath,
                        node.lineno,
                        node.col_offset,
                        self.rule_id,
                        f"experiment id {experiment_id!r} already declared in "
                        f"{previous}; register_experiment replaces silently, "
                        "so duplicates shadow each other",
                    )
                else:
                    seen_ids[experiment_id] = src.relpath
                for position, component in enumerate(component_names, start=1):
                    if position >= len(node.args):
                        continue
                    arg = node.args[position]
                    if not isinstance(arg, ast.Name):
                        yield Finding(
                            src.relpath,
                            arg.lineno,
                            arg.col_offset,
                            self.rule_id,
                            f"{experiment_id}: {component} must be a reference "
                            "to a module-level function — the batch engine "
                            "pickles it into worker processes",
                        )
                        continue
                    fn = functions.get((src.relpath, arg.id))
                    if fn is None:
                        yield Finding(
                            src.relpath,
                            arg.lineno,
                            arg.col_offset,
                            self.rule_id,
                            f"{experiment_id}: {component} {arg.id!r} is not a "
                            "module-level function in this module (pickling "
                            "into workers requires one)",
                        )
                        continue
                    if component == "trial_units":
                        yield from self._check_trial_units(
                            src, experiment_id, fn
                        )

    def _check_trial_units(
        self, src: SourceFile, experiment_id: str, fn: ast.FunctionDef
    ) -> "Iterator[Finding]":
        params = [a.arg for a in fn.args.posonlyargs + fn.args.args]
        if not params:
            yield Finding(
                src.relpath,
                fn.lineno,
                fn.col_offset,
                self.rule_id,
                f"{experiment_id}: trial_units takes no ScaleConfig "
                "parameter, so the experiment cannot offer the --smoke tier",
            )
            return
        scale_param = params[0]
        used = any(
            isinstance(sub, ast.Name)
            and sub.id == scale_param
            and isinstance(sub.ctx, ast.Load)
            for stmt in fn.body
            for sub in ast.walk(stmt)
        )
        if not used:
            yield Finding(
                src.relpath,
                fn.lineno,
                fn.col_offset,
                self.rule_id,
                f"{experiment_id}: trial_units ignores its "
                f"{scale_param!r} parameter — an experiment that does not "
                "consume its ScaleConfig cannot scale down to --smoke",
            )
