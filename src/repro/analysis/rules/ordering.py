"""``ordered-iteration`` — no unordered producers feed ordered outputs.

Set iteration order and directory-listing order vary across processes
and platforms (hash randomization, filesystem order), so iterating them
into anything order-sensitive — a loop that appends, a ``join``, a
``list(...)`` that becomes a stored payload or a hash input — silently
breaks replay equality. The rule flags *syntactically direct* iteration
over unordered producers:

- set displays / comprehensions, ``set(...)`` / ``frozenset(...)`` calls;
- ``os.listdir`` / ``os.scandir`` / ``glob.glob`` / ``glob.iglob`` and
  pathlib's ``.glob`` / ``.rglob`` / ``.iterdir``.

The canonical fix is ``sorted(...)`` around the producer; order-free
reductions (``len``/``min``/``max``/``sum``/``any``/``all``, membership
tests, set algebra) are naturally not flagged because they never
*iterate* the producer into an ordered output.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import RULES, ImportMap, LintRule, SourceFile, dotted_name
from repro.analysis.findings import Finding

#: Canonical calls returning unordered (or fs-ordered) collections.
_UNORDERED_CALLS = frozenset(
    {"set", "frozenset", "os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Method names that walk a filesystem in platform order (pathlib).
_UNORDERED_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: Callables whose result does not depend on the argument's iteration
#: order; a comprehension fed directly into one of these is safe.
_ORDER_FREE_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"}
)

#: Callables that materialize their argument *in iteration order*.
_ORDER_SENSITIVE_CALLS = frozenset(
    {
        "list",
        "tuple",
        "enumerate",
        "iter",
        "map",
        "filter",
        "reversed",
        "zip",
        "numpy.array",
        "numpy.asarray",
        "numpy.fromiter",
    }
)


def _producer(node: ast.expr, imports: ImportMap) -> str | None:
    """Describe ``node`` if it is an unordered producer, else ``None``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set display"
    if not isinstance(node, ast.Call):
        return None
    name = imports.canonical(dotted_name(node.func))
    if name in _UNORDERED_CALLS:
        return f"{name}(...)"
    if isinstance(node.func, ast.Attribute) and node.func.attr in _UNORDERED_METHODS:
        return f".{node.func.attr}(...)"
    return None


@RULES.register("ordered-iteration")
class OrderedIterationRule(LintRule):
    """Flag direct iteration over sets and unsorted directory listings."""

    rule_id = "ordered-iteration"
    summary = (
        "sets and directory listings must pass through sorted() before "
        "feeding loops, joins, or materialized sequences"
    )

    def _finding(self, src: SourceFile, node: ast.expr, what: str, how: str) -> Finding:
        return Finding(
            src.relpath,
            node.lineno,
            node.col_offset,
            self.rule_id,
            f"{what} is iterated {how} in platform-dependent order; "
            "wrap it in sorted(...) to make the order part of the result",
        )

    def check(self, src: SourceFile, config) -> "Iterator[Finding]":
        imports = ImportMap(src.tree)
        # Comprehensions handed straight to an order-free reducer
        # (``sorted(x for x in set(...))``) are safe: the reducer erases
        # iteration order from the result.
        order_free: set[ast.expr] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                name = imports.canonical(dotted_name(node.func))
                if name in _ORDER_FREE_CALLS:
                    order_free.update(node.args)
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                what = _producer(node.iter, imports)
                if what is not None:
                    yield self._finding(src, node.iter, what, "by a for-loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if node in order_free:
                    continue
                for gen in node.generators:
                    what = _producer(gen.iter, imports)
                    if what is not None:
                        yield self._finding(src, gen.iter, what, "by a comprehension")
            elif isinstance(node, ast.Call):
                name = imports.canonical(dotted_name(node.func))
                is_join = (
                    isinstance(node.func, ast.Attribute) and node.func.attr == "join"
                )
                if name not in _ORDER_SENSITIVE_CALLS and not is_join:
                    continue
                consumer = "str.join" if is_join else f"{name}()"
                for arg in node.args:
                    what = _producer(arg, imports)
                    if what is not None:
                        yield self._finding(src, arg, what, f"by {consumer}")
