"""Meta rules emitted by the engine itself (never visited as AST passes).

Registered so ``--list-rules`` documents every rule id that can appear
in a report, and so pragmas naming them are recognized as known ids.
"""

from __future__ import annotations

from repro.analysis.core import RULES, LintRule


@RULES.register("suppression-hygiene")
class SuppressionHygieneRule(LintRule):
    """Pragmas must carry a reason, name known rules, and suppress something.

    Emitted by the engine after suppression matching: an allow-pragma
    with no reason, with an unknown rule id, or that suppressed no
    finding is itself a finding — suppressions are part of the audited
    contract surface, not a hole in it. These findings cannot be
    pragma-suppressed (only baselined), which keeps the loop closed.
    """

    rule_id = "suppression-hygiene"
    summary = "allow-pragmas must carry a reason, name known rules, and be used"
    scope = "meta"


@RULES.register("parse-error")
class ParseErrorRule(LintRule):
    """A file the linter was pointed at must at least parse.

    Emitted by the engine when ``ast.parse`` fails; a syntax error would
    otherwise silently exempt the file from every contract.
    """

    rule_id = "parse-error"
    summary = "files under lint must be parseable Python"
    scope = "meta"
