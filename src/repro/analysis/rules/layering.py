"""``layer-boundary`` — the import DAG of ``docs/architecture.md``, enforced.

The package is documented as a strict stack; this rule makes that
machine-checked. Every top-level package under ``repro`` carries a rank
(:data:`repro.analysis.config.DEFAULT_LAYER_RANKS`); a module may import
only packages of *strictly lower* rank (plus its own package). Equal
ranks mean "siblings, decoupled": ``attacks`` and ``federation`` sit at
the same height and may not reach into each other. A package missing
from the rank table is itself a finding — adding a subsystem requires
declaring where it sits.

The same rule enforces the query boundary: inside the attack-side
modules (``repro.attacks``, ``repro.api.attacks``) no ``.predict(...)``
/ ``.predict_proba(...)`` / ``.predict_all(...)`` call is allowed —
every model query flows through the metered
:class:`~repro.serving.PredictionService`, which is what makes query
budgets and audit defenses sound.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import RULES, LintRule, SourceFile
from repro.analysis.findings import Finding

#: Model-query attribute calls forbidden on the attack side.
_QUERY_METHODS = frozenset({"predict", "predict_proba", "predict_all"})


def _imported_repro_packages(tree: ast.Module) -> "Iterator[tuple[str, int, int]]":
    """Yield ``(package, line, col)`` for every ``repro.*`` import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                parts = item.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    yield parts[1], node.lineno, node.col_offset
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            parts = node.module.split(".")
            if parts[0] != "repro":
                continue
            if len(parts) > 1:
                yield parts[1], node.lineno, node.col_offset
            else:
                # ``from repro import serving`` names packages directly.
                for item in node.names:
                    yield item.name, node.lineno, node.col_offset


@RULES.register("layer-boundary")
class LayerBoundaryRule(LintRule):
    """Reject upward or sideways imports and attack-side model queries."""

    rule_id = "layer-boundary"
    summary = (
        "imports must point strictly down the architecture stack, and "
        "attack-side code must query models through PredictionService"
    )

    def check(self, src: SourceFile, config) -> "Iterator[Finding]":
        module = src.module
        if module is None or not module.startswith("repro"):
            return
        if module == "repro":
            # The package facade legitimately imports every layer.
            return
        own = src.package
        own_rank = config.layer_ranks.get(own) if own is not None else None
        if own is not None and own_rank is None:
            yield Finding(
                src.relpath,
                1,
                0,
                self.rule_id,
                f"package {own!r} has no rank in the layering config; "
                "declare where it sits in the stack "
                "(repro/analysis/config.py, docs/architecture.md)",
            )
        if own_rank is not None:
            for target, line, col in _imported_repro_packages(src.tree):
                if target == own:
                    continue
                target_rank = config.layer_ranks.get(target)
                if target_rank is None:
                    continue  # reported once, from the package's own modules
                if target_rank >= own_rank:
                    relation = "its own layer" if target_rank == own_rank else (
                        "a higher layer"
                    )
                    yield Finding(
                        src.relpath,
                        line,
                        col,
                        self.rule_id,
                        f"{own} (rank {own_rank}) imports {target} "
                        f"(rank {target_rank}) — {relation}; imports must "
                        "point strictly down the stack",
                    )
        if module in config.query_boundary_modules or (
            own is not None and f"repro.{own}" in config.query_boundary_modules
        ):
            for node in ast.walk(src.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _QUERY_METHODS
                ):
                    yield Finding(
                        src.relpath,
                        node.lineno,
                        node.col_offset,
                        self.rule_id,
                        f".{node.func.attr}() called from attack-side code; "
                        "queries go through the metered PredictionService "
                        "(scenario.service), never the model directly",
                    )
