"""``checkpoint-completeness`` — registered codecs round-trip every declared field.

A checkpoint codec that silently drops a field is the worst kind of bug
this repo can have: the snapshot writes cleanly, the resume restores
cleanly, and the run diverges bit-by-bit from an uninterrupted one with
nothing raising. The :class:`~repro.checkpoint.StateCodec` contract
defends against this with ``state_fields`` — the codec's own declaration
of every attribute it round-trips — and this rule cross-checks the
declaration against the implementation.

For every class reaching ``CHECKPOINTS.register`` (as a decorator or a
direct registration call):

- ``state_fields`` must be declared as a non-empty tuple of string
  literals — an empty or missing declaration means the codec's coverage
  is unverifiable;
- ``capture`` and ``restore`` methods must both be defined;
- every declared field name must appear in **both** method bodies,
  either as an attribute access (``obj.budget``) or as a string literal
  (``getattr(obj, "budget")``, ``meta["budget"]``) — a field captured
  but never restored (or vice versa) is exactly the silent divergence
  the contract exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import RULES, LintRule, SourceFile, dotted_name
from repro.analysis.findings import Finding

_REQUIRED_METHODS = ("capture", "restore")


def _is_checkpoint_register(func: ast.expr) -> bool:
    name = dotted_name(func)
    return name is not None and name.endswith("CHECKPOINTS.register")


def _registered_codec_classes(tree: ast.Module) -> "Iterator[ast.ClassDef]":
    """Every class registered into CHECKPOINTS, by decorator or call."""
    by_name: dict[str, ast.ClassDef] = {}
    called: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            by_name.setdefault(node.name, node)
            for dec in node.decorator_list:
                if isinstance(dec, ast.Call) and _is_checkpoint_register(dec.func):
                    yield node
        elif (
            isinstance(node, ast.Call)
            and _is_checkpoint_register(node.func)
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Name)
        ):
            called.add(node.args[1].id)
    for name in called:
        cls = by_name.get(name)
        if cls is not None:
            yield cls


def _declared_state_fields(
    cls: ast.ClassDef,
) -> "tuple[list[str] | None, ast.stmt | None]":
    """(field names, declaring statement); names None when malformed."""
    for stmt in cls.body:
        targets: list[ast.expr] = []
        value: "ast.expr | None" = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        if not any(
            isinstance(t, ast.Name) and t.id == "state_fields" for t in targets
        ):
            continue
        if isinstance(value, (ast.Tuple, ast.List)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            return [e.value for e in value.elts], stmt
        return None, stmt
    return None, None


def _mentioned_names(body: "Iterable[ast.stmt]") -> set[str]:
    """Attribute names and string literals appearing in a method body."""
    mentioned: set[str] = set()
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Attribute):
                mentioned.add(sub.attr)
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                mentioned.add(sub.value)
    return mentioned


@RULES.register("checkpoint-completeness")
class CheckpointCompletenessRule(LintRule):
    """Registered checkpoint codecs must round-trip every declared field."""

    rule_id = "checkpoint-completeness"
    summary = (
        "CHECKPOINTS codecs must declare non-empty state_fields and touch "
        "every declared field in both capture and restore"
    )
    scope = "file"

    def check(self, src: SourceFile, config) -> "Iterator[Finding]":
        for cls in _registered_codec_classes(src.tree):
            yield from self._check_codec(src, cls)

    def _check_codec(
        self, src: SourceFile, cls: ast.ClassDef
    ) -> "Iterator[Finding]":
        fields, declaration = _declared_state_fields(cls)
        if declaration is None:
            yield Finding(
                src.relpath,
                cls.lineno,
                cls.col_offset,
                self.rule_id,
                f"codec {cls.name!r} is registered but declares no "
                "state_fields; without the declaration the codec's "
                "coverage cannot be verified",
            )
        elif fields is None or not fields:
            yield Finding(
                src.relpath,
                declaration.lineno,
                declaration.col_offset,
                self.rule_id,
                f"codec {cls.name!r} must declare state_fields as a "
                "non-empty tuple of string literals naming every "
                "attribute it round-trips",
            )
            fields = None

        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        missing = [m for m in _REQUIRED_METHODS if m not in methods]
        if missing:
            yield Finding(
                src.relpath,
                cls.lineno,
                cls.col_offset,
                self.rule_id,
                f"codec {cls.name!r} is registered but does not define "
                f"{'/'.join(missing)}; the StateCodec contract requires "
                "capture(obj) and restore(obj, meta, arrays)",
            )
        if not fields:
            return
        for method_name in _REQUIRED_METHODS:
            method = methods.get(method_name)
            if method is None:
                continue
            mentioned = _mentioned_names(method.body)
            for field in fields:
                if field not in mentioned:
                    yield Finding(
                        src.relpath,
                        method.lineno,
                        method.col_offset,
                        self.rule_id,
                        f"codec {cls.name!r} declares state field "
                        f"{field!r} but {method_name} never touches it — "
                        "a field handled on only one side of the "
                        "round-trip is a silent resume divergence",
                    )
