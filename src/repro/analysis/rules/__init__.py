"""Built-in lint rules; importing this package populates ``RULES``.

Each module encodes one repo contract as an AST pass — see the rule
docstrings (or ``repro-lint --list-rules``) for the contract each one
defends and the canonical fix for a violation.
"""

from repro.analysis.rules import (  # noqa: F401  (registration side-effects)
    checkpointing,
    entropy,
    excepts,
    layering,
    meta,
    ordering,
    registries,
    rng,
)
