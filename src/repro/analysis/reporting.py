"""Render a :class:`~repro.analysis.engine.LintReport` as text or JSON.

The JSON document is a stable schema (``schema`` key, currently 1) so CI
and tooling can consume reports without scraping the human output.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport

#: Version of the ``--format json`` document.
JSON_SCHEMA_VERSION = 1


def to_text(report: LintReport, *, strict: bool = False) -> str:
    """The human-readable report: one line per finding plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}"
        for f in report.findings
    ]
    summary = (
        f"{len(report.findings)} finding(s) in {report.n_files} file(s)"
        f" ({len(report.suppressed)} suppressed by pragma,"
        f" {len(report.baselined)} baselined)"
    )
    if report.stale_baseline:
        state = "error" if strict else "note"
        summary += (
            f"; {state}: {len(report.stale_baseline)} stale baseline entrie(s) —"
            " re-run with --write-baseline to prune"
        )
    lines.append(summary)
    return "\n".join(lines)


def to_json(report: LintReport, *, strict: bool = False) -> str:
    """The machine-readable report (sorted keys, trailing newline)."""
    payload = {
        "schema": JSON_SCHEMA_VERSION,
        "tool": "repro-lint",
        "strict": strict,
        "files_checked": report.n_files,
        "findings": [f.to_payload() for f in report.findings],
        "suppressed": [f.to_payload() for f in report.suppressed],
        "baselined": [f.to_payload() for f in report.baselined],
        "stale_baseline": list(report.stale_baseline),
        "counts": {
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "stale_baseline": len(report.stale_baseline),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
