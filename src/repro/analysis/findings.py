"""Finding records and stable fingerprints.

A :class:`Finding` is one rule violation at one source location. Findings
are value objects: the engine sorts them into a deterministic order and
fingerprints them for the baseline workflow, so two runs over the same
tree always produce byte-identical reports.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Path of the offending file, POSIX-style, relative to the lint
        root (so fingerprints are machine-portable).
    line, col:
        1-based line and 0-based column of the offending node.
    rule:
        Registered rule id (``"rng-discipline"``, ...).
    message:
        Human-readable statement of the violated contract.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_payload(self) -> dict:
        """JSON-serializable form (the ``findings[]`` schema of ``--format json``)."""
        return asdict(self)


def fingerprint(finding: Finding, line_text: str, occurrence: int) -> str:
    """Stable identity of a finding for the baseline file.

    Hashes the rule id, the file path, the *stripped source text* of the
    offending line, and an occurrence index (disambiguating identical
    lines), but never the line number — so grandfathered findings survive
    unrelated edits that shift code up or down.
    """
    blob = "\x00".join(
        [finding.rule, finding.path, line_text.strip(), str(occurrence)]
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]
