"""Inline pragmas and the checked-in baseline.

Two escape hatches keep ``--strict`` usable on a living codebase:

**Inline pragma** — ``# repro: allow[rule-id] reason`` on the offending
line (or on a comment line directly above it) suppresses that rule
there. The reason is mandatory: a suppression without one is itself a
finding (``suppression-hygiene``), as is a pragma that suppresses
nothing or names an unknown rule — so pragmas cannot rot silently.

**Baseline** — a JSON file of fingerprints for grandfathered findings
(see :func:`repro.analysis.findings.fingerprint`). ``--write-baseline``
records the current findings; subsequent runs report only *new* ones.
Stale entries (fixed findings still in the file) fail ``--strict`` so
the baseline only ever shrinks.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<ids>[A-Za-z0-9_\-, ]+)\]\s*(?P<reason>.*)$"
)

#: Schema version of the baseline file.
BASELINE_VERSION = 1


@dataclass
class Pragma:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rule_ids: tuple[str, ...]
    reason: str
    used: set[str] = field(default_factory=set)


def scan_pragmas(text: str) -> dict[int, Pragma]:
    """Find every allow-pragma in a module, keyed by 1-based line.

    Scans real ``COMMENT`` tokens only, so pragma syntax quoted inside a
    docstring or string literal is documentation, not a suppression.
    """
    pragmas: dict[int, Pragma] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = PRAGMA_RE.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        pragmas[line] = Pragma(line, ids, match.group("reason").strip())
    return pragmas


def pragma_for(
    finding: Finding, pragmas: dict[int, Pragma], lines: list[str]
) -> Pragma | None:
    """The pragma suppressing ``finding``, if any.

    A pragma applies from its own line, or from a comment-only line
    immediately above the offending one.
    """
    direct = pragmas.get(finding.line)
    if direct is not None and finding.rule in direct.rule_ids:
        return direct
    above = pragmas.get(finding.line - 1)
    if (
        above is not None
        and finding.rule in above.rule_ids
        and finding.line - 2 < len(lines)
        and lines[finding.line - 2].lstrip().startswith("#")
    ):
        return above
    return None


def load_baseline(path: Path) -> dict[str, dict]:
    """Read a baseline file; an absent file is an empty baseline."""
    if not path.is_file():
        return {}
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"{path} is not a repro-lint baseline file")
    return dict(payload["entries"])


def write_baseline(path: Path, entries: dict[str, dict]) -> None:
    """Write ``entries`` as a sorted, diff-friendly baseline file."""
    payload = {
        "version": BASELINE_VERSION,
        "tool": "repro-lint",
        "entries": {key: entries[key] for key in sorted(entries)},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
