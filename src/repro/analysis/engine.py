"""The lint engine: collect, parse, run rules, suppress, baseline.

:func:`run_lint` is the single entry point both the CLI and the test
suite drive. The pipeline is deterministic end to end — files are
visited in sorted order, findings are sorted, fingerprints hash content
rather than line numbers — so a lint report is itself a reproducible
artifact.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.config import LintConfig, find_root, load_config
from repro.analysis.core import RULES, LintRule, SourceFile, module_name_for
from repro.analysis.findings import Finding, fingerprint
from repro.analysis.suppressions import (
    Pragma,
    load_baseline,
    pragma_for,
    scan_pragmas,
)
from repro.exceptions import ValidationError


@dataclass
class LintReport:
    """Everything one lint run produced, already sorted."""

    root: Path
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    n_files: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when any active finding remains."""
        return 1 if self.findings else 0

    def strict_exit_code(self) -> int:
        """Like :attr:`exit_code`, but stale baseline entries also fail."""
        return 1 if (self.findings or self.stale_baseline) else 0

    def fingerprints(self, sources: "dict[str, SourceFile]") -> dict[str, dict]:
        """Baseline entries for the current active findings."""
        return _fingerprint_all(self.findings, sources)


def _fingerprint_all(
    findings: "list[Finding]", sources: "dict[str, SourceFile]"
) -> dict[str, dict]:
    entries: dict[str, dict] = {}
    occurrences: dict[tuple[str, str, str], int] = {}
    for finding in sorted(findings):
        src = sources.get(finding.path)
        line_text = ""
        if src is not None and 0 < finding.line <= len(src.lines):
            line_text = src.lines[finding.line - 1]
        key = (finding.rule, finding.path, line_text.strip())
        index = occurrences.get(key, 0)
        occurrences[key] = index + 1
        entries[fingerprint(finding, line_text, index)] = finding.to_payload()
    return entries


def _excluded(relpath: str, config: LintConfig) -> bool:
    path = Path(relpath)
    for pattern in config.exclude:
        prefix = pattern.rstrip("*/")
        if relpath.startswith(prefix) or path.match(pattern):
            return True
    return False


def collect_sources(
    paths: "list[Path]", root: Path, config: LintConfig
) -> "tuple[list[SourceFile], list[Finding]]":
    """Parse every ``.py`` file under ``paths``, sorted and de-duplicated."""
    files: list[Path] = []
    for path in paths:
        path = path.resolve()
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise ValidationError(f"not a Python file or directory: {path}")
    sources: list[SourceFile] = []
    failures: list[Finding] = []
    seen: set[Path] = set()
    for path in files:
        if path in seen:
            continue
        seen.add(path)
        try:
            relpath = path.relative_to(root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        if _excluded(relpath, config):
            continue
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            failures.append(
                Finding(
                    relpath,
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    "parse-error",
                    f"syntax error: {exc.msg}",
                )
            )
            continue
        sources.append(
            SourceFile(
                path=path,
                relpath=relpath,
                module=module_name_for(path),
                text=text,
                lines=text.splitlines(),
                tree=tree,
            )
        )
    return sources, failures


def _selected_rules(select: "list[str] | None") -> "list[LintRule]":
    names = RULES.names() if select is None else list(select)
    return [RULES.get(name)() for name in names]


def _apply_pragmas(
    raw: "list[Finding]", pragma_maps: "dict[str, dict[int, Pragma]]",
    sources: "dict[str, SourceFile]",
) -> "tuple[list[Finding], list[Finding]]":
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        if finding.rule in ("suppression-hygiene", "parse-error"):
            active.append(finding)
            continue
        src = sources.get(finding.path)
        pragma = None
        if src is not None:
            pragma = pragma_for(
                finding, pragma_maps.get(finding.path, {}), src.lines
            )
        if pragma is None:
            active.append(finding)
        else:
            pragma.used.add(finding.rule)
            suppressed.append(finding)
    return active, suppressed


def _pragma_hygiene(
    pragma_maps: "dict[str, dict[int, Pragma]]",
) -> "list[Finding]":
    findings: list[Finding] = []
    known = set(RULES.names())
    for relpath in sorted(pragma_maps):
        for line in sorted(pragma_maps[relpath]):
            pragma = pragma_maps[relpath][line]
            unknown = [rid for rid in pragma.rule_ids if rid not in known]
            if unknown:
                findings.append(
                    Finding(
                        relpath,
                        pragma.line,
                        0,
                        "suppression-hygiene",
                        f"pragma names unknown rule id(s) {unknown}; "
                        "see repro-lint --list-rules",
                    )
                )
            if not pragma.reason:
                findings.append(
                    Finding(
                        relpath,
                        pragma.line,
                        0,
                        "suppression-hygiene",
                        "pragma carries no reason; write "
                        "'# repro: allow[rule-id] why this is sound'",
                    )
                )
            unused = [
                rid
                for rid in pragma.rule_ids
                if rid in known and rid not in pragma.used
            ]
            if unused:
                findings.append(
                    Finding(
                        relpath,
                        pragma.line,
                        0,
                        "suppression-hygiene",
                        f"pragma suppresses nothing for {unused}; "
                        "remove it so suppressions cannot rot",
                    )
                )
    return findings


def run_lint(
    paths: "list[str | Path]",
    *,
    root: "str | Path | None" = None,
    config: "LintConfig | None" = None,
    select: "list[str] | None" = None,
    baseline: "str | Path | None" = None,
) -> "tuple[LintReport, dict[str, SourceFile]]":
    """Lint ``paths`` and return ``(report, sources_by_relpath)``.

    Parameters
    ----------
    paths:
        Files or directories to lint.
    root:
        Project root for relative paths and pyproject config discovery;
        auto-detected from the first path when omitted.
    config:
        Explicit :class:`LintConfig`; defaults to
        :func:`~repro.analysis.config.load_config` at ``root``.
    select:
        Rule ids to run (default: all registered rules).
    baseline:
        Baseline file of grandfathered fingerprints; matched findings
        move out of the failing set.
    """
    resolved = [Path(p) for p in paths]
    if not resolved:
        raise ValidationError("no paths to lint")
    root_path = find_root(resolved[0]) if root is None else Path(root).resolve()
    cfg = load_config(root_path) if config is None else config
    sources, parse_failures = collect_sources(resolved, root_path, cfg)
    by_path = {src.relpath: src for src in sources}

    raw: list[Finding] = list(parse_failures)
    rules = _selected_rules(select)
    file_rules = [r for r in rules if r.scope == "file"]
    project_rules = [r for r in rules if r.scope == "project"]
    for src in sources:
        for rule in file_rules:
            raw.extend(rule.check(src, cfg))
    for rule in project_rules:
        raw.extend(rule.check_project(sources, cfg))

    pragma_maps = {src.relpath: scan_pragmas(src.text) for src in sources}
    active, suppressed = _apply_pragmas(raw, pragma_maps, by_path)
    if select is None or "suppression-hygiene" in select:
        active.extend(_pragma_hygiene(pragma_maps))

    report = LintReport(root=root_path, n_files=len(sources))
    baseline_path = baseline or cfg.baseline_path
    baseline_entries: dict[str, dict] = {}
    if baseline_path is not None:
        resolved_baseline = Path(baseline_path)
        if not resolved_baseline.is_absolute():
            resolved_baseline = root_path / resolved_baseline
        baseline_entries = load_baseline(resolved_baseline)

    if baseline_entries:
        current = _fingerprint_all(active, by_path)
        matched_fps = {fp for fp in current if fp in baseline_entries}
        matched_payloads = [
            current[fp] for fp in current if fp in matched_fps
        ]
        matched_keys = {
            (p["path"], p["line"], p["col"], p["rule"], p["message"])
            for p in matched_payloads
        }
        for finding in active:
            key = (
                finding.path,
                finding.line,
                finding.col,
                finding.rule,
                finding.message,
            )
            if key in matched_keys:
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
        report.stale_baseline = sorted(
            fp for fp in baseline_entries if fp not in matched_fps
        )
    else:
        report.findings = list(active)

    report.findings.sort()
    report.suppressed = sorted(suppressed)
    report.baselined.sort()
    return report, by_path
