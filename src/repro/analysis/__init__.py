"""repro.analysis — the ``repro-lint`` static contract checker.

Every subsystem in this repo rests on hand-enforced contracts: rngs flow
through the ``spawn_rngs`` prefix scheme, no value crosses a party
boundary outside the metered codec, results depend only on (config,
seed). Runtime oracle tests defend those contracts after the fact; this
package rejects contract-violating code *before* it runs.

The framework mirrors the repo's registry idiom: :data:`RULES` maps rule
ids to AST-visitor rule classes, exactly as ``ATTACKS`` maps attack
keys to adapters. Shipped rules:

- ``rng-discipline`` — no OS-entropy or process-global randomness;
- ``wallclock-entropy`` — wall-clock reads confined to the timing tier;
- ``ordered-iteration`` — no unordered producers feeding ordered outputs;
- ``layer-boundary`` — the architecture stack's import DAG, plus the
  attacks-query-through-PredictionService boundary;
- ``exception-hygiene`` — no broad catches that swallow failures;
- ``registry-completeness`` — registered attacks/experiments keep their
  protocol surfaces (cross-module).

Escape hatches: inline ``# repro: allow[rule-id] reason`` pragmas and a
checked-in fingerprint baseline — both audited by the
``suppression-hygiene`` meta rule. Drive it via the ``repro-lint``
console script (``repro-lint src --strict`` is the CI gate) or
:func:`run_lint`.
"""

from repro.analysis import rules  # noqa: F401  (populate RULES on import)
from repro.analysis.config import LintConfig, load_config
from repro.analysis.core import RULES, LintRule, SourceFile
from repro.analysis.engine import LintReport, run_lint
from repro.analysis.findings import Finding, fingerprint
from repro.analysis.reporting import to_json, to_text

__all__ = [
    "RULES",
    "Finding",
    "LintConfig",
    "LintReport",
    "LintRule",
    "SourceFile",
    "fingerprint",
    "load_config",
    "run_lint",
    "to_json",
    "to_text",
]
