"""Lint configuration: the repo's contracts, encoded as data.

The defaults below are the authoritative machine-readable form of the
invariants prose-documented in ``docs/architecture.md``:

- :data:`DEFAULT_LAYER_RANKS` encodes the import stack (a module may only
  import packages of *strictly lower* rank, plus its own package).
- :data:`DEFAULT_TIMING_MODULES` / :data:`DEFAULT_TIMING_PATHS` declare
  the timing tier — the only code allowed to read wall-clock sources.
- :data:`DEFAULT_QUERY_BOUNDARY_MODULES` names the attack-side modules
  that must reach deployed models through the
  :class:`~repro.serving.PredictionService` rather than calling
  ``predict`` directly.

Projects can override the file-selection knobs via a
``[tool.repro-lint]`` table in ``pyproject.toml`` (keys ``exclude``,
``timing-modules``, ``timing-paths``, ``baseline``); the contract
encodings themselves are code, changed only alongside the architecture
they describe.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

#: Import stack, low to high. Equal ranks may not import each other,
#: which keeps sibling subsystems (attacks vs federation) decoupled.
DEFAULT_LAYER_RANKS: dict[str, int] = {
    "exceptions": 0,
    "utils": 1,
    "checkpoint": 2,
    "config": 2,
    "tensor": 2,
    "datasets": 3,
    "nn": 3,
    "resilience": 3,
    "telemetry": 3,
    "models": 4,
    "metrics": 5,
    "federated": 5,
    "federation": 6,
    "attacks": 6,
    "defenses": 7,
    "serving": 8,
    "bench": 9,
    "api": 9,
    "workload": 10,
    "experiments": 11,
    "analysis": 12,
}

#: Modules granted wall-clock access (benchmark timing tier).
#: ``repro.telemetry.wall`` is the telemetry layer's single sanctioned
#: wall-clock reader; the rest of ``repro.telemetry`` stays banned.
DEFAULT_TIMING_MODULES: frozenset[str] = frozenset(
    {"repro.bench", "repro.experiments.batch", "repro.telemetry.wall"}
)

#: Path prefixes (relative to the lint root) granted wall-clock access.
DEFAULT_TIMING_PATHS: tuple[str, ...] = ("benchmarks/",)

#: Attack-side modules: model queries must go through PredictionService.
DEFAULT_QUERY_BOUNDARY_MODULES: frozenset[str] = frozenset(
    {"repro.attacks", "repro.api.attacks"}
)

#: Default glob patterns excluded from linting.
DEFAULT_EXCLUDE: tuple[str, ...] = (
    "tests/fixtures/*",
    ".cache/*",
    "build/*",
    ".git/*",
)


@dataclass(frozen=True)
class LintConfig:
    """Everything a rule consults besides the AST itself."""

    layer_ranks: dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_LAYER_RANKS)
    )
    timing_modules: frozenset[str] = DEFAULT_TIMING_MODULES
    timing_paths: tuple[str, ...] = DEFAULT_TIMING_PATHS
    query_boundary_modules: frozenset[str] = DEFAULT_QUERY_BOUNDARY_MODULES
    attack_protocol_root: str = "ScenarioAttack"
    exclude: tuple[str, ...] = DEFAULT_EXCLUDE
    baseline_path: str | None = None

    def in_timing_tier(self, src) -> bool:
        """True when ``src`` may legitimately read wall-clock sources."""
        if src.module is not None and src.module in self.timing_modules:
            return True
        return any(src.relpath.startswith(p) for p in self.timing_paths)


def find_root(start: Path) -> Path:
    """Nearest ancestor holding a ``pyproject.toml`` (else ``start`` itself)."""
    start = start.resolve()
    if start.is_file():
        start = start.parent
    for candidate in [start, *start.parents]:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def load_config(root: Path) -> LintConfig:
    """Build the config for ``root``, applying ``[tool.repro-lint]`` overrides."""
    config = LintConfig()
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return config
    import tomllib

    try:
        table = tomllib.loads(pyproject.read_text()).get("tool", {}).get(
            "repro-lint", {}
        )
    except tomllib.TOMLDecodeError:
        return config
    if not isinstance(table, dict):
        return config
    if "exclude" in table:
        config = replace(
            config,
            exclude=config.exclude + tuple(str(p) for p in table["exclude"]),
        )
    if "timing-modules" in table:
        config = replace(
            config,
            timing_modules=config.timing_modules
            | frozenset(str(m) for m in table["timing-modules"]),
        )
    if "timing-paths" in table:
        config = replace(
            config,
            timing_paths=config.timing_paths
            + tuple(str(p) for p in table["timing-paths"]),
        )
    if "baseline" in table:
        config = replace(config, baseline_path=str(table["baseline"]))
    return config
