"""Rule base classes, the ``RULES`` registry, and shared AST helpers.

The framework reuses the repo's string-keyed :class:`~repro.api.registry.Registry`
idiom: every lint rule is a class registered under its rule id, exactly
like attacks or defenses. A rule declares its ``scope``:

``"file"``
    ``check(src, config)`` is called once per parsed module and sees only
    that module — the common case.
``"project"``
    ``check_project(sources, config)`` is called once with every parsed
    module, for cross-module contracts (registry completeness).
``"meta"``
    Emitted by the engine itself (suppression hygiene, parse errors);
    registered so ``--list-rules`` documents them, never invoked.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, TYPE_CHECKING

from repro.api.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.config import LintConfig
    from repro.analysis.findings import Finding

#: Lint rules, keyed by rule id (kebab-case, stable across releases).
RULES = Registry("lint rule")


@dataclass
class SourceFile:
    """One parsed module: path, dotted module name, text, and AST."""

    path: Path
    relpath: str
    module: str | None
    text: str
    lines: list[str] = field(repr=False)
    tree: ast.Module = field(repr=False)

    @property
    def package(self) -> str | None:
        """Second segment of the dotted module name (``repro.models.tree``
        -> ``models``; top-level modules return their own name)."""
        if self.module is None or not self.module.startswith("repro."):
            return None
        return self.module.split(".")[1]


def module_name_for(path: Path) -> str | None:
    """Dotted module name derived by walking ``__init__.py`` parents.

    Returns ``None`` for scripts that live outside any package (e.g.
    ``benchmarks/bench_models.py``).
    """
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if len(parts) == 1:
        return None
    if parts[0] == "__init__":
        parts = parts[1:]
    return ".".join(reversed(parts))


class LintRule:
    """Base class for every rule; subclasses register into :data:`RULES`."""

    rule_id: str = ""
    summary: str = ""
    scope: str = "file"

    def check(self, src: SourceFile, config: "LintConfig") -> "Iterable[Finding]":
        """File-scope entry point; yields findings for one module."""
        return ()

    def check_project(
        self, sources: "list[SourceFile]", config: "LintConfig"
    ) -> "Iterable[Finding]":
        """Project-scope entry point; sees every module at once."""
        return ()


class ImportMap:
    """Alias -> canonical dotted-path map for one module's imports.

    Lets rules resolve ``np.random.default_rng`` and
    ``from numpy.random import default_rng; default_rng()`` to the same
    canonical name ``numpy.random.default_rng`` without executing code.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    bound = item.asname or item.name.split(".")[0]
                    canonical = item.name if item.asname else item.name.split(".")[0]
                    self.aliases[bound] = canonical
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for item in node.names:
                    if item.name == "*":
                        continue
                    bound = item.asname or item.name
                    self.aliases[bound] = f"{node.module}.{item.name}"

    def canonical(self, dotted: str | None) -> str | None:
        """Rewrite the leading alias of a dotted chain to its import path."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        base = self.aliases.get(head)
        if base is None:
            return dotted
        return f"{base}.{rest}" if rest else base


def dotted_name(node: ast.expr) -> str | None:
    """Flatten a ``Name``/``Attribute`` chain into ``"a.b.c"`` (else ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))
