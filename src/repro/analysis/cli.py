"""``repro-lint`` — the console entry point of the contract checker.

Usage::

    repro-lint src                      # lint, human output, exit 1 on findings
    repro-lint src --strict             # CI mode: stale baseline entries also fail
    repro-lint src --format json        # machine-readable report
    repro-lint src --write-baseline     # grandfather current findings
    repro-lint --list-rules             # every rule id and its contract

Exit codes: 0 clean, 1 findings (or, under ``--strict``, a stale
baseline), 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import repro.analysis.rules  # noqa: F401  (populate RULES)
from repro.analysis.core import RULES
from repro.analysis.engine import run_lint
from repro.analysis.reporting import to_json, to_text
from repro.analysis.suppressions import write_baseline
from repro.exceptions import ValidationError

#: Default baseline filename, resolved against the project root.
DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based contract checker for the repro codebase: determinism "
            "(rng/wallclock/ordering), layering, exception hygiene, and "
            "registry completeness."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="CI mode: also fail on stale baseline entries",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} at the project root)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--root", default=None, help="project root (default: auto-detected)"
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and its contract, then exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule_id in RULES.names():
        rule = RULES.get(rule_id)
        lines.append(f"{rule_id} [{rule.scope}]")
        lines.append(f"    {rule.summary}")
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """Run the linter; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    select = None
    if args.select is not None:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    baseline = args.baseline
    try:
        if baseline is None:
            root_probe = Path(args.root) if args.root else Path(args.paths[0])
            from repro.analysis.config import find_root

            default = find_root(root_probe) / DEFAULT_BASELINE
            baseline = str(default) if default.is_file() else None
        report, sources = run_lint(
            args.paths,
            root=args.root,
            select=select,
            baseline=None if args.write_baseline else baseline,
        )
    except (ValidationError, OSError, ValueError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        target = Path(baseline) if baseline else report.root / DEFAULT_BASELINE
        write_baseline(target, report.fingerprints(sources))
        print(
            f"wrote {len(report.findings)} finding(s) to {target}",
            file=sys.stderr,
        )
        return 0
    if args.format == "json":
        sys.stdout.write(to_json(report, strict=args.strict))
    else:
        print(to_text(report, strict=args.strict))
    return report.strict_exit_code() if args.strict else report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
