"""Tests for synthetic generators, the Table II registry, and scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    MinMaxScaler,
    get_spec,
    list_datasets,
    load_dataset,
    make_classification,
    make_correlated_tabular,
    table2_rows,
)
from repro.exceptions import DatasetError, NotFittedError, ValidationError
from repro.utils.numeric import pearson_correlation


class TestMakeClassification:
    def test_shapes(self):
        X, y = make_classification(100, 8, n_classes=3, rng=0)
        assert X.shape == (100, 8) and y.shape == (100,)

    def test_all_classes_present(self):
        _, y = make_classification(500, 6, n_classes=4, rng=0)
        assert set(np.unique(y)) == {0, 1, 2, 3}

    def test_deterministic(self):
        a = make_classification(50, 5, rng=3)[0]
        b = make_classification(50, 5, rng=3)[0]
        np.testing.assert_array_equal(a, b)

    def test_separable_with_high_class_sep(self):
        from repro.models import LogisticRegression
        from repro.datasets import MinMaxScaler

        X, y = make_classification(400, 6, n_classes=2, class_sep=3.0, rng=1)
        X = MinMaxScaler().fit_transform(X)
        assert LogisticRegression(epochs=40, rng=0).fit(X, y).score(X, y) > 0.85

    def test_informative_plus_redundant_capped(self):
        with pytest.raises(DatasetError):
            make_classification(10, 3, n_informative=3, n_redundant=2)

    def test_single_class_rejected(self):
        with pytest.raises(DatasetError):
            make_classification(10, 3, n_classes=1)


class TestMakeCorrelatedTabular:
    def test_shapes_and_labels(self):
        X, y = make_correlated_tabular(200, 10, n_classes=3, rng=0)
        assert X.shape == (200, 10)
        assert y.min() >= 0 and y.max() < 3

    def test_cross_column_correlation_exists(self):
        """The factor structure must induce |r| clearly above independence."""
        X, _ = make_correlated_tabular(2000, 12, factor_strength=0.9, rng=0)
        corrs = [
            abs(pearson_correlation(X[:, i], X[:, j]))
            for i in range(6)
            for j in range(6, 12)
        ]
        assert max(corrs) > 0.3

    def test_label_feature_dependence(self):
        X, y = make_correlated_tabular(3000, 8, n_classes=2, rng=1)
        corrs = [abs(pearson_correlation(X[:, i], y.astype(float))) for i in range(8)]
        assert max(corrs) > 0.1

    def test_marginal_gamma_controls_skew(self):
        """E[x²] of the U(0,1)^γ marginal must be ≈ 1/(2γ+1)."""
        for gamma in (1.0, 3.0, 6.0):
            X, _ = make_correlated_tabular(4000, 5, marginal_gamma=gamma, rng=2)
            assert np.mean(X**2) == pytest.approx(1.0 / (2 * gamma + 1), rel=0.05)

    def test_marginal_gamma_preserves_rank_correlation(self):
        X_raw, _ = make_correlated_tabular(1000, 6, rng=3)
        X_skew, _ = make_correlated_tabular(1000, 6, marginal_gamma=3.0, rng=3)
        # Same seed → same ranks → same orderings per column.
        np.testing.assert_array_equal(
            np.argsort(X_raw, axis=0), np.argsort(X_skew, axis=0)
        )

    def test_invalid_gamma(self):
        with pytest.raises(ValidationError):
            make_correlated_tabular(10, 3, marginal_gamma=0.0)

    def test_invalid_factor_strength(self):
        with pytest.raises(ValidationError):
            make_correlated_tabular(10, 3, factor_strength=1.0)


class TestRegistry:
    def test_table2_matches_paper(self):
        rows = {name: (n, c, d) for name, n, c, d in table2_rows()}
        assert rows["bank"] == (45211, 2, 20)
        assert rows["credit"] == (30000, 2, 23)
        assert rows["drive"] == (58509, 11, 48)
        assert rows["news"] == (39797, 5, 59)
        assert rows["synthetic1"] == (100000, 10, 25)
        assert rows["synthetic2"] == (100000, 5, 50)

    def test_list_datasets(self):
        assert set(list_datasets()) == {
            "bank", "credit", "drive", "news", "synthetic1", "synthetic2",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            get_spec("adult")
        with pytest.raises(DatasetError):
            load_dataset("adult")

    def test_subsampled_load(self):
        ds = load_dataset("bank", n_samples=300)
        assert ds.X.shape == (300, 20)
        assert ds.n_classes == 2

    def test_values_normalized_to_unit_interval(self):
        ds = load_dataset("credit", n_samples=400)
        assert ds.X.min() >= 0.0 and ds.X.max() <= 1.0

    def test_all_classes_present_after_subsample(self):
        ds = load_dataset("drive", n_samples=500)
        assert np.unique(ds.y).size == 11

    def test_deterministic_by_default(self):
        a = load_dataset("news", n_samples=200)
        b = load_dataset("news", n_samples=200)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_custom_rng_changes_data(self):
        a = load_dataset("news", n_samples=200, rng=1)
        b = load_dataset("news", n_samples=200, rng=2)
        assert not np.array_equal(a.X, b.X)

    def test_synthetic_kind_loads(self):
        ds = load_dataset("synthetic1", n_samples=500)
        assert ds.n_features == 25 and ds.spec.n_classes == 10

    def test_invalid_sample_count(self):
        with pytest.raises(DatasetError):
            load_dataset("bank", n_samples=0)


class TestMinMaxScaler:
    def test_scales_to_unit_interval(self):
        X = np.random.default_rng(0).normal(5, 10, size=(50, 3))
        out = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)

    @given(st.integers(0, 1000))
    @settings(max_examples=25)
    def test_inverse_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(20, 4)) * rng.uniform(0.5, 10)
        scaler = MinMaxScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-9
        )

    def test_constant_column_maps_to_half(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        out = MinMaxScaler().fit_transform(X)
        np.testing.assert_array_equal(out[:, 0], 0.5)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.ones((2, 2)))

    def test_width_mismatch_rejected(self):
        scaler = MinMaxScaler().fit(np.ones((5, 3)) * np.arange(3))
        with pytest.raises(ValidationError):
            scaler.transform(np.ones((2, 4)))
        with pytest.raises(ValidationError):
            scaler.inverse_transform(np.ones((2, 4)))

    def test_transform_new_data_uses_fitted_range(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        np.testing.assert_allclose(scaler.transform(np.array([[5.0]])), [[0.5]])
        np.testing.assert_allclose(scaler.transform(np.array([[20.0]])), [[2.0]])
