"""The ``repro-experiments list`` subcommand and Registry.describe."""

import pytest

from repro.api import ATTACKS, DATASETS, DEFENSES, MODELS, Registry
from repro.experiments.runner import EXPERIMENTS, main
from repro.workload import ARRIVALS


class TestDescribe:
    def test_every_component_registry_fully_described(self):
        for registry in (ATTACKS, MODELS, DEFENSES, DATASETS, ARRIVALS):
            described = registry.describe()
            assert list(described) == registry.names()
            for key, description in described.items():
                assert description, f"{registry.kind} {key!r} has no description"
                assert "\n" not in description

    def test_partial_entries_describe_the_wrapped_callable(self):
        # random_uniform/random_gaussian are functools.partial entries.
        assert "baseline" in ATTACKS.describe()["random_uniform"].lower()

    def test_description_attribute_wins(self):
        registry = Registry("thing")

        class Entry:
            """Docstring that should lose."""

            description = "attribute that should win"

        registry.register("e", Entry())
        assert registry.describe() == {"e": "attribute that should win"}

    def test_undocumented_entry_yields_empty_string(self):
        registry = Registry("thing")
        registry.register("n", lambda: None)  # a lambda has no docstring
        assert registry.describe()["n"] == ""


class TestListSubcommand:
    def test_prints_all_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for section in ("attacks:", "models:", "defenses:", "datasets:", "arrivals:"):
            assert section in out
        for registry in (ATTACKS, MODELS, DEFENSES, DATASETS, ARRIVALS):
            for key in registry.names():
                assert f"  {key}" in out
        # Descriptions ride along (spot-check one per registry).
        assert "Equality Solving Attack" in out
        assert "Logistic regression" in out
        assert "rate limit" in out.lower() or "Refuse service" in out
        assert "Bank marketing" in out
        assert "Poisson" in out

    def test_traffic_experiment_registered(self):
        """The workload PR's experiment rides the same registries and
        scale tiers as every paper artifact."""
        from repro.experiments import EXPERIMENT_SPECS
        from repro.experiments.spec import _ensure_registered

        assert "traffic" in EXPERIMENTS
        _ensure_registered()
        units = EXPERIMENT_SPECS["traffic"].trial_units("smoke")
        assert units, "traffic must decompose under the --smoke tier"
        assert {unit.experiment_id for unit in units} == {"traffic"}

    def test_list_runs_no_experiments(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "scale=" not in out

    def test_list_rejects_experiment_flags_gracefully(self):
        # 'list' is a positional choice; unknown experiment ids still fail.
        with pytest.raises(SystemExit):
            main(["lists"])
