"""Tests for batching and splitting utilities, incl. partition properties."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ShapeError, ValidationError
from repro.nn import batch_indices, iterate_batches, train_test_split


class TestBatchIndices:
    @given(st.integers(1, 200), st.integers(1, 50))
    def test_batches_partition_the_index_set(self, n, batch_size):
        batches = list(batch_indices(n, batch_size, shuffle=True, rng=0))
        combined = np.sort(np.concatenate(batches))
        np.testing.assert_array_equal(combined, np.arange(n))

    @given(st.integers(1, 100), st.integers(1, 30))
    def test_batch_sizes(self, n, batch_size):
        batches = list(batch_indices(n, batch_size, shuffle=False))
        assert all(len(b) == batch_size for b in batches[:-1])
        assert 1 <= len(batches[-1]) <= batch_size

    def test_drop_last(self):
        batches = list(batch_indices(10, 3, shuffle=False, drop_last=True))
        assert [len(b) for b in batches] == [3, 3, 3]

    def test_no_shuffle_is_ordered(self):
        batches = list(batch_indices(6, 2, shuffle=False))
        np.testing.assert_array_equal(np.concatenate(batches), np.arange(6))

    def test_shuffle_deterministic_with_seed(self):
        a = list(batch_indices(20, 7, rng=5))
        b = list(batch_indices(20, 7, rng=5))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            list(batch_indices(0, 2))
        with pytest.raises(ValidationError):
            list(batch_indices(5, 0))


class TestIterateBatches:
    def test_aligned_batches(self):
        X = np.arange(20).reshape(10, 2)
        y = np.arange(10)
        for xb, yb in iterate_batches((X, y), 3, shuffle=False):
            np.testing.assert_array_equal(xb[:, 0] // 2, yb)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            list(iterate_batches((np.zeros((3, 1)), np.zeros(4)), 2))

    def test_empty_arrays_rejected(self):
        with pytest.raises(ValidationError):
            list(iterate_batches([], 2))


class TestTrainTestSplit:
    def test_sizes(self):
        X, y = np.zeros((10, 2)), np.zeros(10, dtype=int)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_fraction=0.3, rng=0)
        assert X_te.shape[0] == 3 and X_tr.shape[0] == 7
        assert y_te.shape[0] == 3 and y_tr.shape[0] == 7

    def test_disjoint_and_complete(self):
        X = np.arange(20).reshape(10, 2)
        y = np.arange(10)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_fraction=0.5, rng=1)
        seen = np.sort(np.concatenate([y_tr, y_te]))
        np.testing.assert_array_equal(seen, np.arange(10))

    def test_rows_stay_aligned(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 3))
        y = (X[:, 0] > 0).astype(int)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, rng=2)
        np.testing.assert_array_equal((X_tr[:, 0] > 0).astype(int), y_tr)
        np.testing.assert_array_equal((X_te[:, 0] > 0).astype(int), y_te)

    def test_invalid_fraction(self):
        X, y = np.zeros((4, 1)), np.zeros(4, dtype=int)
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValidationError):
                train_test_split(X, y, test_fraction=bad)

    def test_length_mismatch(self):
        with pytest.raises(ShapeError):
            train_test_split(np.zeros((3, 1)), np.zeros(4, dtype=int))

    def test_deterministic(self):
        X, y = np.arange(12).reshape(6, 2), np.arange(6)
        a = train_test_split(X, y, rng=3)
        b = train_test_split(X, y, rng=3)
        for x1, x2 in zip(a, b):
            np.testing.assert_array_equal(x1, x2)
