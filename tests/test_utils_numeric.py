"""Tests for repro.utils.numeric (stable kernels), incl. property tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ValidationError
from repro.utils.numeric import (
    log_sigmoid,
    logit,
    logsumexp,
    one_hot,
    pearson_correlation,
    sigmoid,
    softmax,
    stable_log,
)

finite_floats = st.floats(-50, 50, allow_nan=False)
float_arrays = hnp.arrays(np.float64, st.integers(1, 20), elements=finite_floats)


class TestSigmoid:
    def test_symmetry(self):
        x = np.linspace(-10, 10, 101)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-12)

    def test_extreme_values_stable(self):
        assert sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)

    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    @given(float_arrays)
    def test_in_unit_interval(self, x):
        s = sigmoid(x)
        assert np.all(s >= 0) and np.all(s <= 1)

    @given(st.floats(-15, 15))
    def test_logit_inverts_sigmoid(self, x):
        # Beyond ~|x| > 20 the float64 representation of sigmoid saturates
        # and inversion necessarily loses precision, so test the regime
        # where confidence scores are meaningfully distinguishable.
        assert logit(sigmoid(np.array([x])))[0] == pytest.approx(x, abs=1e-6)


class TestLogSigmoid:
    @given(float_arrays)
    def test_matches_naive_in_safe_range(self, x):
        np.testing.assert_allclose(log_sigmoid(x), np.log(sigmoid(x)), atol=1e-10)

    def test_extreme_negative_stable(self):
        assert np.isfinite(log_sigmoid(np.array([-1e4]))[0])


class TestSoftmax:
    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(2, 6)), elements=finite_floats))
    def test_rows_sum_to_one(self, z):
        p = softmax(z, axis=1)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)
        assert np.all(p >= 0)

    def test_shift_invariance(self):
        z = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0), atol=1e-12)

    def test_huge_logits_stable(self):
        p = softmax(np.array([[1e8, 0.0]]))
        assert p[0, 0] == pytest.approx(1.0)

    def test_log_ratio_identity(self):
        """The identity ESA relies on: ln v_k - ln v_j = z_k - z_j."""
        z = np.array([0.3, -1.2, 2.5])
        v = softmax(z)
        for k in range(2):
            assert np.log(v[k]) - np.log(v[k + 1]) == pytest.approx(z[k] - z[k + 1])


class TestLogsumexp:
    @given(float_arrays)
    def test_matches_naive(self, z):
        np.testing.assert_allclose(logsumexp(z), np.log(np.exp(z).sum()), atol=1e-8)

    def test_large_values_stable(self):
        assert logsumexp(np.array([1e4, 1e4])) == pytest.approx(1e4 + np.log(2))


class TestStableLog:
    def test_zero_clipped(self):
        assert np.isfinite(stable_log(np.array([0.0]))[0])

    def test_normal_values_unchanged(self):
        assert stable_log(np.array([np.e]))[0] == pytest.approx(1.0)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_rows_sum_to_one(self):
        out = one_hot(np.array([1, 1, 0]), 4)
        np.testing.assert_array_equal(out.sum(axis=1), 1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            one_hot(np.array([3]), 3)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            one_hot(np.array([-1]), 3)

    def test_2d_rejected(self):
        with pytest.raises(ValidationError):
            one_hot(np.array([[0]]), 3)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_input_returns_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=50), rng.normal(size=50)
        assert pearson_correlation(a, b) == pytest.approx(np.corrcoef(a, b)[0, 1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            pearson_correlation(np.ones(3), np.ones(4))

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            pearson_correlation(np.ones(1), np.ones(1))

    @given(hnp.arrays(np.float64, 20, elements=finite_floats), hnp.arrays(np.float64, 20, elements=finite_floats))
    def test_bounded(self, a, b):
        assert -1.0 <= pearson_correlation(a, b) <= 1.0
