"""Workload layer: traces, arrival processes, and sharded replay.

The acceptance bar of the traffic-simulation PR, as tests:

- every arrival process is a deterministic, sorted, in-horizon sampler;
- traces are deterministic from their seed, merge by arrival time with
  shared consumers unified, and guarantee tenant coverage;
- concurrent sharded replay is **bit-identical** to serial replay of the
  same shards for all four model kinds, and the merged per-consumer
  accounting is invariant to the shard count;
- the LRU cache bound evicts correctly (including the intra-chunk
  hazard), scopes per tenant, and reconciles on the ledger;
- the merged report ranks the accumulating attacker top-1.
"""

import numpy as np
import pytest

from repro.api import make_model
from repro.config import ScaleConfig
from repro.exceptions import ValidationError
from repro.federated import FeaturePartition, train_vertical_model
from repro.serving import PredictionService
from repro.utils.random import spawn_rngs
from repro.workload import (
    ARRIVALS,
    ShardedPredictionService,
    TrafficTrace,
    attacker_trace,
    make_trace,
    shard_of,
)

TINY = ScaleConfig(
    name="tiny-workload",
    n_samples=160,
    n_predictions=40,
    n_trials=1,
    fractions=(0.4,),
    lr_epochs=3,
    mlp_hidden=(8,),
    mlp_epochs=2,
    rf_trees=3,
    rf_depth=2,
    dt_depth=3,
    grna_hidden=(8,),
    grna_epochs=2,
    grna_batch_size=32,
    distiller_hidden=(16,),
    distiller_dummy=120,
    distiller_epochs=2,
)


def make_blobs(n=160, d=6, c=3, seed=0, class_sep=3.0):
    rng = np.random.default_rng(seed)
    centers = rng.random((c, d))
    y = rng.integers(0, c, size=n)
    X = centers[y] + rng.normal(0, 1.0 / class_sep, size=(n, d))
    X = (X - X.min(0)) / (X.max(0) - X.min(0))
    return X, y.astype(np.int64)


def make_vfl(model_kind="lr", *, n=80, seed=0):
    """A tiny trained VFL deployment (prediction pool of ``n`` samples)."""
    X, y = make_blobs(n=2 * n, seed=seed)
    partition = FeaturePartition.adversary_target(6, 0.4, rng=seed)
    model = make_model(model_kind, TINY, spawn_rngs(seed, 1)[0])
    return train_vertical_model(model, X[:n], y[:n], X[n:], y[n:], partition)


def small_trace(vfl, *, seed=3):
    """A benign population with one accumulating attacker merged in."""
    benign = make_trace(
        40, 120, n_samples=vfl.n_samples, batch_size=2, seed=seed
    )
    return benign.merge(
        attacker_trace(
            "needle",
            np.arange(12),
            repeats=5,
            batch_size=6,
            seed=seed + 1,
        )
    )


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
class TestArrivals:
    @pytest.mark.parametrize("process", sorted(ARRIVALS.names()))
    def test_sorted_in_horizon_deterministic(self, process):
        times = ARRIVALS.create(process, np.random.default_rng(5), 500, 2.5)
        again = ARRIVALS.create(process, np.random.default_rng(5), 500, 2.5)
        assert times.shape == (500,)
        assert times.dtype == np.float64
        assert np.all(np.diff(times) >= 0.0)
        assert times.min() >= 0.0 and times.max() < 2.5
        np.testing.assert_array_equal(times, again)

    @pytest.mark.parametrize("process", sorted(ARRIVALS.names()))
    def test_bad_sizes_rejected(self, process):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            ARRIVALS.create(process, rng, 0, 1.0)
        with pytest.raises(ValidationError):
            ARRIVALS.create(process, rng, 10, 0.0)

    def test_diurnal_concentrates_on_the_peak(self):
        """λ(t) ∝ 1 + depth·sin: the first half-period outweighs the second."""
        times = ARRIVALS.create(
            "diurnal", np.random.default_rng(1), 4000, 1.0, depth=0.9
        )
        assert (times < 0.5).mean() > 0.6

    def test_bursty_clusters(self):
        """Few bursts with tiny spread → times pile up on few values."""
        times = ARRIVALS.create(
            "bursty",
            np.random.default_rng(2),
            2000,
            1.0,
            n_bursts=3,
            spread=1e-4,
        )
        assert np.unique(np.round(times, 2)).size < 20


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
class TestTrafficTrace:
    def test_make_trace_deterministic_and_covering(self):
        kwargs = dict(n_samples=50, batch_size=3, seed=9)
        trace = make_trace(30, 100, **kwargs)
        again = make_trace(30, 100, **kwargs)
        assert trace.n_events == 100
        assert trace.n_queries == 300
        # Every named tenant appears when events >= consumers.
        assert trace.n_consumers == 30
        np.testing.assert_array_equal(trace.times, again.times)
        np.testing.assert_array_equal(trace.consumer_ids, again.consumer_ids)
        np.testing.assert_array_equal(trace.sample_ids, again.sample_ids)
        assert trace.names == again.names
        other = make_trace(30, 100, n_samples=50, batch_size=3, seed=10)
        assert not np.array_equal(trace.times, other.times)

    def test_merge_matches_naive_event_merge(self):
        left = make_trace(8, 25, n_samples=20, batch_size=2, seed=1)
        right = make_trace(5, 15, n_samples=20, batch_size=3, seed=2, prefix="svc")
        merged = left.merge(right)
        assert merged.n_events == 40
        assert merged.n_queries == left.n_queries + right.n_queries
        naive = sorted(
            [(t, name, tuple(ids)) for t, name, ids in left]
            + [(t, name, tuple(ids)) for t, name, ids in right],
            key=lambda event: event[0],
        )
        got = [(t, name, tuple(ids)) for t, name, ids in merged]
        assert got == naive

    def test_merge_unifies_shared_consumers(self):
        left = make_trace(4, 10, n_samples=10, seed=1)
        right = make_trace(2, 6, n_samples=10, seed=2)  # same "client-i" names
        merged = left.merge(right)
        assert merged.names == left.names  # no duplicate ids for one tenant
        assert merged.n_consumers == 4

    def test_attacker_trace_tiles_the_pool(self):
        trace = attacker_trace("adv", np.array([3, 1, 4]), repeats=4, batch_size=5)
        assert trace.names == ("adv",)
        assert trace.n_queries == 12
        np.testing.assert_array_equal(
            trace.sample_ids, np.tile([3, 1, 4], 4)
        )
        # Ragged tail event: offsets still span the flat array exactly.
        assert trace.offsets[-1] == 12
        assert trace.n_events == 3

    def test_validation(self):
        with pytest.raises(ValidationError, match="sorted"):
            TrafficTrace(
                times=np.array([1.0, 0.5]),
                consumer_ids=np.zeros(2, dtype=np.int64),
                names=("a",),
                sample_ids=np.zeros(2, dtype=np.int64),
                offsets=np.array([0, 1, 2]),
            )
        with pytest.raises(ValidationError, match="span"):
            TrafficTrace(
                times=np.array([0.5]),
                consumer_ids=np.zeros(1, dtype=np.int64),
                names=("a",),
                sample_ids=np.zeros(3, dtype=np.int64),
                offsets=np.array([0, 2]),
            )
        with pytest.raises(ValidationError):
            make_trace(0, 10, n_samples=5)
        with pytest.raises(ValidationError):
            attacker_trace("adv", np.array([], dtype=np.int64))


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
class TestShardOf:
    def test_stable_and_in_range(self):
        names = [f"client-{i}" for i in range(200)]
        pins = [shard_of(name, 4) for name in names]
        assert all(0 <= pin < 4 for pin in pins)
        assert pins == [shard_of(name, 4) for name in names]
        # Content-hash pinning, not Python's salted hash: a fixed anchor.
        assert shard_of("client-0", 4) == 0
        assert shard_of("client-1", 4) == 2

    def test_spreads_consumers(self):
        pins = [shard_of(f"client-{i}", 4) for i in range(1000)]
        counts = np.bincount(pins, minlength=4)
        assert counts.min() > 150  # no starved shard


AUDITED = dict(
    defense_specs=("query_audit",), cache=True, cache_size=64, max_batch=16
)


class TestShardedReplay:
    @pytest.mark.parametrize("model_kind", ["lr", "nn", "dt", "rf"])
    def test_threads_bit_identical_to_serial(self, model_kind):
        """Concurrent replay == serial replay of the same shards, on the
        full accounting (ledgers, refusals, audit verdicts), per model."""
        vfl = make_vfl(model_kind)
        trace = small_trace(vfl)

        def replay(mode):
            service = ShardedPredictionService(
                vfl, n_shards=4, seed=5, **AUDITED
            )
            return service.replay(trace, mode=mode)

        assert replay("threads").accounting() == replay("serial").accounting()

    @pytest.mark.parametrize("n_shards", [2, 4, 7])
    def test_consumer_accounting_invariant_to_shard_count(self, n_shards):
        """With consumer-scoped serving state, the merged per-consumer
        accounting does not depend on the layout at all."""
        vfl = make_vfl("lr")
        trace = small_trace(vfl)
        oracle = ShardedPredictionService(vfl, n_shards=1, seed=5, **AUDITED)
        sharded = ShardedPredictionService(
            vfl, n_shards=n_shards, seed=5, **AUDITED
        )
        assert (
            sharded.replay(trace, mode="threads").consumer_accounting()
            == oracle.replay(trace, mode="serial").consumer_accounting()
        )

    def test_consumer_budgets_refuse_and_refund(self):
        vfl = make_vfl("lr")
        trace = small_trace(vfl)
        service = ShardedPredictionService(
            vfl,
            n_shards=4,
            consumer_budgets={"needle": 20},
            max_batch=16,
            seed=5,
        )
        report = service.replay(trace)
        assert report.refusals.get("needle", 0) > 0
        # Refused batches were refunded: the needle never exceeds its cap.
        assert report.ledger["counts"]["needle"] <= 20
        assert report.ledger["consumer_budgets"] == {"needle": 20}

    def test_attacker_ranks_top1(self):
        vfl = make_vfl("lr")
        trace = small_trace(vfl)
        report = ShardedPredictionService(
            vfl, n_shards=4, seed=5, **AUDITED
        ).replay(trace)
        assert report.ranked_consumers()[0] == "needle"
        scores = report.anomaly_scores()
        assert scores["needle"] > max(
            score for name, score in scores.items() if name != "needle"
        )

    def test_replay_validation_and_log_gating(self):
        vfl = make_vfl("lr")
        trace = small_trace(vfl)
        service = ShardedPredictionService(vfl, n_shards=2)
        with pytest.raises(ValidationError, match="mode"):
            service.replay(trace, mode="processes")
        log_before = len(vfl.prediction_log_)
        service.replay(trace)
        # The forensic prediction log is gated off during replay (and the
        # gate is restored afterwards).
        assert len(vfl.prediction_log_) == log_before
        assert vfl.log_predictions is True
        with pytest.raises(ValidationError, match="empty"):
            service.replay(
                TrafficTrace(
                    times=np.empty(0),
                    consumer_ids=np.empty(0, dtype=np.int64),
                    names=(),
                    sample_ids=np.empty(0, dtype=np.int64),
                    offsets=np.zeros(1, dtype=np.int64),
                )
            )

    def test_report_shape(self):
        vfl = make_vfl("lr")
        trace = small_trace(vfl)
        report = ShardedPredictionService(
            vfl, n_shards=4, seed=5, **AUDITED
        ).replay(trace)
        assert report.n_shards == 4
        assert report.trace == trace.as_dict()
        assert len(report.shard_ledgers) == 4
        assert report.queries_per_second > 0
        merged = report.as_dict()
        assert merged["mode"] == "threads"
        # Shard ledgers sum to the merged ledger.
        assert merged["ledger"]["queries_used"] == sum(
            shard["queries_used"] for shard in report.shard_ledgers
        )


# ----------------------------------------------------------------------
# LRU cache bound (service level)
# ----------------------------------------------------------------------
class TestLRUBound:
    def test_intra_chunk_eviction_hazard(self):
        """cache_size=1 with chunk [a, b, a]: the third position must
        replay the row the first staged, even though inserting b evicted
        a's entry mid-chunk."""
        vfl = make_vfl("lr")
        bounded = PredictionService(vfl, cache=True, cache_size=1)
        plain = PredictionService(vfl)
        request = np.array([3, 7, 3])
        np.testing.assert_array_equal(
            bounded.query(request), plain.query(request)
        )
        # Two computations (a, b), one replay (the duplicate a).
        assert bounded.ledger.queries_used == 2
        assert bounded.ledger.cache_hits == 1
        assert bounded.cache_evictions >= 1

    def test_eviction_accounting_reconciles(self):
        vfl = make_vfl("lr")
        service = PredictionService(vfl, cache=True, cache_size=4)
        for start in range(0, 40, 8):
            service.query(np.arange(start, start + 8))
        assert service.cache_entries <= 4
        assert (
            service.ledger.evictions
            == service.ledger.queries_used - service.cache_entries
        )

    def test_consumer_scope_isolates_tenants(self):
        """One tenant's traffic never replays another's cache entries."""
        vfl = make_vfl("lr")
        service = PredictionService(vfl, cache=True, cache_scope="consumer")
        service.query(np.arange(10), consumer="alice")
        service.query(np.arange(10), consumer="bob")
        assert service.ledger.count("bob") == 10
        assert service.ledger.cache_hit_count("bob") == 0
        service.query(np.arange(10), consumer="bob")
        assert service.ledger.count("bob") == 10
        assert service.ledger.cache_hit_count("bob") == 10

    def test_unbounded_default_unchanged(self):
        vfl = make_vfl("lr")
        service = PredictionService(vfl, cache=True)
        service.query(np.arange(30))
        service.query(np.arange(30))
        assert service.cache_evictions == 0
        assert service.cache_entries == 30
        assert service.ledger.cache_hits == 30
